#!/usr/bin/env python3
"""Execution-footprint theft: what Volt Boot sees after a perfect wipe.

A careful victim processes a secret buffer and then scrubs every byte
with DC ZVA before the power cut.  The data is gone — but the TLB still
lists the pages the victim touched and the BTB still lists its hot
branch sites, and both ride the held rail through the power cycle.

Run:  python examples/execution_footprint.py
"""

from repro.experiments import microarch_leak


def main() -> None:
    result = microarch_leak.run(seed=404)
    print(microarch_leak.report(result).render())

    print("\nwhat the attacker learned despite the wipe:")
    for vpn in sorted(result.secret_pages & result.recovered_pages):
        print(f"  victim touched page {vpn:#x} "
              f"(addresses {vpn << 12:#x}..{((vpn + 1) << 12) - 1:#x})")
    for pc in sorted(result.recovered_branch_pcs):
        if result.code_base <= pc < result.code_end:
            print(f"  victim executed a hot branch at {pc:#x}")


if __name__ == "__main__":
    main()
