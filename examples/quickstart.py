#!/usr/bin/env python3
"""Quickstart: Volt Boot a Raspberry Pi 4's L1 d-cache in ~40 lines.

A victim program stores a recognisable pattern through its d-cache; the
attacker plans a probe against the board's power delivery network, rides
VDD_CORE through a power cycle, reboots from USB, and dumps the raw
cache RAMs over CP15 RAMINDEX.

Run:  python examples/quickstart.py
"""

from repro import VoltBootAttack, devices
from repro.cpu import Core, assemble, programs
from repro.soc import BootMedia

VICTIM_BUFFER = 0x40000


def main() -> None:
    # --- The victim's life before the attack -------------------------
    board = devices.raspberry_pi_4()
    board.boot(BootMedia("victim-os"))
    unit = board.soc.core(0)
    cpu = Core(unit, board.soc.memory_map)
    victim = assemble(programs.byte_pattern_store(VICTIM_BUFFER, 4096, 0xAA))
    cpu.load_program(victim.machine_code, 0x8000)
    cpu.run()
    print("victim is running; 0xAA buffer lives in the L1 d-cache")

    # --- The attack (paper section 6.1) ------------------------------
    attack = VoltBootAttack(
        board, target="l1-caches", boot_media=BootMedia("attacker-usb")
    )
    plan = attack.identify()
    print(f"step 1, identify: {plan.describe()}")
    attack.attach()
    print(f"step 2, attach:   probe landed on {plan.pad.name}")
    lost = attack.power_cycle()
    print(f"step 3, cycle:    power cut and restored; {lost} cells lost")
    attack.reboot()
    result = attack.extract()
    print("step 4, extract:  raw L1 images dumped over CP15 RAMINDEX")

    # --- What the attacker got ----------------------------------------
    dump = result.cache_images.dcache(0)
    lines = dump.count(b"\xaa" * 64)
    print(f"\nrecovered {lines} full 0xAA cache lines "
          f"({lines * 64} of 4096 victim bytes) -- retention was "
          f"{'perfect' if result.surge_clean else 'degraded'}")
    assert lines == 64


if __name__ == "__main__":
    main()
