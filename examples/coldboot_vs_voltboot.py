#!/usr/bin/env python3
"""Cold boot vs Volt Boot on the same victim (paper sections 3 and 5).

Runs the identical cache-resident victim through both attacks across a
temperature sweep, printing recovery accuracy side by side.  Cold boot
never beats chance on SRAM — even at -110 C the achievable off-time on
an embedded board is too long — while Volt Boot is perfect everywhere
because it removes the decay variable entirely.

Run:  python examples/coldboot_vs_voltboot.py
"""

from repro import ColdBootAttack, VoltBootAttack, devices
from repro.analysis import fractional_hamming_distance
from repro.soc import BootMedia

TEMPERATURES_C = (25.0, 0.0, -40.0, -110.0)
OFF_TIME_S = 0.5  # a fast human battery pull


def prepare_victim(seed: int):
    """A Pi 4 with a recognisable pattern filling core 0's d-cache."""
    board = devices.raspberry_pi_4(seed=seed)
    board.boot(BootMedia("victim-os"))
    unit = board.soc.core(0)
    unit.l1d.invalidate_all()
    unit.l1d.enabled = True
    line = bytes([0xA5]) * 64
    for offset in range(0, unit.l1d.geometry.size_bytes, 64):
        unit.l1d.write(0x40000 + offset, line)
    reference = b"".join(
        unit.l1d.raw_way_image(w) for w in range(unit.l1d.geometry.ways)
    )
    return board, reference


def accuracy(reference: bytes, observed: bytes) -> float:
    """Recovery accuracy in percent (0 == chance for bistable cells)."""
    error = fractional_hamming_distance(reference, observed)
    return max(0.0, 100.0 * (1.0 - 2.0 * error))


def main() -> None:
    print(f"{'temp':>8}  {'cold boot':>10}  {'volt boot':>10}")
    for index, temperature in enumerate(TEMPERATURES_C):
        board, reference = prepare_victim(seed=10 + index)
        cold = ColdBootAttack(
            board,
            temperature_c=temperature,
            off_time_s=OFF_TIME_S,
            boot_media=BootMedia("attacker-usb"),
        ).execute()
        cold_acc = accuracy(reference, cold.cache_images.dcache(0))

        board2, reference2 = prepare_victim(seed=20 + index)
        board2.set_temperature_c(temperature)
        volt = VoltBootAttack(
            board2,
            target="l1-caches",
            boot_media=BootMedia("attacker-usb"),
            off_time_s=OFF_TIME_S,
        ).execute()
        volt_acc = accuracy(reference2, volt.cache_images.dcache(0))

        print(f"{temperature:>7.0f}C  {cold_acc:>9.2f}%  {volt_acc:>9.2f}%")

    print("\ncold boot on SRAM stays at chance level at every achievable")
    print("temperature; Volt Boot is exact and temperature-independent")


if __name__ == "__main__":
    main()
