#!/usr/bin/env python3
"""Cloning an SRAM PUF with Volt Boot (paper section 5.2.4's flip side).

SRAM power-up state doubles as a device fingerprint (PUF) — one of the
reasons vendors leave SRAM uninitialised at boot.  But the fingerprint
is just SRAM content: an attacker who can hold the rail and dump the
array walks away with a perfect software clone.

The demo enrolls a PUF on a simulated chip, shows a fresh power-up
authenticating and a foreign chip failing, then steals the response via
a Volt-Boot-style dump and authenticates the clone.

Run:  python examples/puf_cloning.py
"""

import numpy as np

from repro.applications.puf import SramPuf
from repro.circuits.sram import SramArray


def make_chip(seed: int) -> SramArray:
    array = SramArray(8 * 4096, rng=np.random.default_rng(seed))
    array.power_up()
    return array


def main() -> None:
    genuine = SramPuf(make_chip(seed=1), length_bits=4096)
    genuine.enroll()
    accepted, distance = genuine.authenticate()
    print(f"genuine chip:  accepted={accepted}  distance={distance:.3f}")

    foreign = SramPuf(make_chip(seed=2), length_bits=4096)
    accepted, distance = genuine.authenticate(foreign.read_response())
    print(f"foreign chip:  accepted={accepted}  distance={distance:.3f}")

    # The attack: the rail is held, so the enrolled fingerprint sits in
    # the array as ordinary readable data — no fresh power-up needed.
    stolen_bits = genuine.read_response(fresh_power_up=False)
    clone = genuine.clone_from_dump(stolen_bits)
    accepted, distance = genuine.authenticate(clone.read_response())
    print(f"software clone: accepted={accepted}  distance={distance:.3f}")
    print("\nthe clone replays the stolen response with zero physical "
          "noise — the PUF's security assumption (unreadable analog "
          "state) does not survive a held power rail")


if __name__ == "__main__":
    main()
