#!/usr/bin/env python3
"""AES key theft by voltage glitching — the active-attack counterpart.

The passive Volt Boot attack reads key schedules out of powered SRAM;
TRESOR-style register AES defeats it by never letting the schedule
touch SRAM at all (see ``examples/aes_key_theft.py``, where the
register file itself has to be dumped).  This example shows the other
door the shared power rails open: glitch the core while it encrypts,
collect single-byte faulty ciphertexts, and run differential fault
analysis to recover the key from *ciphertexts alone* — no memory
readout of any kind.

The glitch pulse is RC-filtered by the board's decoupling before the
die sees it, the die-seen voltage drives the per-instruction fault
model, and the faulty ciphertexts feed the classic single-bit DFA on
the last AES round.

Run:  python examples/aes_glitch_dfa.py
"""

from repro.glitch import aes_glitch_dfa

SEED = 2022


def main() -> None:
    result = aes_glitch_dfa(SEED)
    for note in result.notes:
        print(f"  {note}")
    print(
        f"glitched encryptions: {result.attempts} "
        f"({len(result.faulty_ciphertexts)} usable single-byte faults)"
    )
    recovered = result.bytes_recovered
    print(f"last-round-key bytes recovered: {recovered}/16")
    assert recovered >= 1, "DFA should pin down at least one key byte"
    if result.recovered_key is not None:
        shown = result.recovered_key.hex()
        print(f"master key (inverted schedule): {shown}")
        print(f"matches the victim's key: {result.key_correct}")
        assert result.key_correct
    print("register-resident AES is not fault-resistant AES.")


if __name__ == "__main__":
    main()
