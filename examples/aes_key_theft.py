#!/usr/bin/env python3
"""Full-disk-encryption key theft from on-chip AES runtimes.

The paper's motivating victims are TRESOR-style schemes (AES schedule in
CPU registers) and CaSE-style schemes (schedule in locked, secure cache
lines) — both designed so cold boot attacks on DRAM find nothing.  This
example runs both victims on a Raspberry Pi 4, executes Volt Boot, and
recovers the AES-128 key from each using the attacker-side key-schedule
search.

Run:  python examples/aes_key_theft.py
"""

from repro import VoltBootAttack, devices
from repro.analysis.keysearch import (
    recover_key_from_registers,
    search_aes128_schedules,
)
from repro.crypto import CacheLockedAes, RegisterAes, encrypt_block
from repro.soc import BootMedia

DISK_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


def steal_from_tresor() -> None:
    """Victim 1: TRESOR keeps the schedule in vector registers."""
    board = devices.raspberry_pi_4(seed=1)
    board.boot(BootMedia("victim-os"))
    tresor = RegisterAes(board.soc.core(0))
    tresor.install_key(DISK_KEY)
    sector = tresor.encrypt(b"disk sector 0000")
    assert sector == encrypt_block(DISK_KEY, b"disk sector 0000")
    print("TRESOR victim: AES-128 schedule parked in v0..v10, DRAM clean")

    attack = VoltBootAttack(
        board, target="registers", boot_media=BootMedia("attacker-usb")
    )
    result = attack.execute()
    hit = recover_key_from_registers(result.vector_registers[0])
    assert hit is not None and hit.key == DISK_KEY
    print(f"  -> key recovered from registers v{hit.offset}..: "
          f"{hit.key.hex()}")


def steal_from_case() -> None:
    """Victim 2: CaSE locks the schedule into secure cache lines."""
    board = devices.raspberry_pi_4(seed=2)
    board.boot(BootMedia("victim-os"))
    case = CacheLockedAes(board.soc.core(0), schedule_addr=0x50000)
    case.install_key(DISK_KEY)
    case.encrypt(b"disk sector 0001")
    print("CaSE victim: schedule pinned in locked secure L1 lines")

    attack = VoltBootAttack(
        board, target="l1-caches", boot_media=BootMedia("attacker-usb")
    )
    result = attack.execute()
    hits = search_aes128_schedules(result.cache_images.dcache(0))
    assert hits and hits[0].key == DISK_KEY
    print(f"  -> key-schedule search found the key at d-cache offset "
          f"{hits[0].offset:#x}: {hits[0].key.hex()}")


def main() -> None:
    steal_from_tresor()
    steal_from_case()
    print("\nboth on-chip AES schemes broken: Volt Boot reads the "
          "schedule bytes the algorithm actually consumed")


if __name__ == "__main__":
    main()
