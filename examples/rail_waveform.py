#!/usr/bin/env python3
"""The oscilloscope view of a Volt Boot disconnect (paper section 6).

Reconstructs the probed VDD_CORE rail's V(t) around the main-supply
cut for a strong (3 A) and a starved (0.25 A) bench supply, and shows
why the paper insists on current headroom: the weak probe lets the
surge drag the rail through the cells' data retention voltages.

Run:  python examples/rail_waveform.py
"""

from repro.circuits import BenchSupply, DecouplingNetwork, disconnect_waveform
from repro.devices.builders import CORE_DECOUPLING_F, CORE_SURGE

DRV_TAIL_V = 0.35  # upper tail of the cell DRV distribution


def show(label: str, limit_a: float) -> None:
    waveform = disconnect_waveform(
        BenchSupply(0.8, current_limit_a=limit_a),
        nominal_v=0.8,
        surge=CORE_SURGE,
        decoupling=DecouplingNetwork(capacitance_f=CORE_DECOUPLING_F),
    )
    print(f"\n{label} (current limit {limit_a:g} A)")
    print(waveform.ascii_plot(width=64, height=10))
    print(f"surge floor: {waveform.floor_v * 1e3:.0f} mV | "
          f"retention hold: {waveform.steady_v * 1e3:.0f} mV | "
          f"time below the DRV tail ({DRV_TAIL_V * 1e3:.0f} mV): "
          f"{waveform.time_below(DRV_TAIL_V) * 1e6:.1f} us")


def main() -> None:
    show("bench supply (the paper's '>3A' setup)", 3.0)
    show("starved probe", 0.25)
    print("\nthe starved probe's rail spends the whole surge below the "
          "DRV tail -> those cells collapse to their power-up state")


if __name__ == "__main__":
    main()
