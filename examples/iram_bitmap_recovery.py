#!/usr/bin/env python3
"""i.MX53 iRAM bitmap recovery — the paper's Figure 9/10 scenario.

Stores four copies of a 512x512 bitmap into the i.MX535's 128 KB iRAM
over JTAG, holds the VDDAL1 memory rail through a power cycle while the
CPU rail (VCCGP) dies, lets the SoC reboot from its internal ROM, dumps
the iRAM back, and renders the recovered panels plus the spatial error
profile.  Writes PGM images beside this script.

Run:  python examples/iram_bitmap_recovery.py
"""

from pathlib import Path

from repro import VoltBootAttack, devices
from repro.analysis import (
    block_hamming_profile,
    fractional_hamming_distance,
    test_bitmap_bytes,
    write_pgm,
)
from repro.soc import JtagProbe

IRAM_BASE = 0xF8000000
PANEL_BYTES = 32 * 1024
OUT_DIR = Path(__file__).parent


def main() -> None:
    board = devices.imx53_qsb()
    board.boot()  # boots from internal ROM: no external media needed
    jtag = JtagProbe(board.soc.memory_map)

    bitmap = test_bitmap_bytes()
    for panel in range(4):
        jtag.write_block(IRAM_BASE + panel * PANEL_BYTES, bitmap)
    print("stored 4x 32KiB bitmap panels into the iRAM over JTAG")

    attack = VoltBootAttack(board, target="iram")
    plan = attack.identify()
    print(f"probing {plan.pad.name} on {plan.domain_name} at "
          f"{plan.set_voltage_v:.2f}V (the CPU rail VCCGP is NOT held)")
    result = attack.execute()
    recovered = result.iram_image

    overall = fractional_hamming_distance(bitmap * 4, recovered)
    print(f"overall bit error: {100 * overall:.2f}%  (paper: 2.7%)")

    for panel in range(4):
        chunk = recovered[panel * PANEL_BYTES : (panel + 1) * PANEL_BYTES]
        err = fractional_hamming_distance(bitmap, chunk)
        path = write_pgm(chunk, 512, OUT_DIR / f"iram_panel_{panel}.pgm")
        print(f"panel ({chr(ord('a') + panel)}): {100 * err:5.2f}% error "
              f"-> {path.name}")

    profile = block_hamming_profile(bitmap * 4, recovered, block_bits=512)
    dirty = [i for i, count in enumerate(profile) if count > 0]
    print(f"\nerrors cluster in blocks {dirty[0]}..{dirty[len(dirty)//2]} "
          f"and {dirty[-1]} of {profile.size} -- the boot-ROM scratchpad "
          f"regions (compare paper Figure 10)")


if __name__ == "__main__":
    main()
