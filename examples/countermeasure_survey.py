#!/usr/bin/env python3
"""Countermeasure survey — the paper's section 8, as a runnable demo.

Builds otherwise-identical Pi 4 victims with each defense toggled,
re-runs the same attack, and prints the defense matrix: which defenses
actually stop Volt Boot, which merely look like they should.

Run:  python examples/countermeasure_survey.py
"""

from repro.experiments import countermeasures


def main() -> None:
    outcomes = countermeasures.run(seed=2026)
    print(countermeasures.report(outcomes).render())
    print()
    effective = [o.defense for o in outcomes
                 if o.pattern_lines_recovered == 0 and "graceful" not in o.defense]
    print("defenses that actually stop the attack:", ", ".join(effective))


if __name__ == "__main__":
    main()
