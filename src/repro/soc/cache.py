"""SRAM-backed set-associative caches.

Caches are the paper's headline target (§7.1).  Two properties make them
attackable, and both are modelled here explicitly:

* **Tag/valid state and data payloads live in separate SRAM macros.**
  Clean/invalidate operations only clear valid bits in the *tag* RAM; the
  data RAM keeps its contents (paper §5.2.4: "cleaning and invalidating a
  cache at the boot phase does not erase the contents").  The only
  software path that actually zeroes data RAM is ``DC ZVA``.
* **The raw RAMs are readable through the debug interface** (CP15
  RAMINDEX) regardless of valid bits, given a sufficient exception level.

The cache model is a real working cache: the simulated CPU's loads,
stores, and fetches stream through it, with LRU replacement, write-back +
write-allocate behaviour, and an enable bit (L1 caches on the Broadcom
parts are software-enabled, which is why a post-attack boot can avoid
touching them entirely — §6.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..errors import CalibrationError, CircuitError, MemoryMapError
from ..circuits.sram import SramArray, SramParameters
from ..obs import OBS
from ..rng import spawn


class BackingStore(Protocol):
    """Next level of the memory hierarchy (an L2, or main memory)."""

    def read_block(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes at physical address ``addr``."""

    def write_block(self, addr: int, data: bytes) -> None:
        """Write ``data`` at physical address ``addr``."""


@dataclass(frozen=True)
class CacheGeometry:
    """Shape of a set-associative cache."""

    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.ways <= 0 or self.line_bytes <= 0 or self.size_bytes <= 0:
            raise CalibrationError("cache dimensions must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise CalibrationError("line size must be a power of two")
        if self.size_bytes % (self.ways * self.line_bytes):
            raise CalibrationError(
                "cache size must be a multiple of ways * line size"
            )
        if self.sets & (self.sets - 1):
            raise CalibrationError("set count must be a power of two")

    @property
    def sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def way_bytes(self) -> int:
        """Capacity of a single way."""
        return self.sets * self.line_bytes

    @property
    def offset_bits(self) -> int:
        """Bits of the address selecting a byte within a line."""
        return self.line_bytes.bit_length() - 1

    @property
    def index_bits(self) -> int:
        """Bits of the address selecting a set."""
        return self.sets.bit_length() - 1

    def split(self, addr: int) -> tuple[int, int, int]:
        """Split an address into (tag, set index, line offset)."""
        offset = addr & (self.line_bytes - 1)
        index = (addr >> self.offset_bits) & (self.sets - 1)
        tag = addr >> (self.offset_bits + self.index_bits)
        return tag, index, offset

    def line_base(self, addr: int) -> int:
        """Address of the first byte of the line containing ``addr``."""
        return addr & ~(self.line_bytes - 1)


# Tag-entry packing: one 64-bit word per line in the tag RAM.
_TAG_SHIFT = 0
_TAG_MASK = (1 << 48) - 1
_VALID_BIT = 1 << 48
_DIRTY_BIT = 1 << 49
_NS_BIT = 1 << 50


class TagArray:
    """Tag/valid/dirty/NS metadata stored in a real SRAM macro.

    Each entry occupies 64 bits of tag RAM.  Because the bits live in an
    :class:`SramArray`, they obey the same retention physics as the data
    payloads — a power cycle without a probe randomises the valid bits
    along with everything else.
    """

    ENTRY_BYTES = 8

    def __init__(self, sram: SramArray, entries: int) -> None:
        if sram.n_bytes < entries * self.ENTRY_BYTES:
            raise CalibrationError("tag RAM too small for the entry count")
        self._sram = sram
        self._entries = entries

    @property
    def sram(self) -> SramArray:
        """The underlying tag SRAM macro."""
        return self._sram

    def _read_word(self, entry: int) -> int:
        raw = self._sram.read_bytes(entry * self.ENTRY_BYTES, self.ENTRY_BYTES)
        return int.from_bytes(raw, "little")

    def _write_word(self, entry: int, word: int) -> None:
        self._sram.write_bytes(
            entry * self.ENTRY_BYTES, word.to_bytes(self.ENTRY_BYTES, "little")
        )

    def read(self, entry: int) -> tuple[int, bool, bool, bool]:
        """Return (tag, valid, dirty, ns) for one entry."""
        word = self._read_word(entry)
        return (
            (word >> _TAG_SHIFT) & _TAG_MASK,
            bool(word & _VALID_BIT),
            bool(word & _DIRTY_BIT),
            bool(word & _NS_BIT),
        )

    def write(
        self, entry: int, tag: int, valid: bool, dirty: bool, ns: bool
    ) -> None:
        """Overwrite one entry."""
        word = (tag & _TAG_MASK) << _TAG_SHIFT
        if valid:
            word |= _VALID_BIT
        if dirty:
            word |= _DIRTY_BIT
        if ns:
            word |= _NS_BIT
        self._write_word(entry, word)

    def clear_valid(self, entry: int) -> None:
        """Drop the valid bit, leaving everything else untouched."""
        word = self._read_word(entry)
        self._write_word(entry, word & ~_VALID_BIT)

    def set_flags(
        self, entry: int, dirty: bool | None = None, ns: bool | None = None
    ) -> None:
        """Update the dirty and/or NS flag of one entry."""
        word = self._read_word(entry)
        if dirty is not None:
            word = (word | _DIRTY_BIT) if dirty else (word & ~_DIRTY_BIT)
        if ns is not None:
            word = (word | _NS_BIT) if ns else (word & ~_NS_BIT)
        self._write_word(entry, word)


class SetAssociativeCache:
    """A write-back, write-allocate, LRU set-associative cache.

    The data payload of each way and the tag metadata are separate
    :class:`SramArray` macros, so the power layer can hold or drop them as
    physical units.  Architectural state that real hardware keeps in
    flip-flops (the enable bit, LRU ages) is *not* SRAM-backed and is
    reset by a reboot — which matches hardware: post-reboot, caches come
    up disabled with undefined contents.
    """

    #: Supported replacement policies.
    REPLACEMENT_POLICIES = ("lru", "round-robin", "random")

    def __init__(
        self,
        name: str,
        geometry: CacheGeometry,
        backing: BackingStore,
        sram_params: SramParameters,
        rng: np.random.Generator,
        line_interleave: bool = False,
        replacement: str = "lru",
    ) -> None:
        if replacement not in self.REPLACEMENT_POLICIES:
            raise CalibrationError(
                f"unknown replacement policy {replacement!r}; "
                f"choose from {self.REPLACEMENT_POLICIES}"
            )
        self.name = name
        self.geometry = geometry
        self.backing = backing
        self.replacement = replacement
        g = geometry
        self.data_rams = [
            SramArray(
                g.way_bytes * 8,
                sram_params,
                spawn(rng),
                name=f"{name}.data.w{way}",
            )
            for way in range(g.ways)
        ]
        tag_sram = SramArray(
            g.sets * g.ways * TagArray.ENTRY_BYTES * 8,
            sram_params,
            spawn(rng),
            name=f"{name}.tag",
        )
        self.tags = TagArray(tag_sram, g.sets * g.ways)
        # Optional undocumented in-line bit interleave (BCM2837 i-cache
        # stores instructions+ECC in a vendor-private order — paper
        # footnote 4).  The permutation is fixed per device.
        self._interleave: np.ndarray | None = None
        if line_interleave:
            perm_rng = spawn(rng)
            self._interleave = perm_rng.permutation(g.line_bytes * 8)
        # Flip-flop state (lost at reboot, not SRAM-backed).
        self.enabled = False
        self._lru = np.zeros((g.sets, g.ways), dtype=np.int64)
        self._lru_tick = 0
        self._rr_pointer = np.zeros(g.sets, dtype=np.int64)
        self._victim_rng = spawn(rng)
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # SRAM plumbing (what the power layer attaches to a domain)
    # ------------------------------------------------------------------

    def sram_macros(self) -> list[SramArray]:
        """Every SRAM macro in this cache (data ways + tag RAM)."""
        return [*self.data_rams, self.tags.sram]

    def reset_architectural_state(self) -> None:
        """Model a reboot: enable bit and LRU flip-flops reset.

        SRAM contents are deliberately untouched — that is the attack
        surface.
        """
        self.enabled = False
        self._lru[:] = 0
        self._lru_tick = 0
        self._rr_pointer[:] = 0

    # ------------------------------------------------------------------
    # Tag helpers
    # ------------------------------------------------------------------

    def _entry(self, index: int, way: int) -> int:
        return index * self.geometry.ways + way

    def _lookup(self, tag: int, index: int) -> int | None:
        for way in range(self.geometry.ways):
            stored_tag, valid, _dirty, _ns = self.tags.read(self._entry(index, way))
            if valid and stored_tag == tag:
                return way
        return None

    def _choose_victim(self, index: int) -> int:
        for way in range(self.geometry.ways):
            _tag, valid, _dirty, _ns = self.tags.read(self._entry(index, way))
            if not valid:
                return way
        if self.replacement == "lru":
            return int(np.argmin(self._lru[index]))
        if self.replacement == "round-robin":
            victim = int(self._rr_pointer[index])
            self._rr_pointer[index] = (victim + 1) % self.geometry.ways
            return victim
        return int(self._victim_rng.integers(0, self.geometry.ways))

    def _touch(self, index: int, way: int) -> None:
        self._lru_tick += 1
        self._lru[index, way] = self._lru_tick

    # ------------------------------------------------------------------
    # Data-RAM helpers
    # ------------------------------------------------------------------

    def _line_slot(self, index: int) -> int:
        return index * self.geometry.line_bytes

    def _read_line(self, way: int, index: int) -> bytes:
        raw = self.data_rams[way].read_bytes(
            self._line_slot(index), self.geometry.line_bytes
        )
        if self._interleave is None:
            return raw
        bits = np.unpackbits(
            np.frombuffer(raw, dtype=np.uint8), bitorder="little"
        )
        restored = np.empty_like(bits)
        restored[: len(self._interleave)] = bits[self._interleave]
        return np.packbits(restored, bitorder="little").tobytes()

    def _write_line(self, way: int, index: int, data: bytes) -> None:
        if self._interleave is not None:
            bits = np.unpackbits(
                np.frombuffer(data, dtype=np.uint8), bitorder="little"
            )
            data = np.packbits(
                bits[np.argsort(self._interleave)], bitorder="little"
            ).tobytes()
        self.data_rams[way].write_bytes(self._line_slot(index), data)

    # ------------------------------------------------------------------
    # Architectural operations
    # ------------------------------------------------------------------

    def read(self, addr: int, size: int, ns: bool = True) -> bytes:
        """Read ``size`` bytes at ``addr`` through the cache."""
        return self._access(addr, size, None, ns)

    def write(self, addr: int, data: bytes, ns: bool = True) -> None:
        """Write ``data`` at ``addr`` through the cache (write-allocate)."""
        self._access(addr, len(data), bytes(data), ns)

    def read_block(self, addr: int, size: int) -> bytes:
        """BackingStore port: lets this cache back a smaller cache."""
        return self.read(addr, size)

    def write_block(self, addr: int, data: bytes) -> None:
        """BackingStore port: lets this cache back a smaller cache."""
        self.write(addr, data)

    def _access(
        self, addr: int, size: int, data: bytes | None, ns: bool
    ) -> bytes:
        if size <= 0:
            raise MemoryMapError("access size must be positive")
        if not self.enabled:
            if data is None:
                return self.backing.read_block(addr, size)
            self.backing.write_block(addr, data)
            return data
        out = bytearray()
        cursor = addr
        remaining = size
        pos = 0
        while remaining > 0:
            tag, index, offset = self.geometry.split(cursor)
            chunk = min(remaining, self.geometry.line_bytes - offset)
            way = self._lookup(tag, index)
            if way is None:
                way = self._fill(cursor, tag, index, ns)
                self.misses += 1
            else:
                self.hits += 1
            self._touch(index, way)
            line = bytearray(self._read_line(way, index))
            if data is None:
                out += line[offset : offset + chunk]
            else:
                line[offset : offset + chunk] = data[pos : pos + chunk]
                self._write_line(way, index, bytes(line))
                self.tags.set_flags(self._entry(index, way), dirty=True)
            cursor += chunk
            pos += chunk
            remaining -= chunk
        return bytes(out) if data is None else data

    def _fill(self, addr: int, tag: int, index: int, ns: bool) -> int:
        way = self._choose_victim(index)
        entry = self._entry(index, way)
        old_tag, valid, dirty, _old_ns = self.tags.read(entry)
        if valid and dirty:
            victim_addr = self._reconstruct_addr(old_tag, index)
            self.backing.write_block(victim_addr, self._read_line(way, index))
            self.evictions += 1
        elif valid:
            self.evictions += 1
        if valid and OBS.enabled:
            OBS.counter_inc("cache.evictions", 1, cache=self.name)
        line_addr = self.geometry.line_base(addr)
        self._write_line(way, index, self.backing.read_block(
            line_addr, self.geometry.line_bytes
        ))
        self.tags.write(entry, tag, valid=True, dirty=False, ns=ns)
        if OBS.enabled:
            OBS.counter_inc("cache.line_fills", 1, cache=self.name)
        return way

    def _reconstruct_addr(self, tag: int, index: int) -> int:
        g = self.geometry
        return (tag << (g.offset_bits + g.index_bits)) | (index << g.offset_bits)

    # ------------------------------------------------------------------
    # Maintenance operations (the ISA-visible ones the paper discusses)
    # ------------------------------------------------------------------

    def clean_invalidate_all(self) -> None:
        """Write back dirty lines and drop all valid bits.

        Crucially, the data RAM contents are *left in place* — this is
        the paper's §5.2.4 observation that clean/invalidate does not
        destroy data.
        """
        for index in range(self.geometry.sets):
            for way in range(self.geometry.ways):
                entry = self._entry(index, way)
                tag, valid, dirty, _ns = self.tags.read(entry)
                if valid and dirty:
                    self.backing.write_block(
                        self._reconstruct_addr(tag, index),
                        self._read_line(way, index),
                    )
                self.tags.clear_valid(entry)

    def clean_invalidate_line(self, addr: int) -> bool:
        """Clean+invalidate the line containing ``addr`` (DMA maintenance).

        Non-coherent DMA forces kernels to clean/invalidate buffer lines
        by VA before device access; like the bulk variant, it leaves the
        data RAM contents in place.  Returns True when a line matched.
        """
        tag, index, _ = self.geometry.split(addr)
        way = self._lookup(tag, index)
        if way is None:
            return False
        entry = self._entry(index, way)
        _tag, _valid, dirty, _ns = self.tags.read(entry)
        if dirty:
            self.backing.write_block(
                self._reconstruct_addr(tag, index), self._read_line(way, index)
            )
        self.tags.clear_valid(entry)
        return True

    def invalidate_all(self) -> None:
        """Drop all valid bits without writing anything back."""
        for index in range(self.geometry.sets):
            for way in range(self.geometry.ways):
                self.tags.clear_valid(self._entry(index, way))

    def zero_line(self, addr: int, ns: bool = True) -> None:
        """``DC ZVA``: allocate the line containing ``addr`` and zero it.

        The only architectural way to actually erase L1 data RAM
        (paper §5.2.4); available for data caches only.
        """
        if not self.enabled:
            raise CircuitError(f"{self.name}: DC ZVA needs the cache enabled")
        tag, index, _ = self.geometry.split(addr)
        way = self._lookup(tag, index)
        if way is None:
            way = self._choose_victim(index)
            entry = self._entry(index, way)
            old_tag, valid, dirty, _ns = self.tags.read(entry)
            if valid and dirty:
                self.backing.write_block(
                    self._reconstruct_addr(old_tag, index),
                    self._read_line(way, index),
                )
            self.tags.write(entry, tag, valid=True, dirty=True, ns=ns)
        else:
            self.tags.set_flags(self._entry(index, way), dirty=True)
        self._write_line(way, index, bytes(self.geometry.line_bytes))
        self._touch(index, way)
        if OBS.enabled:
            OBS.counter_inc("cache.lines_zeroed", 1, cache=self.name)

    def zero_all_lines(self, base_addr: int = 0) -> None:
        """Zero the entire data RAM with a DC ZVA sweep.

        Sweeps ``ways * sets`` distinct lines whose indices cover every
        set in every way — the software mitigation loop from §8.
        """
        g = self.geometry
        for way_pass in range(g.ways):
            for index in range(g.sets):
                addr = (
                    base_addr
                    + way_pass * g.way_bytes * 2  # distinct tags per pass
                    + index * g.line_bytes
                )
                self.zero_line(addr)

    # ------------------------------------------------------------------
    # Raw access (debug interface path)
    # ------------------------------------------------------------------

    def raw_way_image(self, way: int) -> bytes:
        """Dump one way's data RAM, valid bits be damned.

        This is what CP15 RAMINDEX returns; access control lives in
        :mod:`repro.soc.cp15`, not here.
        """
        if not 0 <= way < self.geometry.ways:
            raise MemoryMapError(f"{self.name}: no way {way}")
        return self.data_rams[way].read_bytes()

    def raw_tag_entry(self, index: int, way: int) -> tuple[int, bool, bool, bool]:
        """Dump one raw tag entry (tag, valid, dirty, ns)."""
        return self.tags.read(self._entry(index, way))

    def line_security(self, index: int, way: int) -> bool:
        """Whether a line is marked secure (NS bit clear)."""
        _tag, _valid, _dirty, ns = self.tags.read(self._entry(index, way))
        return not ns
