"""CP15 / system-register debug access to internal RAMs.

Cortex-A cores expose their internal RAMs (cache data, cache tags, TLBs,
BTBs) through the CP15 co-processor interface for low-level memory-error
debugging.  On the Cortex-A72 the attacker issues a RAMINDEX operation
(``SYS #0, c15, c4, #0, <xt>``), executes ``DSB SY; ISB``, and then reads
the cache *data register interface* — paper §6.1 step 3.

The model enforces the three real-world constraints:

* RAMINDEX is privileged — the paper uses EL3;
* the barrier sequence matters on an out-of-order core: reading the data
  register before ``DSB``/``ISB`` returns stale garbage, not the
  requested line;
* TrustZone filters the response: a line whose NS bit marks it secure is
  not served to a non-secure requester.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import AccessViolation, SecureAccessViolation
from .cache import SetAssociativeCache
from .context import ExecutionContext
from .readnoise import BitErrorModel


class RamId(enum.Enum):
    """Internal RAM selectors, mirroring the TRM's RAMINDEX encoding."""

    L1D_DATA = "l1d-data"
    L1D_TAG = "l1d-tag"
    L1I_DATA = "l1i-data"
    L1I_TAG = "l1i-tag"
    TLB = "tlb"
    BTB = "btb"


@dataclass
class _PendingRead:
    """An issued RAMINDEX op waiting for barriers before readout."""

    ram: RamId
    way: int
    index: int
    dsb_done: bool = False
    isb_done: bool = False


class Cp15Interface:
    """Per-core CP15 RAMINDEX front-end over a core's L1 caches.

    One instance serves one core; the SoC hands them out per core index.
    """

    #: Minimum exception level for RAMINDEX.  The paper performs its
    #: dumps from EL3 on open devices; the operation itself is granted
    #: to any hypervisor-level-or-above context — on a TrustZone-locked
    #: part the attacker's non-secure EL2 image can still issue it, and
    #: the NS-bit filtering below is what protects secure lines (§8).
    REQUIRED_EL = 2

    def __init__(
        self,
        core_index: int,
        l1d: SetAssociativeCache,
        l1i: SetAssociativeCache,
        trustzone_enforced: bool = False,
        tlb=None,
        btb=None,
    ) -> None:
        self.core_index = core_index
        self._l1d = l1d
        self._l1i = l1i
        self._tlb = tlb
        self._btb = btb
        self.trustzone_enforced = trustzone_enforced
        self._pending: _PendingRead | None = None
        self._data_register = b"\x00" * l1d.geometry.line_bytes
        #: Imperfect-rig model: dump-loop read errors on a rail held at
        #: retention voltage (arm with :meth:`set_read_noise`).
        self.read_noise: BitErrorModel | None = None

    def set_read_noise(self, model: BitErrorModel | None) -> None:
        """Arm (or disarm, with ``None``) the per-bit read-error model.

        The model corrupts only what :meth:`read_data_register` returns
        — the cache arrays themselves are never modified, so repeated
        dumps of the same line draw fresh, independent errors (which is
        exactly what majority-vote multi-read extraction exploits).
        """
        self.read_noise = model

    def _cache_for(self, ram: RamId) -> SetAssociativeCache:
        if ram in (RamId.L1D_DATA, RamId.L1D_TAG):
            return self._l1d
        return self._l1i

    def _entry_array_for(self, ram: RamId):
        structure = self._tlb if ram is RamId.TLB else self._btb
        if structure is None:
            raise AccessViolation(f"this core exposes no {ram.value} RAM")
        return structure

    # ------------------------------------------------------------------
    # Low-level instruction-equivalent operations
    # ------------------------------------------------------------------

    def ramindex(
        self, ctx: ExecutionContext, ram: RamId, way: int, index: int
    ) -> None:
        """Issue the RAMINDEX system operation (the ``SYS`` instruction)."""
        ctx.require_el(self.REQUIRED_EL, "RAMINDEX")
        if ram in (RamId.TLB, RamId.BTB):
            structure = self._entry_array_for(ram)
            if not 0 <= index < structure.entries:
                raise AccessViolation(
                    f"RAMINDEX: no entry {index} in {structure.name}"
                )
        else:
            cache = self._cache_for(ram)
            if not 0 <= way < cache.geometry.ways:
                raise AccessViolation(f"RAMINDEX: no way {way} in {cache.name}")
            if not 0 <= index < cache.geometry.sets:
                raise AccessViolation(f"RAMINDEX: no set {index} in {cache.name}")
        self._pending = _PendingRead(ram, way, index)

    def dsb(self) -> None:
        """Data synchronisation barrier (``DSB SY``)."""
        if self._pending is not None:
            self._pending.dsb_done = True

    def isb(self) -> None:
        """Instruction synchronisation barrier (``ISB``)."""
        if self._pending is not None and self._pending.dsb_done:
            self._pending.isb_done = True

    def read_data_register(self, ctx: ExecutionContext) -> bytes:
        """Read the cache data register interface.

        Without the full ``DSB``+``ISB`` sequence after RAMINDEX the
        register still holds its previous content — the out-of-order
        hazard the paper warns about.
        """
        ctx.require_el(self.REQUIRED_EL, "cache data register read")
        pending = self._pending
        if pending is None or not (pending.dsb_done and pending.isb_done):
            return self._data_register  # stale: barriers not honoured
        if pending.ram in (RamId.TLB, RamId.BTB):
            structure = self._entry_array_for(pending.ram)
            image = structure.raw_image()
            entry_bytes = 16
            start = pending.index * entry_bytes
            payload = image[start : start + entry_bytes]
            if self.read_noise is not None:
                payload = self.read_noise.corrupt(payload)
            self._data_register = payload
            self._pending = None
            return payload
        cache = self._cache_for(pending.ram)
        if pending.ram in (RamId.L1D_TAG, RamId.L1I_TAG):
            tag, valid, dirty, ns = cache.raw_tag_entry(pending.index, pending.way)
            self._check_security(ctx, ns)
            word = tag | (int(valid) << 48) | (int(dirty) << 49) | (int(ns) << 50)
            payload = word.to_bytes(8, "little")
        else:
            _t, _v, _d, ns = cache.raw_tag_entry(pending.index, pending.way)
            self._check_security(ctx, ns)
            line_bytes = cache.geometry.line_bytes
            image = cache.raw_way_image(pending.way)
            start = pending.index * line_bytes
            payload = image[start : start + line_bytes]
        if self.read_noise is not None:
            payload = self.read_noise.corrupt(payload)
        self._data_register = payload
        self._pending = None
        return payload

    def _check_security(self, ctx: ExecutionContext, line_ns: bool) -> None:
        if self.trustzone_enforced and not line_ns and not ctx.secure:
            raise SecureAccessViolation(
                "RAMINDEX on a secure cache line from the non-secure world"
            )

    # ------------------------------------------------------------------
    # Convenience dumps (well-formed instruction sequences)
    # ------------------------------------------------------------------

    def read_line(
        self, ctx: ExecutionContext, ram: RamId, way: int, index: int
    ) -> bytes:
        """One correctly-barriered RAMINDEX read of a single line/entry."""
        self.ramindex(ctx, ram, way, index)
        self.dsb()
        self.isb()
        return self.read_data_register(ctx)

    def dump_way(
        self, ctx: ExecutionContext, ram: RamId, way: int,
        skip_secure: bool = False,
    ) -> bytes:
        """Dump an entire way of a cache RAM, line by line.

        With ``skip_secure`` set, secure lines are replaced by zero bytes
        instead of raising — useful for a best-effort dump on a
        TrustZone-enforcing part.
        """
        cache = self._cache_for(ram)
        chunks: list[bytes] = []
        entry_size = (
            8 if ram in (RamId.L1D_TAG, RamId.L1I_TAG)
            else cache.geometry.line_bytes
        )
        for index in range(cache.geometry.sets):
            try:
                chunks.append(self.read_line(ctx, ram, way, index))
            except SecureAccessViolation:
                if not skip_secure:
                    raise
                chunks.append(b"\x00" * entry_size)
        return b"".join(chunks)

    def dump_entry_ram(self, ctx: ExecutionContext, ram: RamId) -> bytes:
        """Dump a TLB or BTB entry RAM through RAMINDEX."""
        structure = self._entry_array_for(ram)
        return b"".join(
            self.read_line(ctx, ram, 0, index)
            for index in range(structure.entries)
        )
