"""Execution contexts: exception level and security state.

Every privileged interface in the SoC (CP15, cache maintenance, secure
memory) checks the requesting agent's exception level (EL0–EL3) and
TrustZone security state.  Attacker-supplied boot images normally obtain
(EL3, secure); a device that enforces TrustZone/authenticated boot pins
third-party code to the non-secure world.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PrivilegeViolation


@dataclass(frozen=True)
class ExecutionContext:
    """Who is performing an access."""

    el: int = 1
    secure: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.el <= 3:
            raise PrivilegeViolation(f"no such exception level: EL{self.el}")

    def require_el(self, minimum: int, what: str) -> None:
        """Raise unless this context runs at ``minimum`` or above."""
        if self.el < minimum:
            raise PrivilegeViolation(
                f"{what} requires EL{minimum}; caller is at EL{self.el}"
            )


#: The context a victim application runs in (userspace).
EL0_NS = ExecutionContext(el=0, secure=False)

#: A non-secure OS kernel.
EL1_NS = ExecutionContext(el=1, secure=False)

#: Firmware / secure monitor — what an attacker-controlled boot image
#: gets on a device without enforced secure boot.
EL3_SECURE = ExecutionContext(el=3, secure=True)

#: The best an attacker gets when TrustZone + authenticated boot pin
#: third-party code to the normal world.
EL2_NS = ExecutionContext(el=2, secure=False)
