"""Boot ROM behaviour: scratchpad clobbering and authenticated boot.

Two boot-time behaviours decide how much retained SRAM an attacker can
actually read back (paper §6.2):

* **Scratchpad clobbering.** Boot ROMs that bring up DRAM controllers use
  part of the iRAM as scratch space *before* any external code or debug
  connection runs.  On the i.MX53 this wipes the region around
  ``0xF800083C``–``0xF80018CC`` plus a tail block — ~5 % of the iRAM —
  and is the sole error source in the paper's Figure 10.
* **Authenticated boot.**  Devices that fuse an OEM image hash refuse to
  boot attacker-supplied media, removing the attacker's post-reboot
  readout capability entirely (§8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import AuthenticatedBootError, BootError
from ..obs import OBS
from .iram import Iram


@dataclass(frozen=True)
class ClobberRegion:
    """A byte range of on-chip RAM the boot ROM uses as scratch space."""

    start: int
    end: int  # exclusive

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise BootError(f"empty clobber region [{self.start:#x}, {self.end:#x})")

    @property
    def size(self) -> int:
        """Region size in bytes."""
        return self.end - self.start


@dataclass(frozen=True)
class BootMedia:
    """A bootable image on external media (USB mass storage, SD card)."""

    name: str
    signature: str = "unsigned"
    kernel: str = "extractor"


@dataclass
class BootRom:
    """Mask ROM boot behaviour of one SoC.

    Parameters
    ----------
    name:
        ROM identity for reports.
    scratchpad_regions:
        iRAM byte ranges (relative to iRAM base) clobbered before any
        external code runs.
    internal_boot:
        True when the SoC boots entirely from ROM (i.MX53-style) and
        external media is optional; False when boot requires media.
    auth_fused:
        When True, only media whose ``signature`` equals
        ``expected_signature`` boots.
    """

    name: str
    scratchpad_regions: list[ClobberRegion] = field(default_factory=list)
    internal_boot: bool = False
    auth_fused: bool = False
    expected_signature: str = "oem-signed"

    def check_media(self, media: BootMedia | None) -> None:
        """Validate boot media against the SoC's boot policy."""
        if media is None:
            if not self.internal_boot:
                raise BootError(f"{self.name}: no boot media and no internal ROM boot")
            return
        if self.auth_fused and media.signature != self.expected_signature:
            raise AuthenticatedBootError(
                f"{self.name}: media {media.name!r} signature "
                f"{media.signature!r} rejected by boot fuses"
            )

    def run_scratchpad(self, iram: Iram | None, rng: np.random.Generator) -> int:
        """Execute the ROM's pre-boot phase, clobbering iRAM scratch space.

        The clobber data is ROM working state (stack frames, DDR training
        buffers), modelled as pseudo-random bytes.  Returns the number of
        bytes clobbered.
        """
        if iram is None or not self.scratchpad_regions:
            return 0
        clobbered = 0
        for region in self.scratchpad_regions:
            if region.end > iram.size_bytes:
                raise BootError(
                    f"{self.name}: clobber region [{region.start:#x}, "
                    f"{region.end:#x}) exceeds iRAM of {iram.size_bytes:#x} bytes"
                )
            junk = rng.integers(0, 256, region.size, dtype=np.uint8).tobytes()
            iram.write_block(iram.base_addr + region.start, junk)
            clobbered += region.size
        if OBS.enabled and clobbered:
            OBS.counter_inc(
                "bootrom.bytes_clobbered", clobbered, rom=self.name
            )
            OBS.event(
                "bootrom.scratchpad",
                rom=self.name,
                bytes_clobbered=clobbered,
                regions=len(self.scratchpad_regions),
            )
        return clobbered

    def clobbered_fraction(self, iram: Iram | None) -> float:
        """Fraction of the iRAM the ROM overwrites at every boot."""
        if iram is None or not self.scratchpad_regions:
            return 0.0
        total = sum(r.size for r in self.scratchpad_regions)
        return total / iram.size_bytes
