"""VideoCore co-processor boot behaviour.

The Broadcom SoCs in Raspberry Pis boot through a VideoCore GPU that runs
its own pre-compiled firmware *before* releasing the ARM cluster.  That
firmware's working set streams through the shared L2 cache and clobbers
it completely, which is why the paper reports the Pi's L2 is unavailable
to a post-reboot attacker while the (software-enabled, untouched) L1s are
fully recoverable (§6.2).
"""

from __future__ import annotations

import numpy as np

from ..rng import from_entropy
from .cache import SetAssociativeCache


class VideoCore:
    """The GPU/boot co-processor of a Broadcom SoC."""

    def __init__(self, shared_l2: SetAssociativeCache, rng_seed: int) -> None:
        self._l2 = shared_l2
        self._rng_seed = int(rng_seed)
        self.boot_count = 0

    def run_boot_firmware(self) -> int:
        """Stream the firmware working set through the shared L2.

        Overwrites every data-RAM byte of the L2 with firmware working
        data and invalidates the tags, exactly as the real boot does from
        the ARM cores' point of view.  Returns bytes clobbered.
        """
        rng = from_entropy((self._rng_seed, self.boot_count))
        clobbered = 0
        for way, data_ram in enumerate(self._l2.data_rams):
            junk = rng.integers(0, 256, data_ram.n_bytes, dtype=np.uint8)
            data_ram.write_bytes(0, junk.tobytes())
            clobbered += data_ram.n_bytes
        self._l2.invalidate_all()
        self._l2.reset_architectural_state()
        self.boot_count += 1
        return clobbered
