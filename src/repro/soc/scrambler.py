"""DRAM bus scrambling — the deployed cold boot mitigation (paper §9.1).

Since Intel's 6th generation, memory controllers scramble data on its
way to DRAM with a keystream derived from a per-boot session seed
(paper refs [29], [43]): the array stores ciphertext, so a cold-booted
module read in another machine (or after a reboot that rolls the seed)
yields garbage.  The model wraps any memory port with an XOR keystream
whose seed changes on every ``reseed`` (called from the boot flow).

This is what pushes attackers toward the *unscrambled* on-chip SRAM —
the paper's §5.2.2 attack enabler.
"""

from __future__ import annotations

import numpy as np

from ..errors import MemoryMapError
from ..rng import from_entropy
from .memory_map import MemoryPort

#: Keystream block size.  Real scramblers work per burst; any fixed
#: block that lets us regenerate the stream from (seed, address) works.
KEYSTREAM_BLOCK = 64


class ScrambledMemory:
    """A memory port that XOR-scrambles data with a per-boot keystream."""

    def __init__(self, inner: MemoryPort, session_seed: int) -> None:
        self.inner = inner
        self._session_seed = int(session_seed)

    @property
    def session_seed(self) -> int:
        """The current scrambler session seed."""
        return self._session_seed

    def reseed(self, session_seed: int) -> None:
        """Roll the session key (happens at every boot)."""
        self._session_seed = int(session_seed)

    def _keystream(self, addr: int, size: int) -> np.ndarray:
        first_block = addr // KEYSTREAM_BLOCK
        last_block = (addr + size - 1) // KEYSTREAM_BLOCK
        chunks = []
        for block in range(first_block, last_block + 1):
            rng = from_entropy((self._session_seed, block))
            chunks.append(rng.integers(0, 256, KEYSTREAM_BLOCK, dtype=np.uint8))
        stream = np.concatenate(chunks)
        start = addr - first_block * KEYSTREAM_BLOCK
        return stream[start : start + size]

    def read_block(self, addr: int, size: int) -> bytes:
        """Read and descramble with the *current* session key.

        If the stored data was scrambled under an older session (i.e. it
        survived a power cycle while the seed rolled), the result is
        uniformly garbage — which is the point.
        """
        if size <= 0:
            raise MemoryMapError("read size must be positive")
        raw = np.frombuffer(self.inner.read_block(addr, size), dtype=np.uint8)
        return (raw ^ self._keystream(addr, size)).tobytes()

    def write_block(self, addr: int, data: bytes) -> None:
        """Scramble with the current session key and store."""
        raw = np.frombuffer(bytes(data), dtype=np.uint8)
        scrambled = raw ^ self._keystream(addr, len(raw))
        self.inner.write_block(addr, scrambled.tobytes())

    def raw_array_read(self, addr: int, size: int) -> bytes:
        """What a chip-off / bus-probing attacker sees: the ciphertext."""
        return self.inner.read_block(addr, size)
