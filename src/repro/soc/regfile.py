"""SRAM-backed CPU register files.

Paper §7.2 attacks the 128-bit NEON/FP vector registers ``v0..v31``,
which TRESOR-style schemes use as key storage precisely because they sit
on-chip.  Register files are small SRAM macros inside the core power
domain, so a probe on VDD_CORE rides them through a power cycle just like
the L1 arrays.

Two register files are modelled: the general-purpose file (``x0..x30``)
and the vector file (``v0..v31``).  Both are backed by
:class:`~repro.circuits.sram.SramArray` so the power layer treats them as
ordinary volatile loads.
"""

from __future__ import annotations

import numpy as np

from ..errors import CpuFault
from ..circuits.sram import SramArray, SramParameters


class RegisterFile:
    """A bank of fixed-width registers stored in an SRAM macro."""

    def __init__(
        self,
        name: str,
        count: int,
        width_bits: int,
        sram_params: SramParameters,
        rng: np.random.Generator,
    ) -> None:
        if width_bits % 8:
            raise CpuFault("register width must be a whole number of bytes")
        self.name = name
        self.count = count
        self.width_bits = width_bits
        self.width_bytes = width_bits // 8
        self.sram = SramArray(
            count * width_bits, sram_params, rng, name=f"{name}.sram"
        )

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.count:
            raise CpuFault(f"{self.name}: no register {index}")

    def read(self, index: int) -> int:
        """Read a register as an unsigned integer."""
        self._check_index(index)
        raw = self.sram.read_bytes(index * self.width_bytes, self.width_bytes)
        return int.from_bytes(raw, "little")

    def write(self, index: int, value: int) -> None:
        """Write an unsigned integer, truncated to the register width."""
        self._check_index(index)
        value &= (1 << self.width_bits) - 1
        self.sram.write_bytes(
            index * self.width_bytes, value.to_bytes(self.width_bytes, "little")
        )

    def read_bytes(self, index: int) -> bytes:
        """Read a register as little-endian bytes."""
        self._check_index(index)
        return self.sram.read_bytes(index * self.width_bytes, self.width_bytes)

    def write_bytes(self, index: int, data: bytes) -> None:
        """Write a register from little-endian bytes (must be exact width)."""
        self._check_index(index)
        if len(data) != self.width_bytes:
            raise CpuFault(
                f"{self.name}: register is {self.width_bytes} bytes, "
                f"got {len(data)}"
            )
        self.sram.write_bytes(index * self.width_bytes, data)

    def dump(self) -> list[int]:
        """All register values, in index order."""
        return [self.read(i) for i in range(self.count)]

    def image(self) -> bytes:
        """The raw register-file SRAM image."""
        return self.sram.read_bytes()


def general_purpose_file(
    sram_params: SramParameters, rng: np.random.Generator, name: str = "gpr"
) -> RegisterFile:
    """Build the aarch64 general-purpose file: x0..x30, 64-bit."""
    return RegisterFile(name, count=31, width_bits=64, sram_params=sram_params, rng=rng)


def vector_file(
    sram_params: SramParameters, rng: np.random.Generator, name: str = "vreg"
) -> RegisterFile:
    """Build the NEON/FP vector file: v0..v31, 128-bit."""
    return RegisterFile(name, count=32, width_bits=128, sram_params=sram_params, rng=rng)
