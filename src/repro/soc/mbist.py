"""Memory built-in self-test (MBIST) engine — the hardware countermeasure.

Paper §8 ("Resetting SRAMs at startup"): hardware that rewrites every
SRAM macro at reset would deny a Volt Boot attacker the post-reboot
readout even though the cells physically retained state.  The paper's
survey finds such reset hardware uncommon; the model makes it an opt-in
device feature so the countermeasures experiment can measure its effect.
"""

from __future__ import annotations

from ..circuits.sram import SramArray


class MbistEngine:
    """Boot-time SRAM initialisation engine."""

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._arrays: list[SramArray] = []
        self.resets_performed = 0

    def cover(self, *arrays: SramArray) -> None:
        """Register SRAM macros under this engine's reset domain."""
        self._arrays.extend(arrays)

    @property
    def covered_arrays(self) -> list[SramArray]:
        """Macros wired to the engine."""
        return list(self._arrays)

    def run_boot_reset(self) -> int:
        """Zero every covered macro if the feature is enabled.

        Returns the number of bytes initialised (0 when disabled, the
        common commercial case).
        """
        if not self.enabled:
            return 0
        total = 0
        for array in self._arrays:
            if array.powered:
                array.fill_bytes(0x00)
                total += array.n_bytes
        self.resets_performed += 1
        return total
