"""On-chip iRAM (OCRAM) — directly addressable internal SRAM.

Multimedia and microcontroller-class SoCs carry tens to hundreds of
kilobytes of internal RAM used for boot firmware scratch space, DMA
buffers, and — in schemes like Sentry — as cold-boot-safe working memory.
The i.MX53's 128 KB iRAM lives in the L1 memory power domain (rail
VDDAL1), *separate from the CPU core rail* (VCCGP), which is exactly what
lets the paper hold it alive while the core reboots (§7.3).
"""

from __future__ import annotations

import numpy as np

from ..errors import MemoryMapError
from ..circuits.sram import SramArray, SramParameters


class Iram:
    """Memory-mapped internal SRAM."""

    def __init__(
        self,
        name: str,
        base_addr: int,
        size_bytes: int,
        sram_params: SramParameters,
        rng: np.random.Generator,
    ) -> None:
        self.name = name
        self.base_addr = base_addr
        self.size_bytes = size_bytes
        self.sram = SramArray(size_bytes * 8, sram_params, rng, name=f"{name}.sram")

    @property
    def end_addr(self) -> int:
        """One past the last mapped address."""
        return self.base_addr + self.size_bytes

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside the iRAM window."""
        return self.base_addr <= addr < self.end_addr

    def _offset(self, addr: int, size: int) -> int:
        if not (self.contains(addr) and addr + size <= self.end_addr):
            raise MemoryMapError(
                f"{self.name}: [{addr:#x}, {addr + size:#x}) outside "
                f"[{self.base_addr:#x}, {self.end_addr:#x})"
            )
        return addr - self.base_addr

    def read_block(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes at absolute address ``addr``."""
        return self.sram.read_bytes(self._offset(addr, size), size)

    def write_block(self, addr: int, data: bytes) -> None:
        """Write ``data`` at absolute address ``addr``."""
        self.sram.write_bytes(self._offset(addr, len(data)), data)

    def image(self) -> bytes:
        """Full iRAM contents."""
        return self.sram.read_bytes()
