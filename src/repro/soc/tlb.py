"""TLB and BTB: microarchitectural SRAM targets beyond the caches.

Paper §2.1: a Cortex-A72 exposes *fifteen* internal RAMs through the
CP15 interface — caches, but also TLBs and branch target buffers.
These structures never hold the victim's data, yet they retain its
*footprint*: which pages it touched (TLB) and where its control flow
went (BTB).  Volt Boot preserves both across a power cycle, so an
attacker can reconstruct a victim's address-space layout and hot loops
even when the data itself was scrubbed.

Model simplifications, documented: translations are identity-mapped
(the simulated CPU has no MMU), entries carry an ASID so per-process
footprints stay distinguishable, and replacement is round-robin (TLB) /
direct-mapped (BTB) as on the real part.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.sram import SramArray, SramParameters
from ..errors import MemoryMapError

#: Bytes per TLB/BTB entry in the backing SRAM.
ENTRY_BYTES = 16

_VALID_BIT = 1 << 127


@dataclass(frozen=True)
class TlbEntry:
    """One decoded TLB entry."""

    asid: int
    vpn: int
    ppn: int


@dataclass(frozen=True)
class BtbEntry:
    """One decoded BTB entry."""

    branch_pc: int
    target_pc: int


class _EntryArray:
    """Shared plumbing: fixed-size entries in one SRAM macro."""

    def __init__(
        self,
        name: str,
        entries: int,
        sram_params: SramParameters,
        rng: np.random.Generator,
    ) -> None:
        self.name = name
        self.entries = entries
        self.sram = SramArray(
            entries * ENTRY_BYTES * 8, sram_params, rng, name=f"{name}.sram"
        )

    def _read_word(self, index: int) -> int:
        raw = self.sram.read_bytes(index * ENTRY_BYTES, ENTRY_BYTES)
        return int.from_bytes(raw, "little")

    def _write_word(self, index: int, word: int) -> None:
        self.sram.write_bytes(
            index * ENTRY_BYTES, word.to_bytes(ENTRY_BYTES, "little")
        )

    def invalidate_all(self) -> None:
        """Drop every valid bit (contents stay, like cache maintenance)."""
        for index in range(self.entries):
            self._write_word(index, self._read_word(index) & ~_VALID_BIT)

    def raw_image(self) -> bytes:
        """The raw entry RAM — what RAMINDEX hands the attacker."""
        return self.sram.read_bytes()


class Tlb(_EntryArray):
    """A fully-associative TLB with a round-robin fill pointer."""

    PAGE_SHIFT = 12

    def __init__(
        self,
        entries: int,
        sram_params: SramParameters,
        rng: np.random.Generator,
        name: str = "tlb",
    ) -> None:
        super().__init__(name, entries, sram_params, rng)
        self._fill_pointer = 0  # flip-flop state; resets at reboot

    @staticmethod
    def _encode(asid: int, vpn: int, ppn: int) -> int:
        return (
            _VALID_BIT
            | ((asid & 0xFFFF) << 80)
            | ((vpn & 0xFFFFFFFFF) << 40)
            | (ppn & 0xFFFFFFFFF)
        )

    @staticmethod
    def _decode(word: int) -> TlbEntry:
        return TlbEntry(
            asid=(word >> 80) & 0xFFFF,
            vpn=(word >> 40) & 0xFFFFFFFFF,
            ppn=word & 0xFFFFFFFFF,
        )

    def reset_architectural_state(self) -> None:
        """Reboot: the fill pointer resets; SRAM contents do not."""
        self._fill_pointer = 0

    def lookup(self, asid: int, vpn: int) -> TlbEntry | None:
        """Find a valid translation."""
        for index in range(self.entries):
            word = self._read_word(index)
            if word & _VALID_BIT:
                entry = self._decode(word)
                if entry.asid == asid and entry.vpn == vpn:
                    return entry
        return None

    def insert(self, asid: int, vpn: int, ppn: int) -> int:
        """Fill a translation (page-walker behaviour); returns the slot."""
        slot = self._fill_pointer
        self._write_word(slot, self._encode(asid, vpn, ppn))
        self._fill_pointer = (self._fill_pointer + 1) % self.entries
        return slot

    def touch_address(self, asid: int, addr: int) -> None:
        """Record the page containing ``addr`` (identity translation)."""
        vpn = addr >> self.PAGE_SHIFT
        self.insert(asid, vpn, vpn)

    def valid_entries(self) -> list[TlbEntry]:
        """All currently valid entries."""
        out = []
        for index in range(self.entries):
            word = self._read_word(index)
            if word & _VALID_BIT:
                out.append(self._decode(word))
        return out

    @staticmethod
    def decode_raw_image(image: bytes) -> list[TlbEntry]:
        """Attacker-side decode of a raw RAMINDEX dump."""
        entries = []
        for offset in range(0, len(image), ENTRY_BYTES):
            word = int.from_bytes(image[offset : offset + ENTRY_BYTES], "little")
            if word & _VALID_BIT:
                entries.append(Tlb._decode(word))
        return entries


class Btb(_EntryArray):
    """A direct-mapped branch target buffer."""

    def __init__(
        self,
        entries: int,
        sram_params: SramParameters,
        rng: np.random.Generator,
        name: str = "btb",
    ) -> None:
        if entries & (entries - 1):
            raise MemoryMapError("BTB entry count must be a power of two")
        super().__init__(name, entries, sram_params, rng)

    @staticmethod
    def _encode(branch_pc: int, target_pc: int) -> int:
        return (
            _VALID_BIT
            | ((branch_pc & 0xFFFFFFFFFFFF) << 48)
            | (target_pc & 0xFFFFFFFFFFFF)
        )

    @staticmethod
    def _decode(word: int) -> BtbEntry:
        return BtbEntry(
            branch_pc=(word >> 48) & 0xFFFFFFFFFFFF,
            target_pc=word & 0xFFFFFFFFFFFF,
        )

    def _slot(self, branch_pc: int) -> int:
        return (branch_pc >> 2) & (self.entries - 1)

    def record(self, branch_pc: int, target_pc: int) -> int:
        """Record a taken branch; returns the slot used."""
        slot = self._slot(branch_pc)
        self._write_word(slot, self._encode(branch_pc, target_pc))
        return slot

    def predict(self, branch_pc: int) -> int | None:
        """The predicted target for a branch, if any."""
        word = self._read_word(self._slot(branch_pc))
        if not word & _VALID_BIT:
            return None
        entry = self._decode(word)
        return entry.target_pc if entry.branch_pc == branch_pc else None

    def valid_entries(self) -> list[BtbEntry]:
        """All currently valid entries."""
        out = []
        for index in range(self.entries):
            word = self._read_word(index)
            if word & _VALID_BIT:
                out.append(self._decode(word))
        return out

    @staticmethod
    def decode_raw_image(image: bytes) -> list[BtbEntry]:
        """Attacker-side decode of a raw RAMINDEX dump."""
        entries = []
        for offset in range(0, len(image), ENTRY_BYTES):
            word = int.from_bytes(image[offset : offset + ENTRY_BYTES], "little")
            if word & _VALID_BIT:
                entries.append(Btb._decode(word))
        return entries
