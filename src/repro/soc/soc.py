"""SoC composition: cores, caches, iRAM, domains, and boot machinery.

A :class:`Soc` assembles the architectural blocks out of the circuit
substrate and wires every SRAM macro into the power domain that feeds it
(paper §2.3 / Figure 2).  Device-specific shapes (cache geometries, iRAM
windows, domain-to-rail assignments) come from a :class:`SocConfig`; the
concrete boards the paper evaluates are built in :mod:`repro.devices`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.dram import DramArray
from ..circuits.passives import DisconnectSurge
from ..circuits.sram import SramParameters
from ..errors import PowerError
from ..power.domain import PowerDomain
from ..power.events import PowerEventLog
from ..power.pmu import PowerManagementUnit
from ..rng import SeedSequenceFactory
from .bootrom import BootRom
from .cache import CacheGeometry, SetAssociativeCache
from .cp15 import Cp15Interface
from .iram import Iram
from .mbist import MbistEngine
from .memory_map import MemoryMap
from .regfile import RegisterFile, general_purpose_file, vector_file
from .tlb import Btb, Tlb
from .videocore import VideoCore

#: Domain-membership keywords accepted in :class:`DomainSpec.members`.
MEMBER_KINDS = ("l1-caches", "registers", "l2", "iram", "dram")


@dataclass(frozen=True)
class DomainSpec:
    """One power domain of the SoC and what it feeds.

    ``members`` uses the keywords in :data:`MEMBER_KINDS`.  ``surge``
    describes the current transient this domain sees when the main input
    is cut while the domain is externally held — core domains that feed
    hungry CPU clusters spike hard; memory-only domains barely blip.
    """

    name: str
    nominal_v: float
    members: tuple[str, ...]
    surge: DisconnectSurge = field(default_factory=DisconnectSurge)

    def __post_init__(self) -> None:
        for member in self.members:
            if member not in MEMBER_KINDS:
                raise PowerError(
                    f"domain {self.name!r}: unknown member kind {member!r}"
                )


@dataclass(frozen=True)
class SocConfig:
    """Shape of one SoC."""

    name: str
    cpu_name: str
    core_count: int
    l1d_geometry: CacheGeometry
    l1i_geometry: CacheGeometry
    l2_geometry: CacheGeometry | None = None
    l2_shared_with_videocore: bool = False
    l1i_interleave: bool = False
    tlb_entries: int = 64
    btb_entries: int = 128
    l1_replacement: str = "lru"
    iram_base: int | None = None
    iram_size: int | None = None
    domains: tuple[DomainSpec, ...] = ()
    bootrom: BootRom | None = None
    trustzone_enforced: bool = False
    mbist_enabled: bool = False
    jtag_enabled: bool = True


class CoreUnit:
    """One CPU core's private hardware: L1s, register files, TLB, BTB."""

    def __init__(
        self,
        index: int,
        l1d: SetAssociativeCache,
        l1i: SetAssociativeCache,
        gpr: RegisterFile,
        vreg: RegisterFile,
        trustzone_enforced: bool,
        tlb: Tlb | None = None,
        btb: Btb | None = None,
    ) -> None:
        self.index = index
        self.l1d = l1d
        self.l1i = l1i
        self.gpr = gpr
        self.vreg = vreg
        self.tlb = tlb
        self.btb = btb
        self.cp15 = Cp15Interface(
            index, l1d, l1i, trustzone_enforced, tlb=tlb, btb=btb
        )

    def sram_macros(self):
        """All SRAM macros private to this core."""
        macros = [
            *self.l1d.sram_macros(),
            *self.l1i.sram_macros(),
            self.gpr.sram,
            self.vreg.sram,
        ]
        if self.tlb is not None:
            macros.append(self.tlb.sram)
        if self.btb is not None:
            macros.append(self.btb.sram)
        return macros


class Soc:
    """A system-on-chip instance assembled from a :class:`SocConfig`."""

    def __init__(
        self,
        config: SocConfig,
        memory_map: MemoryMap,
        dram: DramArray,
        seeds: SeedSequenceFactory,
        log: PowerEventLog,
    ) -> None:
        self.config = config
        self.memory_map = memory_map
        self.dram = dram
        self.log = log
        self._seeds = seeds

        # Optional shared L2 between the memory map and the L1s.
        self.l2: SetAssociativeCache | None = None
        l1_backing = memory_map
        if config.l2_geometry is not None:
            self.l2 = SetAssociativeCache(
                f"{config.name}.l2",
                config.l2_geometry,
                memory_map,
                self._sram_params_for("l2"),
                seeds.generator("l2"),
            )
            l1_backing = self.l2

        self.cores: list[CoreUnit] = []
        for index in range(config.core_count):
            core_seeds = seeds.child(f"core{index}")
            params = self._sram_params_for("core")
            l1d = SetAssociativeCache(
                f"{config.name}.c{index}.l1d",
                config.l1d_geometry,
                l1_backing,
                params,
                core_seeds.generator("l1d"),
                replacement=config.l1_replacement,
            )
            l1i = SetAssociativeCache(
                f"{config.name}.c{index}.l1i",
                config.l1i_geometry,
                l1_backing,
                params,
                core_seeds.generator("l1i"),
                line_interleave=config.l1i_interleave,
                replacement=config.l1_replacement,
            )
            gpr = general_purpose_file(
                params, core_seeds.generator("gpr"), name=f"c{index}.gpr"
            )
            vreg = vector_file(
                params, core_seeds.generator("vreg"), name=f"c{index}.vreg"
            )
            tlb = Tlb(
                config.tlb_entries, params, core_seeds.generator("tlb"),
                name=f"c{index}.tlb",
            )
            btb = Btb(
                config.btb_entries, params, core_seeds.generator("btb"),
                name=f"c{index}.btb",
            )
            self.cores.append(
                CoreUnit(
                    index, l1d, l1i, gpr, vreg, config.trustzone_enforced,
                    tlb=tlb, btb=btb,
                )
            )

        self.iram: Iram | None = None
        if config.iram_base is not None and config.iram_size is not None:
            self.iram = Iram(
                f"{config.name}.iram",
                config.iram_base,
                config.iram_size,
                self._sram_params_for("iram"),
                seeds.generator("iram"),
            )
            memory_map.add_region(
                "iram", config.iram_base, config.iram_size, self.iram
            )

        self.videocore: VideoCore | None = None
        if config.l2_shared_with_videocore and self.l2 is not None:
            self.videocore = VideoCore(self.l2, seeds.seed("videocore"))

        self.bootrom = config.bootrom or BootRom(name=f"{config.name}.bootrom")
        self.mbist = MbistEngine(enabled=config.mbist_enabled)

        # Power domains.
        self.pmu = PowerManagementUnit(log)
        self._build_domains()

        # MBIST covers every macro in the chip.
        for domain in self.pmu.domains():
            for load in domain.loads:
                if hasattr(load, "fill_bytes"):
                    self.mbist.cover(load)

    # ------------------------------------------------------------------
    # Assembly helpers
    # ------------------------------------------------------------------

    def _sram_params_for(self, _block: str) -> SramParameters:
        # One process corner for the whole die; the nominal voltage per
        # domain is applied by the power layer, so the macro default is
        # only a fallback.
        return SramParameters()

    def _domain_members(self, spec: DomainSpec):
        members = []
        for kind in spec.members:
            if kind == "l1-caches":
                # The per-core microarchitectural RAMs (TLB, BTB) share
                # the L1 power domain on the modelled parts.
                for core in self.cores:
                    members.extend(core.l1d.sram_macros())
                    members.extend(core.l1i.sram_macros())
                    if core.tlb is not None:
                        members.append(core.tlb.sram)
                    if core.btb is not None:
                        members.append(core.btb.sram)
            elif kind == "registers":
                for core in self.cores:
                    members.append(core.gpr.sram)
                    members.append(core.vreg.sram)
            elif kind == "l2":
                if self.l2 is None:
                    raise PowerError(
                        f"domain {spec.name!r} claims an L2 this SoC lacks"
                    )
                members.extend(self.l2.sram_macros())
            elif kind == "iram":
                if self.iram is None:
                    raise PowerError(
                        f"domain {spec.name!r} claims an iRAM this SoC lacks"
                    )
                members.append(self.iram.sram)
            elif kind == "dram":
                members.append(self.dram)
        return members

    def _build_domains(self) -> None:
        claimed: set[int] = set()
        for spec in self.config.domains:
            domain = PowerDomain(spec.name, spec.name, spec.nominal_v, self.log)
            for load in self._domain_members(spec):
                if id(load) in claimed:
                    raise PowerError(
                        f"load {load.name!r} claimed by two domains"
                    )
                claimed.add(id(load))
                domain.attach_load(load)
            self.pmu.add_domain(domain)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def domain_spec(self, name: str) -> DomainSpec:
        """Look up the config spec of a domain."""
        for spec in self.config.domains:
            if spec.name == name:
                return spec
        raise PowerError(f"{self.config.name}: unknown domain {name!r}")

    def domain_for_target(self, target: str) -> str:
        """Name of the domain feeding a target memory kind.

        ``target`` is one of the member keywords (``"l1-caches"``,
        ``"registers"``, ``"iram"``, ``"l2"``, ``"dram"``) — attack step 1
        of paper §6.1.
        """
        for spec in self.config.domains:
            if target in spec.members:
                return spec.name
        raise PowerError(f"{self.config.name}: nothing feeds target {target!r}")

    def core(self, index: int) -> CoreUnit:
        """Look up a core by index."""
        if not 0 <= index < len(self.cores):
            raise PowerError(f"{self.config.name}: no core {index}")
        return self.cores[index]

    def boot_rng(self, boot_count: int) -> np.random.Generator:
        """Deterministic-but-per-boot RNG for boot-time clobber data."""
        return self._seeds.generator("boot", str(boot_count))
