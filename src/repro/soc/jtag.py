"""JTAG debug probe access.

The i.MX53 boots from internal ROM with no external firmware, so the
paper extracts its iRAM directly over JTAG (§6.1 step 3, §7.3).  The
model exposes block reads/writes over the SoC's physical memory map,
gated on the debug port not being fused off.
"""

from __future__ import annotations

from ..errors import AccessViolation
from .memory_map import MemoryMap


class JtagProbe:
    """A debug adapter wired to the SoC's DAP."""

    def __init__(self, memory_map: MemoryMap, enabled: bool = True) -> None:
        self._map = memory_map
        self._enabled = enabled

    @property
    def enabled(self) -> bool:
        """Whether the debug port is usable (not fused off)."""
        return self._enabled

    def fuse_off(self) -> None:
        """Permanently disable the debug port (OEM production fuse)."""
        self._enabled = False

    def _check(self) -> None:
        if not self._enabled:
            raise AccessViolation("JTAG port is fused off")

    def read_block(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes of physical memory through the DAP."""
        self._check()
        return self._map.read_block(addr, size)

    def write_block(self, addr: int, data: bytes) -> None:
        """Write physical memory through the DAP."""
        self._check()
        self._map.write_block(addr, data)
