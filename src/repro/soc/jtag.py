"""JTAG debug probe access.

The i.MX53 boots from internal ROM with no external firmware, so the
paper extracts its iRAM directly over JTAG (§6.1 step 3, §7.3).  The
model exposes block reads/writes over the SoC's physical memory map,
gated on the debug port not being fused off.
"""

from __future__ import annotations

from ..errors import AccessViolation
from .memory_map import MemoryMap
from .readnoise import BitErrorModel


class JtagProbe:
    """A debug adapter wired to the SoC's DAP.

    ``read_noise`` arms the imperfect-adapter model: every block read
    passes through a :class:`~repro.soc.readnoise.BitErrorModel`, so a
    marginal adapter occasionally returns flipped bits (writes are
    verified on real adapters and stay exact).
    """

    def __init__(
        self,
        memory_map: MemoryMap,
        enabled: bool = True,
        read_noise: BitErrorModel | None = None,
    ) -> None:
        self._map = memory_map
        self._enabled = enabled
        self.read_noise = read_noise

    @property
    def enabled(self) -> bool:
        """Whether the debug port is usable (not fused off)."""
        return self._enabled

    def fuse_off(self) -> None:
        """Permanently disable the debug port (OEM production fuse)."""
        self._enabled = False

    def _check(self) -> None:
        if not self._enabled:
            raise AccessViolation("JTAG port is fused off")

    def read_block(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes of physical memory through the DAP.

        With a ``read_noise`` model armed, the returned bytes carry the
        adapter's per-bit read errors; the memory itself is untouched.
        """
        self._check()
        data = self._map.read_block(addr, size)
        if self.read_noise is not None:
            data = self.read_noise.corrupt(data)
        return data

    def write_block(self, addr: int, data: bytes) -> None:
        """Write physical memory through the DAP."""
        self._check()
        self._map.write_block(addr, data)
