"""A complete evaluation platform: SoC + PMIC + PDN + environment.

The :class:`Board` is the unit the attack operates on.  It owns the
physical interfaces of paper §6.1:

* the main power input (USB-C / barrel jack) — ``plug_in`` / ``unplug``;
* PCB test pads exposed by the PDN — ``attach_probe`` / ``detach_probe``;
* the thermal environment — ``set_temperature_c`` (the TestEquity chamber
  of §3);
* simulated time — ``wait`` (how long the board sits dark);
* the boot flow — ``boot`` with optional external media.

The central mechanic: on ``unplug``, every power domain collapses —
*except* domains whose board net carries an attached probe, which are
held alive through the disconnect surge.  That asymmetry is Volt Boot.
"""

from __future__ import annotations

from ..circuits.pdn import PowerDeliveryNetwork
from ..circuits.pmic import Pmic
from ..circuits.supply import BenchSupply, VoltageProbe
from ..errors import BootError, PowerError, ProbeError
from ..power.events import PowerEventKind, PowerEventLog
from ..rng import SeedSequenceFactory
from ..units import celsius_to_kelvin
from .bootrom import BootMedia
from .memory_map import MainMemory
from .soc import Soc


class Board:
    """One victim device: a populated PCB in a thermal environment."""

    def __init__(
        self,
        name: str,
        soc: Soc,
        pmic: Pmic,
        pdn: PowerDeliveryNetwork,
        main_memory: MainMemory,
        seeds: SeedSequenceFactory,
        log: PowerEventLog,
        root_seed: int | None = None,
    ) -> None:
        self.name = name
        self._root_seed = root_seed
        self.soc = soc
        self.pmic = pmic
        self.pdn = pdn
        self.main_memory = main_memory
        self.log = log
        self._seeds = seeds
        self._temperature_c = 25.0
        self._probes: dict[str, VoltageProbe] = {}
        self._boot_count = 0
        self.booted = False

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------

    @property
    def seed_root(self) -> int:
        """The root seed this board's randomness derives from.

        Builders pass the caller's original seed; a hand-assembled board
        falls back to its seed factory's root.
        """
        if self._root_seed is not None:
            return self._root_seed
        return self._seeds.root

    @property
    def temperature_c(self) -> float:
        """Present ambient/die temperature in Celsius."""
        return self._temperature_c

    @property
    def temperature_k(self) -> float:
        """Present temperature in kelvin."""
        return celsius_to_kelvin(self._temperature_c)

    def set_temperature_c(self, celsius: float) -> None:
        """Place the board in a thermal chamber at ``celsius``.

        The model treats soak as instantaneous; the paper stabilises for
        an hour, which we fold into the caller's narrative.
        """
        celsius_to_kelvin(celsius)  # validates
        self._temperature_c = celsius
        self.log.record(
            PowerEventKind.NOTE, self.name, f"temperature set to {celsius:g}C"
        )

    def wait(self, seconds: float) -> None:
        """Let simulated time pass; unpowered domains decay."""
        self.log.clock.advance(seconds)
        for domain in self.soc.pmu.domains():
            if not domain.powered:
                domain.elapse_unpowered(seconds, self.temperature_k)

    # ------------------------------------------------------------------
    # Main power
    # ------------------------------------------------------------------

    @property
    def powered(self) -> bool:
        """Whether the main input is connected."""
        return self.pmic.input_present

    def _rail_voltages(self) -> dict[str, float]:
        voltages = {}
        for domain in self.soc.pmu.domains():
            net = self.pdn.net_for_domain(domain.name)
            voltages[domain.name] = self.pdn.live_voltage(net.name)
        return voltages

    def plug_in(self) -> dict[str, dict[str, float]]:
        """Connect the main supply; the PMIC sequences every domain up.

        Returns per-domain retained-bit fractions for domains that came
        up from dark (externally-held domains are handed back to the
        PMIC, retaining everything — the attack's payoff moment).
        """
        if self.pmic.input_present:
            raise PowerError(f"{self.name}: already plugged in")
        self.pmic.connect_input()
        self.log.record(PowerEventKind.INPUT_CONNECTED, self.name)
        return self.soc.pmu.power_up_sequence(self._rail_voltages())

    def unplug(self) -> dict[str, int]:
        """Abruptly cut the main supply (battery pull / cable yank).

        Domains with a probe on their net are held alive through the
        disconnect surge; all others go dark instantly — too fast for any
        software purge routine to run (paper §3).  Returns, per held
        domain, the number of cells lost to the surge transient.
        """
        if not self.pmic.input_present:
            raise PowerError(f"{self.name}: already unplugged")
        self.pmic.disconnect_input()
        self.booted = False
        losses: dict[str, int] = {}
        for domain in self.soc.pmu.domains():
            if not domain.powered:
                continue
            net = self.pdn.net_for_domain(domain.name)
            probe = self._probes.get(net.name)
            if probe is None:
                domain.cut_power()
                continue
            surge = self.soc.domain_spec(domain.name).surge
            floor_v = probe.supply.minimum_rail_voltage(
                surge, net.decoupling, net.parasitics
            )
            steady_v = probe.supply.steady_state_voltage(surge.settle_current_a)
            if steady_v <= 0.0:
                # The probe current-limited into foldback: the rail dies.
                self.log.record(
                    PowerEventKind.NOTE,
                    domain.name,
                    "probe folded back under retention load; rail lost",
                )
                domain.cut_power()
                continue
            losses[domain.name] = domain.hold_external(steady_v, floor_v)
        self.log.record(PowerEventKind.INPUT_DISCONNECTED, self.name)
        return losses

    def power_cycle(self, off_seconds: float) -> dict[str, dict[str, float]]:
        """Unplug, sit dark for ``off_seconds``, plug back in."""
        self.unplug()
        self.wait(off_seconds)
        return self.plug_in()

    # ------------------------------------------------------------------
    # Probes (the attacker's hands)
    # ------------------------------------------------------------------

    def measure_pad_voltage(self, pad_name: str) -> float:
        """Attack step 2 first half: meter the pad's nominal voltage."""
        pad = self.pdn.pad(pad_name)
        domain_names = self.pdn.net(pad.net_name).domain_names
        if domain_names:
            domain = self.soc.pmu.domain(domain_names[0])
            if domain.powered:
                return domain.voltage
        return self.pdn.live_voltage(pad.net_name)

    def attach_probe(self, pad_name: str, supply: BenchSupply) -> VoltageProbe:
        """Land a bench-supply probe on a test pad."""
        pad = self.pdn.pad(pad_name)
        if pad.net_name in self._probes:
            raise ProbeError(f"{self.name}: net {pad.net_name!r} already probed")
        probe = VoltageProbe(supply, pad.name, pad.net_name)
        probe.attach(self.measure_pad_voltage(pad_name))
        self._probes[pad.net_name] = probe
        self.log.record(
            PowerEventKind.PROBE_ATTACHED,
            pad_name,
            f"{supply.voltage_v:.3f}V, limit {supply.current_limit_a:g}A",
        )
        return probe

    def detach_probe(self, pad_name: str) -> None:
        """Lift the probe off a pad.

        Detaching while the probe is the only thing holding a domain
        alive collapses that domain.
        """
        pad = self.pdn.pad(pad_name)
        probe = self._probes.get(pad.net_name)
        if probe is None or probe.pad_name != pad_name:
            raise ProbeError(f"{self.name}: no probe on {pad_name}")
        probe.detach()
        del self._probes[pad.net_name]
        for domain_name in self.pdn.net(pad.net_name).domain_names:
            domain = self.soc.pmu.domain(domain_name)
            if domain.held_externally:
                domain.cut_power()
        self.log.record(PowerEventKind.PROBE_DETACHED, pad_name)

    def probes(self) -> dict[str, VoltageProbe]:
        """Currently attached probes keyed by net name."""
        return dict(self._probes)

    # ------------------------------------------------------------------
    # Boot flow
    # ------------------------------------------------------------------

    def boot(self, media: BootMedia | None = None) -> None:
        """Run the boot flow: ROM, co-processors, firmware hand-off.

        Mirrors the behaviours of §6.2: the VideoCore clobbers the shared
        L2, the boot ROM clobbers its iRAM scratchpad, MBIST (if fitted
        and enabled) wipes everything, GPRs are consumed by boot code, and
        the L1 caches come up disabled with contents untouched.
        """
        if not self.powered:
            raise BootError(f"{self.name}: cannot boot without power")
        if self.booted:
            raise BootError(f"{self.name}: already booted; power cycle first")
        self.soc.bootrom.check_media(media)
        boot_rng = self.soc.boot_rng(self._boot_count)
        if self.soc.videocore is not None:
            self.soc.videocore.run_boot_firmware()
        self.soc.bootrom.run_scratchpad(self.soc.iram, boot_rng)
        self.soc.mbist.run_boot_reset()
        for core in self.soc.cores:
            core.l1d.reset_architectural_state()
            core.l1i.reset_architectural_state()
            if core.tlb is not None:
                core.tlb.reset_architectural_state()
            # Boot code burns through the general-purpose registers; the
            # vector file is not part of any boot sequence (paper §7.2).
            for reg in range(core.gpr.count):
                core.gpr.write(reg, int(boot_rng.integers(0, 2**63)))
        if self.soc.l2 is not None:
            self.soc.l2.reset_architectural_state()
        self._boot_count += 1
        self.booted = True
        self.log.record(
            PowerEventKind.BOOT,
            self.name,
            media.name if media is not None else "internal ROM",
        )
