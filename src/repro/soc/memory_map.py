"""Physical memory map: address decoding over heterogeneous backends.

The simulated CPU and the debug interfaces address one flat physical
space; this module routes each access to the region that owns it — main
DRAM, iRAM, or a boot ROM window.  Regions expose the same
``read_block``/``write_block`` port protocol the caches use, so a cache's
backing store can simply be the memory map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..errors import MemoryMapError
from ..circuits.dram import DramArray


class MemoryPort(Protocol):
    """Anything addressable by the map (DRAM, iRAM, ROM windows)."""

    def read_block(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes at absolute address ``addr``."""

    def write_block(self, addr: int, data: bytes) -> None:
        """Write ``data`` at absolute address ``addr``."""


class MainMemory:
    """DRAM module exposed as a memory-mapped port."""

    def __init__(self, dram: DramArray, base_addr: int = 0) -> None:
        self.dram = dram
        self.base_addr = base_addr
        self.size_bytes = dram.n_bytes

    def _offset(self, addr: int, size: int) -> int:
        end = self.base_addr + self.size_bytes
        if not (self.base_addr <= addr and addr + size <= end):
            raise MemoryMapError(
                f"dram: [{addr:#x}, {addr + size:#x}) outside "
                f"[{self.base_addr:#x}, {end:#x})"
            )
        return addr - self.base_addr

    def read_block(self, addr: int, size: int) -> bytes:
        """Read from DRAM at an absolute physical address."""
        return self.dram.read_bytes(self._offset(addr, size), size)

    def write_block(self, addr: int, data: bytes) -> None:
        """Write to DRAM at an absolute physical address."""
        self.dram.write_bytes(self._offset(addr, len(data)), data)


class RomWindow:
    """A read-only region (boot ROM image)."""

    def __init__(self, base_addr: int, image: bytes, name: str = "rom") -> None:
        self.base_addr = base_addr
        self.image_bytes = bytes(image)
        self.name = name

    def read_block(self, addr: int, size: int) -> bytes:
        """Read from the ROM image."""
        offset = addr - self.base_addr
        if offset < 0 or offset + size > len(self.image_bytes):
            raise MemoryMapError(f"{self.name}: read outside ROM window")
        return self.image_bytes[offset : offset + size]

    def write_block(self, addr: int, data: bytes) -> None:
        """ROMs reject writes."""
        raise MemoryMapError(f"{self.name}: ROM is read-only")


@dataclass(frozen=True)
class Region:
    """One entry in the memory map."""

    name: str
    base_addr: int
    size_bytes: int
    port: MemoryPort

    @property
    def end_addr(self) -> int:
        """One past the last address of the region."""
        return self.base_addr + self.size_bytes


class MemoryMap:
    """Flat physical address decoder."""

    def __init__(self) -> None:
        self._regions: list[Region] = []

    def add_region(
        self, name: str, base_addr: int, size_bytes: int, port: MemoryPort
    ) -> Region:
        """Map ``port`` at ``[base_addr, base_addr + size)``, no overlaps."""
        if size_bytes <= 0:
            raise MemoryMapError(f"{name}: region size must be positive")
        new = Region(name, base_addr, size_bytes, port)
        for existing in self._regions:
            if new.base_addr < existing.end_addr and existing.base_addr < new.end_addr:
                raise MemoryMapError(
                    f"{name} overlaps {existing.name} at {base_addr:#x}"
                )
        self._regions.append(new)
        self._regions.sort(key=lambda r: r.base_addr)
        return new

    def regions(self) -> list[Region]:
        """All regions, sorted by base address."""
        return list(self._regions)

    def region_for(self, addr: int, size: int = 1) -> Region:
        """Find the region containing ``[addr, addr + size)``."""
        for region in self._regions:
            if region.base_addr <= addr and addr + size <= region.end_addr:
                return region
        raise MemoryMapError(f"no region maps [{addr:#x}, {addr + size:#x})")

    def read_block(self, addr: int, size: int) -> bytes:
        """Read through the map (access must not straddle regions)."""
        return self.region_for(addr, size).port.read_block(addr, size)

    def write_block(self, addr: int, data: bytes) -> None:
        """Write through the map (access must not straddle regions)."""
        self.region_for(addr, len(data)).port.write_block(addr, data)
