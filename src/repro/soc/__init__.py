"""SoC substrate: caches, register files, iRAM, debug ports, boards.

This package builds the architectural layer on top of the circuit
substrate.  Everything volatile is backed by
:class:`~repro.circuits.sram.SramArray` macros so the power layer can
hold or drop whole power domains as physical units, exactly as the
paper's attack does.
"""

from .board import Board
from .bootrom import BootMedia, BootRom, ClobberRegion
from .cache import BackingStore, CacheGeometry, SetAssociativeCache, TagArray
from .context import EL0_NS, EL1_NS, EL2_NS, EL3_SECURE, ExecutionContext
from .cp15 import Cp15Interface, RamId
from .iram import Iram
from .jtag import JtagProbe
from .mbist import MbistEngine
from .memory_map import MainMemory, MemoryMap, MemoryPort, Region, RomWindow
from .regfile import RegisterFile, general_purpose_file, vector_file
from .soc import CoreUnit, DomainSpec, Soc, SocConfig
from .videocore import VideoCore

__all__ = [
    "Board",
    "BootMedia",
    "BootRom",
    "ClobberRegion",
    "BackingStore",
    "CacheGeometry",
    "SetAssociativeCache",
    "TagArray",
    "ExecutionContext",
    "EL0_NS",
    "EL1_NS",
    "EL2_NS",
    "EL3_SECURE",
    "Cp15Interface",
    "RamId",
    "Iram",
    "JtagProbe",
    "MbistEngine",
    "MainMemory",
    "MemoryMap",
    "MemoryPort",
    "Region",
    "RomWindow",
    "RegisterFile",
    "general_purpose_file",
    "vector_file",
    "CoreUnit",
    "DomainSpec",
    "Soc",
    "SocConfig",
    "VideoCore",
]
