"""Per-bit debug-read error model — the imperfect half of the bench.

Real JTAG adapters and CP15 dump loops are not error-free: marginal TCK
rates, long probe leads, and a rail held at retention voltage all show
up as occasional flipped bits in the dumped image (the paper's §6.1
reliability discussion; Bittner et al. report hundreds of imperfect
trials per success on comparable rigs).  :class:`BitErrorModel` is the
one place this is modelled: every debug read path
(:class:`~repro.soc.jtag.JtagProbe`,
:class:`~repro.soc.cp15.Cp15Interface`) can be armed with a model, and
each read corrupts independently from the model's seeded stream — so a
noisy dump is still byte-reproducible from the rig's root seed.
"""

from __future__ import annotations

import numpy as np

from ..circuits.engine import active_engine
from ..errors import CalibrationError
from ..obs import OBS


class BitErrorModel:
    """I.i.d. per-bit Bernoulli read errors from one seeded stream.

    ``rate`` is the probability that any given bit of a read is
    returned flipped; ``rng`` is a dedicated :func:`repro.rng.spawn`
    stream (never a shared generator — the draws consumed per read
    depend on the read size, so sharing would couple unrelated
    subsystems).  A rate of exactly ``0.0`` short-circuits: no draws
    are consumed and the data passes through untouched, which keeps
    ideal-rig runs bit-identical to runs with no model attached.
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 0.5:
            raise CalibrationError(
                f"bit error rate must be in [0, 0.5), got {rate}"
            )
        self.rate = float(rate)
        self._rng = rng
        self.bits_read = 0
        self.bits_flipped = 0

    def corrupt(self, data: bytes) -> bytes:
        """Return ``data`` with each bit independently flipped at ``rate``.

        Parameters
        ----------
        data:
            The raw dump to corrupt.  Consumes one bulk
            ``random(8 * len(data))`` draw from the model's stream
            (none when ``rate`` is 0 or ``data`` is empty), regardless
            of how many bits actually flip.

        Returns
        -------
        bytes
            ``data`` XORed with a packed Bernoulli flip mask — the
            input object itself when no bit flipped.
        """
        if self.rate <= 0.0 or not data:
            return data
        raw = np.frombuffer(data, dtype=np.uint8)
        mask, flipped = active_engine().flip_mask(
            self._rng, raw.size, self.rate
        )
        self.bits_read += raw.size * 8
        if flipped == 0:
            return data
        self.bits_flipped += flipped
        if OBS.enabled:
            OBS.counter_inc("rig.bits_read", raw.size * 8)
            OBS.counter_inc("rig.bit_flips", flipped)
        return (raw ^ mask).tobytes()

    @property
    def observed_rate(self) -> float:
        """Measured flip fraction so far (0.0 before any read)."""
        if not self.bits_read:
            return 0.0
        return self.bits_flipped / self.bits_read
