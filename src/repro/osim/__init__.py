"""Toy operating-system simulation: processes, scheduling, kernel noise.

Paper §7.1.2 attacks a victim running under Linux, where "the kernel's
background processes introduce errors in the data extraction by evicting
cache lines".  This package reproduces that dynamic behaviour:

* :mod:`~repro.osim.process` — victim process models: an interpreted
  bare-metal-style program, and a fast host-level array microbenchmark;
* :mod:`~repro.osim.noise` — kernel interference: cache-filling activity
  (interrupt handlers, daemons) and non-coherent-DMA cache maintenance
  (clean/invalidate by VA), the two mechanisms that evict and duplicate
  victim lines;
* :mod:`~repro.osim.kernel` — a round-robin scheduler interleaving
  victim quanta with kernel noise on each core.
"""

from .kernel import SimKernel
from .noise import KernelNoise, NoiseProfile
from .process import ArrayFillProcess, InterpretedProcess, Process

__all__ = [
    "SimKernel",
    "KernelNoise",
    "NoiseProfile",
    "ArrayFillProcess",
    "InterpretedProcess",
    "Process",
]
