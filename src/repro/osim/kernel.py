"""Round-robin scheduler interleaving victim work with kernel noise.

One :class:`SimKernel` drives one booted board.  Victim processes are
pinned to cores (the paper launches one benchmark process per core);
after every victim quantum the kernel's own activity interferes with
that core's d-cache.  The attack happens *mid-execution*: the caller
simply stops scheduling and cuts power, exactly like yanking the cable
on a live system.
"""

from __future__ import annotations

from ..errors import BootError, CpuFault
from ..rng import generator
from ..soc.board import Board
from .noise import IDLE_LINUX, KernelNoise, NoiseProfile
from .process import Process


class SimKernel:
    """A minimal OS over a booted :class:`~repro.soc.board.Board`."""

    def __init__(
        self,
        board: Board,
        noise_profile: NoiseProfile = IDLE_LINUX,
        seed_label: str = "oskernel",
    ) -> None:
        if not board.booted:
            raise BootError("the kernel needs a booted board")
        self.board = board
        self.noise_profile = noise_profile
        self._seed_label = seed_label
        self._processes: list[Process] = []
        self._noise: dict[int, KernelNoise] = {}
        self._rng_root = seed_label

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def enable_caches(self) -> None:
        """Invalidate + enable every core's L1s (kernel boot behaviour).

        A real kernel also executes TLBI/BPIALL before enabling the MMU
        and branch prediction, so the micro-architectural arrays start
        with clean valid bits (their payload SRAM is untouched, exactly
        like cache invalidation).
        """
        for core in self.board.soc.cores:
            if not core.l1d.enabled:
                core.l1d.invalidate_all()
                core.l1d.enabled = True
            if not core.l1i.enabled:
                core.l1i.invalidate_all()
                core.l1i.enabled = True
            if core.tlb is not None:
                core.tlb.invalidate_all()
            if core.btb is not None:
                core.btb.invalidate_all()

    def warm_caches(self) -> None:
        """Fill every d-cache with kernel working-set lines.

        A system that has been up for a while has no invalid L1 lines
        left; victim allocations then follow per-set LRU order, which
        this warm-up randomises — the reason the paper's array elements
        scatter across both ways instead of piling into way 0.
        """
        for core in self.board.soc.cores:
            if not core.l1d.enabled:
                continue
            geometry = core.l1d.geometry
            n_lines = geometry.sets * geometry.ways
            rng = generator(0xC0FFEE, self._rng_root, "warm", str(core.index))
            offsets = rng.permutation(n_lines * 2)[:n_lines]
            base = self.noise_profile.kernel_base
            for offset in offsets:
                core.l1d.read(base + int(offset) * geometry.line_bytes, 8)

    def spawn(self, process: Process) -> Process:
        """Register a victim process on its pinned core."""
        self.board.soc.core(process.core_index)  # validates index
        self._processes.append(process)
        victim_base = getattr(process, "base_addr", 0x40000)
        victim_span = getattr(process, "array_bytes", 0x8000)
        rng = generator(
            0xC0FFEE, self._rng_root, process.name, str(process.core_index)
        )
        self._noise[id(process)] = KernelNoise(
            self.noise_profile, rng, victim_base, victim_span
        )
        return process

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    @property
    def processes(self) -> list[Process]:
        """All registered processes."""
        return list(self._processes)

    def all_finished(self) -> bool:
        """Whether every victim process has run to completion."""
        return all(p.finished for p in self._processes)

    def run_round(self) -> None:
        """One scheduler round: a quantum + noise on every core."""
        if not self._processes:
            raise CpuFault("nothing to schedule")
        for process in self._processes:
            if process.finished:
                continue
            unit = self.board.soc.core(process.core_index)
            process.quantum(unit, self.board.soc.memory_map)
            self._noise[id(process)].interfere(unit)

    def run(self, max_rounds: int = 10_000) -> int:
        """Schedule until every process finishes; returns rounds used."""
        for round_index in range(max_rounds):
            if self.all_finished():
                return round_index
            self.run_round()
        raise CpuFault(f"workload did not finish within {max_rounds} rounds")

    def noise_stats(self) -> dict[str, int]:
        """Aggregate interference counts (for experiment reports)."""
        return {
            "fills": sum(n.fills_done for n in self._noise.values()),
            "maintenance": sum(n.maintenance_done for n in self._noise.values()),
        }
