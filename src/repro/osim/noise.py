"""Kernel interference: the error source of paper §7.1.2.

Two realistic mechanisms disturb the victim's working set on a Linux
system, and both are needed to reproduce the structure of Table 4:

* **Fill noise** — interrupt handlers, daemons, and the kernel itself
  pull their own lines through the L1, evicting (and overwriting) the
  LRU way of random sets.  This is what loses ~9 % of a cache-sized
  array.
* **DMA maintenance noise** — ARM boards with non-coherent DMA make the
  kernel clean/invalidate buffer lines by VA around device transfers.
  Invalidation drops the valid bit but leaves the data RAM payload; when
  the victim later rewrites the element, the refill can land in the
  *other* way, leaving the same element physically present in both ways
  — the "element can be in both ways" duplication the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError
from ..soc.soc import CoreUnit


@dataclass(frozen=True)
class NoiseProfile:
    """Intensity of kernel interference per victim quantum.

    ``fill_lines`` / ``maintenance_lines`` are Poisson means for the two
    mechanisms; ``kernel_base``/``kernel_span`` place the kernel's own
    working set in the address space.
    """

    fill_lines: float = 1.0
    maintenance_lines: float = 0.25
    kernel_base: int = 0x60000
    kernel_span: int = 0x10000

    def __post_init__(self) -> None:
        if self.fill_lines < 0 or self.maintenance_lines < 0:
            raise CalibrationError("noise rates cannot be negative")
        if self.kernel_span <= 0:
            raise CalibrationError("kernel span must be positive")

    def scaled(self, factor: float) -> "NoiseProfile":
        """A copy with both rates multiplied by ``factor``."""
        return NoiseProfile(
            fill_lines=self.fill_lines * factor,
            maintenance_lines=self.maintenance_lines * factor,
            kernel_base=self.kernel_base,
            kernel_span=self.kernel_span,
        )


#: Background load of a mostly-idle Raspberry Pi OS (the paper's setup).
IDLE_LINUX = NoiseProfile(fill_lines=1.0, maintenance_lines=0.25)


class KernelNoise:
    """Injects kernel interference into one core's d-cache."""

    def __init__(
        self,
        profile: NoiseProfile,
        rng: np.random.Generator,
        victim_base: int,
        victim_span: int,
    ) -> None:
        self.profile = profile
        self._rng = rng
        self._victim_base = victim_base
        self._victim_span = max(victim_span, 64)
        self.fills_done = 0
        self.maintenance_done = 0

    def _random_kernel_addr(self) -> int:
        offset = int(self._rng.integers(0, self.profile.kernel_span // 64)) * 64
        return self.profile.kernel_base + offset

    def _random_victim_addr(self) -> int:
        offset = int(self._rng.integers(0, self._victim_span // 64)) * 64
        return self._victim_base + offset

    def interfere(self, unit: CoreUnit) -> None:
        """Run one quantum's worth of kernel activity on ``unit``."""
        if not unit.l1d.enabled:
            return
        n_fills = int(self._rng.poisson(self.profile.fill_lines))
        for _ in range(n_fills):
            unit.l1d.read(self._random_kernel_addr(), 8)
            self.fills_done += 1
        n_maintenance = int(self._rng.poisson(self.profile.maintenance_lines))
        for _ in range(n_maintenance):
            # DMA buffers share the victim's address neighbourhood; the
            # maintenance sweep occasionally catches victim lines.
            unit.l1d.clean_invalidate_line(self._random_victim_addr())
            self.maintenance_done += 1
