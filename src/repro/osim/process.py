"""Victim process models.

Two fidelity levels:

* :class:`InterpretedProcess` runs real machine code on the
  :class:`~repro.cpu.core.Core` interpreter — used when instruction-
  stream realism matters (Figure 8's i-cache contents).
* :class:`ArrayFillProcess` replays the paper's Table 4 microbenchmark
  as a direct d-cache access stream — behaviourally identical to the
  compiled C loop (sequential 8-byte element writes + read-backs) but
  fast enough for the 48-experiment sweep.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..cpu.core import Core
from ..cpu.programs import element_value
from ..errors import CpuFault
from ..soc.memory_map import MemoryMap
from ..soc.soc import CoreUnit


class Process(ABC):
    """A schedulable unit of victim work pinned to one core."""

    def __init__(self, name: str, core_index: int) -> None:
        self.name = name
        self.core_index = core_index
        self.finished = False

    @abstractmethod
    def quantum(self, unit: CoreUnit, memory_map: MemoryMap) -> None:
        """Run one scheduler quantum on ``unit``."""


class InterpretedProcess(Process):
    """A process executing real machine code through the interpreter."""

    def __init__(
        self,
        name: str,
        core_index: int,
        machine_code: bytes,
        load_addr: int,
        steps_per_quantum: int = 256,
    ) -> None:
        super().__init__(name, core_index)
        self.machine_code = machine_code
        self.load_addr = load_addr
        self.steps_per_quantum = steps_per_quantum
        self._core: Core | None = None

    def quantum(self, unit: CoreUnit, memory_map: MemoryMap) -> None:
        """Execute up to ``steps_per_quantum`` instructions."""
        if self.finished:
            return
        if self._core is None:
            self._core = Core(unit, memory_map)
            self._core.load_program(self.machine_code, self.load_addr)
        for _ in range(self.steps_per_quantum):
            if self._core.halted:
                self.finished = True
                return
            self._core.step()


class ArrayFillProcess(Process):
    """The Table 4 microbenchmark: unique 8-byte elements streamed in a loop.

    Element ``i`` carries :func:`repro.cpu.programs.element_value`\\ (i),
    written at ``base_addr + 8*i`` and immediately read back, pass after
    pass — the load/store mix of the paper's C loop.
    """

    def __init__(
        self,
        name: str,
        core_index: int,
        base_addr: int,
        n_elements: int,
        passes: int = 2,
        elements_per_quantum: int = 64,
    ) -> None:
        super().__init__(name, core_index)
        if n_elements <= 0 or passes <= 0:
            raise CpuFault("element and pass counts must be positive")
        self.base_addr = base_addr
        self.n_elements = n_elements
        self.passes = passes
        self.elements_per_quantum = elements_per_quantum
        self._cursor = 0
        self._pass = 0

    @property
    def array_bytes(self) -> int:
        """Total array footprint in bytes."""
        return self.n_elements * 8

    def element_bytes(self, index: int) -> bytes:
        """The unique on-disk form of one element."""
        return element_value(index).to_bytes(8, "little")

    def quantum(self, unit: CoreUnit, memory_map: MemoryMap) -> None:
        """Write+read the next chunk of elements through the d-cache."""
        if self.finished:
            return
        cache = unit.l1d
        for _ in range(self.elements_per_quantum):
            addr = self.base_addr + self._cursor * 8
            cache.write(addr, self.element_bytes(self._cursor))
            cache.read(addr, 8)
            self._cursor += 1
            if self._cursor >= self.n_elements:
                self._cursor = 0
                self._pass += 1
                if self._pass >= self.passes:
                    self.finished = True
                    return
