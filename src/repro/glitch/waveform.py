"""Glitch pulse shapes and the rail voltage the die actually sees.

A voltage glitcher drives a brief trapezoidal dip into a supply rail:
the attacker parks a low-impedance source (a :class:`BenchSupply` in
this model, a MOSFET crowbar in practice) on a test pad and commands a
dip of ``depth_v`` volts, ``offset_s`` seconds after the victim starts,
for ``width_s`` seconds.  The die does not see that ideal trapezoid:
the net's decoupling network and line parasitics form an RC low-pass
(the reason real glitch campaigns begin by desoldering bulk decoupling
caps), so short pulses arrive attenuated and rounded.

:func:`die_waveform` superimposes a :class:`GlitchPulse` on a rail and
filters it through the same :mod:`repro.circuits.passives` components
the Volt Boot surge model uses, yielding a :class:`GlitchWaveform` the
fault model samples per retired instruction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..circuits.passives import DecouplingNetwork, SupplyLineParasitics
from ..circuits.supply import BenchSupply
from ..errors import CalibrationError
from ..units import nanoseconds

#: Hard cap on waveform sample counts: a mis-set resolution should fail
#: loudly instead of allocating gigabytes.
MAX_SAMPLES = 1_000_000


@dataclass(frozen=True)
class GlitchPulse:
    """One parameterised glitch: a trapezoidal dip in the drive voltage.

    Parameters
    ----------
    offset_s:
        Delay from victim start (t=0) to the falling edge.
    width_s:
        Time spent at full depth (flat bottom of the trapezoid).
    depth_v:
        How far below nominal the drive voltage dips.
    rise_s / fall_s:
        Edge times of the dip (glitcher slew limits).
    """

    offset_s: float
    width_s: float
    depth_v: float
    rise_s: float = nanoseconds(5)
    fall_s: float = nanoseconds(5)

    def __post_init__(self) -> None:
        if self.offset_s < 0.0:
            raise CalibrationError("glitch offset cannot be negative")
        if self.width_s <= 0.0:
            raise CalibrationError("glitch width must be positive")
        if self.depth_v <= 0.0:
            raise CalibrationError("glitch depth must be positive")
        if self.rise_s <= 0.0 or self.fall_s <= 0.0:
            raise CalibrationError("glitch edge times must be positive")

    @property
    def end_s(self) -> float:
        """When the drive voltage is back at nominal."""
        return self.offset_s + self.rise_s + self.width_s + self.fall_s

    def drive_voltage(self, t_s: float, nominal_v: float) -> float:
        """The glitcher's commanded voltage at ``t_s`` (unfiltered)."""
        if self.depth_v >= nominal_v:
            raise CalibrationError(
                f"glitch depth {self.depth_v:g}V swallows the whole "
                f"{nominal_v:g}V rail"
            )
        into = t_s - self.offset_s
        if into <= 0.0 or into >= self.rise_s + self.width_s + self.fall_s:
            return nominal_v
        if into < self.rise_s:
            return nominal_v - self.depth_v * (into / self.rise_s)
        into -= self.rise_s
        if into < self.width_s:
            return nominal_v - self.depth_v
        into -= self.width_s
        return nominal_v - self.depth_v * (1.0 - into / self.fall_s)

    def label(self) -> str:
        """A compact human-readable tag for work-unit labels."""
        return (
            f"o{self.offset_s * 1e9:g}ns"
            f"-w{self.width_s * 1e9:g}ns"
            f"-d{self.depth_v:g}V"
        )


@dataclass(frozen=True)
class GlitchWaveform:
    """The filtered, die-seen rail voltage over one glitch attempt."""

    time_s: np.ndarray
    voltage_v: np.ndarray
    nominal_v: float

    def __post_init__(self) -> None:
        if self.time_s.shape != self.voltage_v.shape or self.time_s.size < 2:
            raise CalibrationError("waveform needs matching time/voltage axes")

    def minimum(self) -> float:
        """Deepest excursion the die sees."""
        return float(self.voltage_v.min())

    def voltage_at(self, t_s: float) -> float:
        """Rail voltage at ``t_s`` (nominal after the sampled window)."""
        if t_s >= float(self.time_s[-1]):
            return self.nominal_v
        return float(np.interp(t_s, self.time_s, self.voltage_v))

    def time_below(self, threshold_v: float) -> float:
        """Total time spent below ``threshold_v``."""
        dt = float(self.time_s[1] - self.time_s[0])
        return float(np.count_nonzero(self.voltage_v < threshold_v)) * dt


def die_waveform(
    pulse: GlitchPulse,
    supply: BenchSupply,
    decoupling: DecouplingNetwork,
    parasitics: SupplyLineParasitics | None = None,
    resolution_s: float = nanoseconds(1),
    tail_s: float | None = None,
) -> GlitchWaveform:
    """Filter a glitch pulse through the rail's passives.

    The decoupling capacitance against the loop resistance (capacitor
    ESR + line parasitics + glitcher source resistance) sets a
    first-order time constant; the die-side voltage is the RC response
    of the commanded trapezoid.  A 470 nF net over ~65 mΩ gives
    τ ≈ 30 ns — pulses much shorter than τ barely reach the die, which
    is exactly the width axis a glitch campaign sweeps.
    """
    if resolution_s <= 0.0:
        raise CalibrationError("waveform resolution must be positive")
    if pulse.depth_v >= supply.voltage_v:
        raise CalibrationError(
            f"glitch depth {pulse.depth_v:g}V swallows the whole "
            f"{supply.voltage_v:g}V rail"
        )
    parasitics = parasitics or SupplyLineParasitics()
    nominal = supply.voltage_v
    tau = decoupling.capacitance_f * (
        decoupling.esr_ohm
        + parasitics.resistance_ohm
        + supply.source_resistance_ohm
    )
    if tail_s is None:
        tail_s = max(5.0 * tau, nanoseconds(50))
    total_s = pulse.end_s + tail_s
    n_samples = int(math.ceil(total_s / resolution_s)) + 1
    if n_samples > MAX_SAMPLES:
        raise CalibrationError(
            f"waveform would need {n_samples} samples (cap {MAX_SAMPLES}); "
            f"raise resolution_s or shorten the pulse"
        )
    time_s = np.arange(n_samples, dtype=np.float64) * resolution_s
    drive = np.array(
        [pulse.drive_voltage(float(t), nominal) for t in time_s],
        dtype=np.float64,
    )
    if tau <= 0.0:
        filtered = drive
    else:
        alpha = 1.0 - math.exp(-resolution_s / tau)
        filtered = np.empty_like(drive)
        level = nominal
        for i, target in enumerate(drive):
            level += alpha * (float(target) - level)
            filtered[i] = level
    return GlitchWaveform(
        time_s=time_s, voltage_v=filtered, nominal_v=nominal
    )
