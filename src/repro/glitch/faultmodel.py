"""Voltage-to-fault mapping and the brown-out countermeasure.

Transient undervolting causes timing-violation faults: logic paths that
no longer settle within a clock period latch wrong values.  The mapping
here is the standard empirical shape of the glitching literature
(InjectV, Lu 2019): no faults above a *fault onset* voltage (timing
margin intact), certain failure below a *logic floor*, and a steeply
rising fault probability in between.  Note how both thresholds sit far
above SRAM data-retention voltages (~0.25 V) — a glitch that corrupts
*computation* leaves *stored state* untouched, the same domain-physics
split Volt Boot exploits in the other direction.

Fault draws consume a caller-supplied :mod:`repro.rng` generator keyed
by (campaign, attempt), one draw sequence per attempt in retired-
instruction order, so campaigns shard deterministically.

:class:`BrownOutDetector` models the §8-style countermeasure: an
on-die comparator that resets the chip when the filtered rail stays
below a threshold longer than its response time.  Short, shallow
glitches can still slip underneath it — which is exactly the
detection-vs-exploitation trade-off the campaign measures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError
from ..units import nanoseconds
from .waveform import GlitchWaveform


class FaultKind(enum.Enum):
    """Architectural effect of one per-instruction fault."""

    SKIP = "skip"
    CORRUPT_RESULT = "corrupt-result"
    CORRUPT_FETCH = "corrupt-fetch"


@dataclass(frozen=True)
class FaultModel:
    """Instantaneous rail voltage → per-instruction fault probability.

    Parameters
    ----------
    nominal_v:
        The rail's design voltage.
    fault_onset_v:
        Below this, timing margin is exhausted and faults begin.
    logic_floor_v:
        Below this, every instruction faults.
    skip_weight / corrupt_result_weight / corrupt_fetch_weight:
        Relative likelihood of each :class:`FaultKind` once an
        instruction faults.
    """

    nominal_v: float
    fault_onset_v: float
    logic_floor_v: float
    skip_weight: float = 0.45
    corrupt_result_weight: float = 0.35
    corrupt_fetch_weight: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 < self.logic_floor_v < self.fault_onset_v < self.nominal_v:
            raise CalibrationError(
                "fault model needs 0 < logic floor < fault onset < nominal"
            )
        weights = (
            self.skip_weight,
            self.corrupt_result_weight,
            self.corrupt_fetch_weight,
        )
        if any(w < 0.0 for w in weights) or sum(weights) <= 0.0:
            raise CalibrationError("fault-kind weights must be non-negative "
                                   "and sum to a positive total")

    def fault_probability(self, rail_v: float) -> float:
        """Probability one instruction faults at this rail voltage.

        Quadratic ramp between onset and floor: faults are rare just
        past the margin and near-certain close to functional collapse.
        """
        if rail_v >= self.fault_onset_v:
            return 0.0
        if rail_v <= self.logic_floor_v:
            return 1.0
        margin = (self.fault_onset_v - rail_v) / (
            self.fault_onset_v - self.logic_floor_v
        )
        return margin * margin

    def sample(
        self, rail_v: float, rng: np.random.Generator
    ) -> FaultKind | None:
        """Draw whether (and how) the next instruction faults.

        Consumes one uniform when the voltage can fault at all, plus one
        more to pick the kind when it does — a fixed draw discipline so
        the stream stays aligned with the retired-instruction index.
        """
        probability = self.fault_probability(rail_v)
        if probability <= 0.0:
            return None
        if float(rng.random()) >= probability:
            return None
        total = (
            self.skip_weight
            + self.corrupt_result_weight
            + self.corrupt_fetch_weight
        )
        pick = float(rng.random()) * total
        if pick < self.skip_weight:
            return FaultKind.SKIP
        if pick < self.skip_weight + self.corrupt_result_weight:
            return FaultKind.CORRUPT_RESULT
        return FaultKind.CORRUPT_FETCH


def default_fault_model(nominal_v: float) -> FaultModel:
    """The calibrated mapping for a rail at ``nominal_v``.

    Onset at 80 % of nominal and the logic floor at 55 % follow the
    published glitch characterisations (deep-submicron cores tolerate
    ~10–20 % undervolt before timing failure); both sit far above the
    ~0.25 V SRAM retention cliff.
    """
    return FaultModel(
        nominal_v=nominal_v,
        fault_onset_v=0.8 * nominal_v,
        logic_floor_v=0.55 * nominal_v,
    )


@dataclass(frozen=True)
class BrownOutDetector:
    """An on-die comparator that resets the chip on sustained undervolt.

    The detector trips when the filtered rail stays below
    ``threshold_v`` for at least ``response_time_s`` — comparators need
    time to integrate, which is the gap glitches slip through.
    """

    threshold_v: float
    response_time_s: float = nanoseconds(40)

    def __post_init__(self) -> None:
        if self.threshold_v <= 0.0:
            raise CalibrationError("brown-out threshold must be positive")
        if self.response_time_s < 0.0:
            raise CalibrationError("response time cannot be negative")

    def trip_time(self, waveform: GlitchWaveform) -> float | None:
        """When the detector fires against ``waveform``, if ever."""
        below = waveform.voltage_v < self.threshold_v
        indices = np.flatnonzero(below)
        if indices.size == 0:
            return None
        gaps = np.flatnonzero(np.diff(indices) > 1)
        run_starts = np.concatenate(([0], gaps + 1))
        run_ends = np.concatenate((gaps, [indices.size - 1]))
        for start, end in zip(run_starts, run_ends):
            t_start = float(waveform.time_s[indices[start]])
            t_end = float(waveform.time_s[indices[end]])
            if t_end - t_start >= self.response_time_s:
                return t_start + self.response_time_s
        return None
