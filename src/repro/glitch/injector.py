"""Instruction-granular fault injection into the CPU interpreter.

:class:`GlitchInjector` wraps a :class:`~repro.cpu.core.Core` without
forking it: each :meth:`step` maps the core's retired-instruction count
to a time on the glitch waveform, samples the fault model at that
instant's rail voltage, and either lets the core step normally or
applies one architectural fault:

* **skip** — the instruction never executes (a timing fault in the
  issue logic); the PC advances past it;
* **corrupt-result** — the instruction executes but a random bit of its
  destination register flips on the way to writeback;
* **corrupt-fetch** — a random bit of the fetched encoding flips before
  decode, via the core's one-shot ``fetch_override`` seam (an
  undecodable corruption is an undefined-instruction fault).

A :class:`~repro.glitch.faultmodel.BrownOutDetector` hook raises
:class:`~repro.errors.BrownOutReset` the moment execution time crosses
the detector's trip point, so campaigns can score the countermeasure.

:class:`GlitchedInterpretedProcess` runs the same injection under the
toy OS scheduler, so kernel cache noise and glitch faults compose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cpu.core import Core
from ..cpu.isa import Opcode, XZR, decode
from ..errors import BrownOutReset, CpuFault, GlitchError, ReproError
from ..obs import OBS
from ..osim.process import InterpretedProcess
from ..soc.memory_map import MemoryMap
from ..soc.soc import CoreUnit
from ..units import nanoseconds
from .faultmodel import BrownOutDetector, FaultKind, FaultModel
from .waveform import GlitchWaveform

#: Default instruction period: a 100 MHz embedded-class clock, so a
#: handful of instructions spans the nanosecond-scale glitch widths.
DEFAULT_INSTRUCTION_PERIOD_S = nanoseconds(10)

#: Opcodes whose field ``a`` is a general-purpose destination register —
#: the writeback targets a corrupt-result fault can flip.
_REGISTER_WRITERS = frozenset(
    {
        Opcode.LDI,
        Opcode.LSLI,
        Opcode.LSRI,
        Opcode.ORRI,
        Opcode.ADD,
        Opcode.ADDI,
        Opcode.SUB,
        Opcode.SUBI,
        Opcode.AND,
        Opcode.ORR,
        Opcode.EOR,
        Opcode.MUL,
        Opcode.LDR,
        Opcode.LDRB,
        Opcode.VEXT,
    }
)


@dataclass
class InjectionResult:
    """How one glitched execution ended."""

    termination: str  # "halted" | "hung" | "crashed" | "reset"
    instructions: int
    faults: dict[str, int] = field(default_factory=dict)
    min_rail_v: float = 0.0
    detail: str = ""


class GlitchInjector:
    """Applies a fault model to a core, one instruction at a time."""

    def __init__(
        self,
        core: Core,
        waveform: GlitchWaveform,
        model: FaultModel,
        rng: np.random.Generator,
        instruction_period_s: float = DEFAULT_INSTRUCTION_PERIOD_S,
        brownout: BrownOutDetector | None = None,
    ) -> None:
        if instruction_period_s <= 0.0:
            raise GlitchError("instruction period must be positive")
        self.core = core
        self.waveform = waveform
        self.model = model
        self.instruction_period_s = instruction_period_s
        self._rng = rng
        self._start_retired = core.instructions_retired
        self._trip_time_s = (
            brownout.trip_time(waveform) if brownout is not None else None
        )
        self.fault_counts: dict[str, int] = {k.value: 0 for k in FaultKind}
        self.min_rail_v = waveform.nominal_v
        self.brownout_tripped = False

    def elapsed_s(self) -> float:
        """Execution time since injection started (retired × period)."""
        return (
            self.core.instructions_retired - self._start_retired
        ) * self.instruction_period_s

    def step(self) -> None:
        """Advance the victim by one (possibly faulted) instruction."""
        core = self.core
        if core.halted:
            raise CpuFault("core is halted")
        t_s = self.elapsed_s()
        if self._trip_time_s is not None and t_s >= self._trip_time_s:
            self.brownout_tripped = True
            if OBS.enabled:
                OBS.event("glitch.brownout-reset", time_s=t_s)
            raise BrownOutReset(self._trip_time_s)
        rail_v = self.waveform.voltage_at(t_s)
        if rail_v < self.min_rail_v:
            self.min_rail_v = rail_v
        kind = self.model.sample(rail_v, self._rng)
        if kind is None:
            core.step()
            return
        self.fault_counts[kind.value] += 1
        if OBS.enabled:
            OBS.counter_inc("glitch.faults", kind=kind.value)
        if kind is FaultKind.SKIP:
            self._fault_skip()
        elif kind is FaultKind.CORRUPT_RESULT:
            self._fault_corrupt_result()
        else:
            self._fault_corrupt_fetch()

    def run(self, max_steps: int = 10_000) -> InjectionResult:
        """Step until HLT, a crash, a reset, or the step budget."""
        termination = "hung"
        detail = ""
        try:
            for _ in range(max_steps):
                if self.core.halted:
                    termination = "halted"
                    break
                self.step()
            else:
                detail = f"no HLT within {max_steps} steps"
        except BrownOutReset as reset:
            termination = "reset"
            detail = str(reset)
        except ReproError as error:
            termination = "crashed"
            detail = str(error)
        return InjectionResult(
            termination=termination,
            instructions=self.core.instructions_retired
            - self._start_retired,
            faults=dict(self.fault_counts),
            min_rail_v=self.min_rail_v,
            detail=detail,
        )

    # ------------------------------------------------------------------
    # Fault mechanics
    # ------------------------------------------------------------------

    def _peek_raw(self) -> bytes | None:
        """The next instruction's true encoding, without touching caches."""
        try:
            return self.core.memory_map.read_block(self.core.pc, 4)
        except ReproError:
            return None

    def _fault_skip(self) -> None:
        """The instruction issues but never executes; PC walks past it."""
        self.core.pc += 4
        self.core.instructions_retired += 1

    def _fault_corrupt_result(self) -> None:
        """Execute normally, then flip one bit of the destination register.

        Instructions without a GPR destination (stores, branches,
        barriers) execute unharmed — the latched glitch hit a path that
        was not exercised.  The bit draw happens regardless, keeping
        the RNG stream aligned with the instruction index.
        """
        raw = self._peek_raw()
        self.core.step()
        bit = int(self._rng.integers(0, 64))
        if raw is None:
            return
        instr = decode(raw)
        if instr.opcode in _REGISTER_WRITERS and instr.a != XZR:
            flipped = self.core.read_x(instr.a) ^ (1 << bit)
            self.core.write_x(instr.a, flipped)

    def _fault_corrupt_fetch(self) -> None:
        """Flip one bit of the fetched encoding before decode."""
        raw = self._peek_raw()
        if raw is None:
            self.core.step()
            return
        bit = int(self._rng.integers(0, 32))
        corrupted = bytearray(raw)
        corrupted[bit // 8] ^= 1 << (bit % 8)
        try:
            instr = decode(bytes(corrupted))
        except CpuFault:
            raise CpuFault(
                f"glitched fetch at pc={self.core.pc:#x} decoded to an "
                f"undefined instruction"
            ) from None
        self.core.fetch_override = instr
        self.core.step()


class GlitchedInterpretedProcess(InterpretedProcess):
    """An OS process whose instruction stream runs under the injector.

    Drop-in for :class:`~repro.osim.process.InterpretedProcess`: the
    kernel schedules it normally (and its cache noise interferes
    normally), but every quantum steps through a
    :class:`GlitchInjector`.  ``outcome`` records how the victim ended:
    ``halted``, ``crashed``, or ``reset``.
    """

    def __init__(
        self,
        name: str,
        core_index: int,
        machine_code: bytes,
        load_addr: int,
        waveform: GlitchWaveform,
        model: FaultModel,
        rng: np.random.Generator,
        instruction_period_s: float = DEFAULT_INSTRUCTION_PERIOD_S,
        brownout: BrownOutDetector | None = None,
        steps_per_quantum: int = 64,
    ) -> None:
        super().__init__(
            name, core_index, machine_code, load_addr, steps_per_quantum
        )
        self.waveform = waveform
        self.model = model
        self.instruction_period_s = instruction_period_s
        self.brownout = brownout
        self._rng = rng
        self._injector: GlitchInjector | None = None
        self.outcome: str | None = None

    def quantum(self, unit: CoreUnit, memory_map: MemoryMap) -> None:
        """One scheduler quantum of glitched execution."""
        if self.finished:
            return
        if self._core is None:
            self._core = Core(unit, memory_map)
            self._core.load_program(self.machine_code, self.load_addr)
            self._injector = GlitchInjector(
                self._core,
                self.waveform,
                self.model,
                self._rng,
                self.instruction_period_s,
                self.brownout,
            )
        assert self._injector is not None
        try:
            for _ in range(self.steps_per_quantum):
                if self._core.halted:
                    self.finished = True
                    self.outcome = "halted"
                    return
                self._injector.step()
        except BrownOutReset:
            self.finished = True
            self.outcome = "reset"
        except ReproError:
            self.finished = True
            self.outcome = "crashed"
