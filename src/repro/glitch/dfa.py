"""Differential fault analysis of the on-chip AES (the glitch payoff).

The paper's passive attack freezes SRAM and reads the key schedule out;
register-resident AES (TRESOR-style, :class:`~repro.crypto.onchip.
RegisterAes`) defeats that by never letting the schedule touch SRAM.
Fault injection re-opens the door: glitch the engine so that a single
bit of the state flips *between ShiftRows and SubBytes of the final
round*, and each faulty ciphertext differs from the correct one in
exactly one byte.  For the faulted position ``i``::

    c[i]  = SBOX[s]        ^ k10[i]
    c'[i] = SBOX[s ^ 2^b]  ^ k10[i]

so the last-round-key byte ``k10[i]`` must satisfy
``HW(INV_SBOX[c[i] ^ k] ^ INV_SBOX[c'[i] ^ k]) == 1``.  A handful of
faults per byte position intersects the candidate sets down to one
value; inverting the AES-128 key schedule then yields the master key.

This is the classic single-byte DFA (Giraud 2004) restricted to
single-bit faults — deliberately the weakest variant, because the point
here is the pipeline (glitch → faulty ciphertext → key), not DFA
novelty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..crypto.aes import (
    AES_BLOCK_BYTES,
    INV_SBOX,
    SBOX,
    _RCON,
    _add_round_key,
    _mix_columns,
    _MIX,
    _shift_rows,
    _sub_bytes,
)
from ..crypto.onchip import RegisterAes
from ..devices import glitch_rig
from ..errors import GlitchError, ReproError
from ..rng import generator
from ..soc.bootrom import BootMedia
from .campaign import DEFAULT_SPEC, _rig_waveform
from .faultmodel import default_fault_model
from .waveform import GlitchPulse

#: Stop collecting once every byte position has this many faults.
FAULTS_PER_BYTE = 3

#: Safety cap on glitched encryptions per DFA run.
MAX_ATTEMPTS = 4_000


def glitched_encrypt(
    round_keys: list[bytes],
    plaintext: bytes,
    rng: np.random.Generator,
    fault_probability: float,
) -> bytes:
    """Encrypt one block; maybe flip one state bit before the last round.

    Replays :func:`~repro.crypto.onchip._encrypt_with_schedule` exactly,
    except that with ``fault_probability`` a uniformly random bit of the
    state is flipped after the last ShiftRows — the glitch landing in
    the final-round datapath.  The draw discipline is fixed (one
    uniform, then two integer draws only when it fires) so the stream
    stays aligned across attempts.
    """
    if len(plaintext) != AES_BLOCK_BYTES:
        raise ReproError(f"AES blocks are {AES_BLOCK_BYTES} bytes")
    if not 0.0 <= fault_probability <= 1.0:
        raise GlitchError("fault probability must lie in [0, 1]")
    state = _add_round_key(list(plaintext), round_keys[0])
    for round_key in round_keys[1:-1]:
        state = _add_round_key(
            _mix_columns(_shift_rows(_sub_bytes(state)), _MIX), round_key
        )
    state = _shift_rows(state)
    if float(rng.uniform()) < fault_probability:
        byte_index = int(rng.integers(0, AES_BLOCK_BYTES))
        bit = int(rng.integers(0, 8))
        state[byte_index] ^= 1 << bit
    state = _add_round_key(_sub_bytes(state), round_keys[-1])
    return bytes(state)


def recover_last_round_key(
    correct: bytes, faulty: list[bytes]
) -> list[int | None]:
    """Intersect single-bit DFA candidates per byte position.

    Returns one recovered key byte per position, or ``None`` where the
    collected faults have not narrowed the candidates to a single value.
    Multi-byte differentials (double faults) are skipped — a real
    campaign cannot tell them apart from noise, so neither do we.
    """
    if len(correct) != AES_BLOCK_BYTES:
        raise ReproError(f"AES blocks are {AES_BLOCK_BYTES} bytes")
    candidates: list[set[int] | None] = [None] * AES_BLOCK_BYTES
    for ciphertext in faulty:
        diff_positions = [
            i for i in range(AES_BLOCK_BYTES) if ciphertext[i] != correct[i]
        ]
        if len(diff_positions) != 1:
            continue
        position = diff_positions[0]
        matches = {
            k
            for k in range(256)
            if bin(
                INV_SBOX[correct[position] ^ k]
                ^ INV_SBOX[ciphertext[position] ^ k]
            ).count("1")
            == 1
        }
        if candidates[position] is None:
            candidates[position] = matches
        else:
            candidates[position] &= matches
    return [
        next(iter(c)) if c is not None and len(c) == 1 else None
        for c in candidates
    ]


def invert_aes128_schedule(last_round_key: bytes) -> bytes:
    """Walk the AES-128 key expansion backwards from round key 10."""
    if len(last_round_key) != 16:
        raise ReproError("AES-128 round keys are 16 bytes")
    words = [None] * 44
    for j in range(4):
        words[40 + j] = last_round_key[4 * j : 4 * j + 4]
    for i in range(43, 3, -1):
        prev = words[i - 1] if i % 4 else None
        if i % 4 == 0:
            # words[i] = words[i-4] ^ g(words[i-1]); invert for i-4 once
            # words[i-1] is known, which the descending walk guarantees.
            rotated = words[i - 1][1:] + words[i - 1][:1]
            temp = bytes(SBOX[b] for b in rotated)
            temp = bytes((temp[0] ^ _RCON[i // 4 - 1],)) + temp[1:]
        else:
            temp = prev
        words[i - 4] = bytes(a ^ b for a, b in zip(words[i], temp))
    return b"".join(words[0:4])


@dataclass
class DfaResult:
    """Outcome of one AES glitch-DFA run."""

    correct_ciphertext: bytes
    faulty_ciphertexts: list[bytes]
    attempts: int
    recovered_k10: list[int | None]
    recovered_key: bytes | None
    true_key: bytes
    notes: list[str] = field(default_factory=list)

    @property
    def bytes_recovered(self) -> int:
        """How many of the 16 last-round-key bytes were pinned down."""
        return sum(1 for b in self.recovered_k10 if b is not None)

    @property
    def key_correct(self) -> bool:
        """Whether the full recovered master key matches the truth."""
        return self.recovered_key == self.true_key


def aes_glitch_dfa(
    seed: int,
    pulse: GlitchPulse | None = None,
    faults_per_byte: int = FAULTS_PER_BYTE,
    max_attempts: int = MAX_ATTEMPTS,
) -> DfaResult:
    """End-to-end demo: glitch the rig's register-AES, recover the key.

    Boots a :func:`~repro.devices.glitch_rig`, installs a random key in
    the vector register file, derives the per-encryption fault
    probability from the die-seen waveform of ``pulse`` (minimum rail
    voltage through the fault model — the same physics as the campaign),
    then collects faulty ciphertexts until every byte position has
    ``faults_per_byte`` single-byte differentials or the attempt budget
    runs out.  Recovery intersects DFA candidates and inverts the
    schedule.
    """
    if faults_per_byte < 1:
        raise GlitchError("need at least one fault per byte position")
    board = glitch_rig(seed=seed)
    board.boot(BootMedia("dfa-victim"))
    rng = generator(seed, "glitch", "dfa")
    key = bytes(int(b) for b in rng.integers(0, 256, size=16))
    engine = RegisterAes(board.soc.core(0))
    engine.install_key(key)
    plaintext = bytes(int(b) for b in rng.integers(0, 256, size=16))
    correct = engine.encrypt(plaintext)

    pulse = pulse or GlitchPulse(
        offset_s=0.0,
        width_s=DEFAULT_SPEC.widths_s[-1],
        depth_v=DEFAULT_SPEC.depths_v[-1],
    )
    waveform = _rig_waveform(board, pulse, DEFAULT_SPEC.nominal_v)
    model = default_fault_model(DEFAULT_SPEC.nominal_v)
    fault_probability = model.fault_probability(waveform.minimum())
    notes = [
        f"die-seen minimum rail {waveform.minimum():.3f} V -> "
        f"per-encryption fault probability {fault_probability:.3f}"
    ]
    if fault_probability <= 0.0:
        notes.append("pulse too shallow after decoupling: no faults possible")

    schedule = engine.schedule()
    faulty: list[bytes] = []
    per_position = [0] * AES_BLOCK_BYTES
    attempts = 0
    while (
        attempts < max_attempts
        and fault_probability > 0.0
        and min(per_position) < faults_per_byte
    ):
        attempts += 1
        ciphertext = glitched_encrypt(
            schedule, plaintext, rng, fault_probability
        )
        diff = [
            i
            for i in range(AES_BLOCK_BYTES)
            if ciphertext[i] != correct[i]
        ]
        if len(diff) == 1:
            faulty.append(ciphertext)
            per_position[diff[0]] += 1

    recovered_k10 = recover_last_round_key(correct, faulty)
    recovered_key: bytes | None = None
    if all(b is not None for b in recovered_k10):
        recovered_key = invert_aes128_schedule(bytes(recovered_k10))
        notes.append(
            "all 16 last-round-key bytes pinned; schedule inverted"
        )
    else:
        notes.append(
            f"{sum(1 for b in recovered_k10 if b is None)} byte positions "
            f"still ambiguous after {attempts} attempts"
        )
    return DfaResult(
        correct_ciphertext=correct,
        faulty_ciphertexts=faulty,
        attempts=attempts,
        recovered_k10=recovered_k10,
        recovered_key=recovered_key,
        true_key=key,
        notes=notes,
    )
