"""Transient voltage-glitch fault injection (the active-attack sibling
of the paper's passive cold-boot readout).

The paper's threat model gives the attacker the victim's power rails;
:mod:`repro.glitch` asks what else those rails afford.  A parameterised
glitch pulse (:mod:`~repro.glitch.waveform`) is RC-filtered by the
board's own decoupling before the die sees it; the die-seen voltage
drives a per-instruction fault model (:mod:`~repro.glitch.faultmodel`);
an injector (:mod:`~repro.glitch.injector`) applies the sampled faults
to the CPU interpreter at instruction granularity; and campaigns
(:mod:`~repro.glitch.campaign`) search offset × width × depth for
exploitable parameters, with a brown-out-detector countermeasure leg.
:mod:`~repro.glitch.dfa` demonstrates the payoff: differential fault
analysis of the on-chip AES recovers key bytes from faulty ciphertexts.
"""

from .campaign import (
    DEFAULT_SPEC,
    LEGS,
    OUTCOMES,
    CampaignResult,
    CampaignSpec,
    GlitchAttempt,
    run_os_attempt,
    run_point,
    shard_plan,
)
from .dfa import DfaResult, aes_glitch_dfa, recover_last_round_key
from .faultmodel import (
    BrownOutDetector,
    FaultKind,
    FaultModel,
    default_fault_model,
)
from .injector import (
    DEFAULT_INSTRUCTION_PERIOD_S,
    GlitchedInterpretedProcess,
    GlitchInjector,
    InjectionResult,
)
from .waveform import GlitchPulse, GlitchWaveform, die_waveform

__all__ = [
    "GlitchPulse",
    "GlitchWaveform",
    "die_waveform",
    "FaultKind",
    "FaultModel",
    "default_fault_model",
    "BrownOutDetector",
    "GlitchInjector",
    "GlitchedInterpretedProcess",
    "InjectionResult",
    "DEFAULT_INSTRUCTION_PERIOD_S",
    "CampaignSpec",
    "CampaignResult",
    "GlitchAttempt",
    "DEFAULT_SPEC",
    "LEGS",
    "OUTCOMES",
    "shard_plan",
    "run_point",
    "run_os_attempt",
    "DfaResult",
    "aes_glitch_dfa",
    "recover_last_round_key",
]
