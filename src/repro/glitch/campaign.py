"""Glitch parameter-search campaigns over offset × width × depth.

A campaign fires many glitch attempts at the :func:`~repro.devices.glitch_rig`
board while it runs the :func:`~repro.cpu.programs.pin_check` victim
with a *wrong* PIN, and classifies each attempt:

* ``normal`` — the victim halted with the flag still locked;
* ``crash`` — an undefined-instruction fault, a wild memory access, or
  a runaway loop (no HLT within the step budget);
* ``reset`` — the brown-out detector tripped first (countermeasure won);
* ``exploitable`` — the victim halted with the unlock flag set despite
  the wrong PIN: the glitch broke the comparison guard.

The search runs a full grid plus uniform random samples, both twice —
once unprotected and once with the brown-out detector armed — so the
success maps directly measure detection versus exploitation.

Everything shards through :mod:`repro.exec`: one work unit per grid
point (its repeats share one freshly built rig) and one per random
sample, with every stochastic draw keyed by
``(seed, "glitch", leg, attempt)`` so ``--jobs N`` output is
byte-identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.supply import BenchSupply
from ..cpu.assembler import assemble
from ..cpu.core import Core
from ..cpu.programs import pin_check
from ..devices import glitch_rig
from ..errors import CpuFault, GlitchError
from ..exec import ShardPlan, WorkUnit, shard_unit
from ..obs import OBS
from ..obs.timing import observe_rate, wall_clock
from ..rng import generator
from ..soc.board import Board
from ..soc.bootrom import BootMedia
from ..soc.soc import CoreUnit
from ..units import nanoseconds
from .faultmodel import BrownOutDetector, FaultModel, default_fault_model
from .injector import (
    DEFAULT_INSTRUCTION_PERIOD_S,
    GlitchInjector,
    GlitchedInterpretedProcess,
)
from .waveform import GlitchPulse, GlitchWaveform, die_waveform

#: Campaign legs: the same search with and without the countermeasure.
LEGS = ("unprotected", "brownout")

#: Attempt outcome classes, in reporting order.
OUTCOMES = ("normal", "crash", "reset", "exploitable")

#: Victim placement on the rig (inside its 64 KB DRAM).
CODE_ADDR = 0x2000
FLAG_ADDR = 0x4000

#: The wrong PIN the attacker enters, and the stored one.
ENTERED_PIN = 0x1A2B3C
STORED_PIN = 0x5E77C0


@dataclass(frozen=True)
class CampaignSpec:
    """Shape of one parameter-search campaign."""

    offsets_s: tuple[float, ...]
    widths_s: tuple[float, ...]
    depths_v: tuple[float, ...]
    repeats: int = 2
    random_points: int = 8
    legs: tuple[str, ...] = LEGS
    nominal_v: float = 0.8
    instruction_period_s: float = DEFAULT_INSTRUCTION_PERIOD_S
    max_steps: int = 800
    delay_iterations: int = 12
    brownout_threshold_v: float = 0.66
    brownout_response_s: float = nanoseconds(40)

    def __post_init__(self) -> None:
        if not (self.offsets_s and self.widths_s and self.depths_v):
            raise GlitchError("campaign grid axes cannot be empty")
        if self.repeats < 1:
            raise GlitchError("campaign repeats must be >= 1")
        if self.random_points < 0:
            raise GlitchError("random point count cannot be negative")
        unknown = set(self.legs) - set(LEGS)
        if not self.legs or unknown:
            raise GlitchError(
                f"campaign legs must be drawn from {LEGS}, got {self.legs}"
            )

    def grid_points(self) -> list[tuple[float, float, float]]:
        """The (offset, width, depth) grid in enumeration order."""
        return [
            (offset_s, width_s, depth_v)
            for offset_s in self.offsets_s
            for width_s in self.widths_s
            for depth_v in self.depths_v
        ]

    def random_pulses(self, seed: int) -> list[tuple[float, float, float]]:
        """Uniform random (offset, width, depth) samples over the grid's
        bounding box, drawn from a stream keyed by the campaign seed only
        — the same samples regardless of sharding or leg."""
        rng = generator(seed, "glitch", "random-search")
        points = []
        for _ in range(self.random_points):
            offset_s = float(rng.uniform(min(self.offsets_s), max(self.offsets_s)))
            width_s = float(rng.uniform(min(self.widths_s), max(self.widths_s)))
            depth_v = float(rng.uniform(min(self.depths_v), max(self.depths_v)))
            points.append((offset_s, width_s, depth_v))
        return points

    def brownout(self, leg: str) -> BrownOutDetector | None:
        """The detector for a leg (``None`` on the unprotected leg)."""
        if leg != "brownout":
            return None
        return BrownOutDetector(
            threshold_v=self.brownout_threshold_v,
            response_time_s=self.brownout_response_s,
        )


#: The default campaign: a 6×3×3 grid (offsets span the victim's ~44
#: instruction run at 10 ns each, clustered around the PIN guard at
#: ~410 ns), 2 repeats, plus 8 random samples, on both legs.
DEFAULT_SPEC = CampaignSpec(
    offsets_s=tuple(
        nanoseconds(offset) for offset in (0, 160, 280, 350, 360, 370)
    ),
    widths_s=(nanoseconds(20), nanoseconds(40), nanoseconds(50)),
    depths_v=(0.25, 0.4, 0.55),
    repeats=3,
)


@dataclass(frozen=True)
class GlitchAttempt:
    """One classified glitch attempt."""

    leg: str
    source: str  # "grid" or "random"
    offset_s: float
    width_s: float
    depth_v: float
    outcome: str
    termination: str
    instructions: int
    min_rail_v: float
    faults: dict[str, int] = field(default_factory=dict)


@dataclass
class CampaignResult:
    """Every attempt of a campaign, in plan enumeration order."""

    spec: CampaignSpec
    attempts: list[GlitchAttempt]

    def leg_attempts(self, leg: str) -> list[GlitchAttempt]:
        """The attempts of one leg."""
        return [a for a in self.attempts if a.leg == leg]

    def outcome_rates(self, leg: str) -> dict[str, float]:
        """Fraction of the leg's attempts per outcome class."""
        attempts = self.leg_attempts(leg)
        if not attempts:
            return {outcome: 0.0 for outcome in OUTCOMES}
        return {
            outcome: sum(1 for a in attempts if a.outcome == outcome)
            / len(attempts)
            for outcome in OUTCOMES
        }

    def exploitable_rate(self, leg: str) -> float:
        """Fraction of the leg's attempts that broke the PIN guard."""
        return self.outcome_rates(leg)["exploitable"]

    def success_map(self, leg: str) -> np.ndarray:
        """Exploitable-rate matrix over the grid, offsets × widths.

        Grid attempts only, pooled across depths and repeats — the
        campaign's success-rate map (render-figures draws it).
        """
        offsets = list(self.spec.offsets_s)
        widths = list(self.spec.widths_s)
        hits = np.zeros((len(offsets), len(widths)), dtype=np.float64)
        totals = np.zeros_like(hits)
        for attempt in self.leg_attempts(leg):
            if attempt.source != "grid":
                continue
            row = offsets.index(attempt.offset_s)
            col = widths.index(attempt.width_s)
            totals[row, col] += 1.0
            if attempt.outcome == "exploitable":
                hits[row, col] += 1.0
        return np.divide(
            hits, totals, out=np.zeros_like(hits), where=totals > 0
        )


# ----------------------------------------------------------------------
# Attempt execution (module-level: units must pickle)
# ----------------------------------------------------------------------


def _rig_waveform(board: Board, pulse: GlitchPulse, nominal_v: float) -> GlitchWaveform:
    """The die-seen waveform for a pulse driven into the rig's core net."""
    net = board.pdn.net("VDD_CORE")
    glitcher = BenchSupply(voltage_v=nominal_v, current_limit_a=5.0)
    return die_waveform(
        pulse, glitcher, net.decoupling, net.parasitics
    )


def _victim_write(unit: CoreUnit, board: Board, addr: int, data: bytes) -> None:
    """Write through the same path the victim uses (d-cache when on)."""
    if unit.l1d.enabled:
        unit.l1d.write(addr, data)
    else:
        board.soc.memory_map.write_block(addr, data)


def _victim_read(unit: CoreUnit, board: Board, addr: int, size: int) -> bytes:
    """Read through the same path the victim uses (d-cache when on)."""
    if unit.l1d.enabled:
        return unit.l1d.read(addr, size)
    return board.soc.memory_map.read_block(addr, size)


def _classify(
    termination: str, unit: CoreUnit, board: Board
) -> str:
    """Map an injection termination + the unlock flag to an outcome."""
    if termination == "reset":
        return "reset"
    if termination != "halted":
        return "crash"
    flag = int.from_bytes(_victim_read(unit, board, FLAG_ADDR, 8), "little")
    return "exploitable" if flag == 1 else "normal"


def _one_attempt(
    board: Board,
    machine_code: bytes,
    waveform: GlitchWaveform,
    model: FaultModel,
    rng: np.random.Generator,
    spec: CampaignSpec,
    brownout: BrownOutDetector | None,
    leg: str,
    source: str,
    pulse: GlitchPulse,
) -> GlitchAttempt:
    """Run and classify a single glitch attempt on a prepared rig."""
    unit = board.soc.core(0)
    _victim_write(unit, board, FLAG_ADDR, bytes(8))
    core = Core(unit, board.soc.memory_map)
    core.load_program(machine_code, CODE_ADDR)
    injector = GlitchInjector(
        core, waveform, model, rng, spec.instruction_period_s, brownout
    )
    with OBS.span(
        "glitch.attempt",
        leg=leg,
        offset_s=pulse.offset_s,
        width_s=pulse.width_s,
        depth_v=pulse.depth_v,
    ):
        result = injector.run(max_steps=spec.max_steps)
    outcome = _classify(result.termination, unit, board)
    if OBS.enabled:
        OBS.counter_inc("glitch.attempts")
        OBS.counter_inc("glitch.outcomes", outcome=outcome)
        OBS.histogram_record("glitch.min_rail_v", result.min_rail_v)
    return GlitchAttempt(
        leg=leg,
        source=source,
        offset_s=pulse.offset_s,
        width_s=pulse.width_s,
        depth_v=pulse.depth_v,
        outcome=outcome,
        termination=result.termination,
        instructions=result.instructions,
        min_rail_v=result.min_rail_v,
        faults=result.faults,
    )


@shard_unit
def run_point(
    seed: int,
    leg: str,
    source: str,
    point_label: str,
    offset_s: float,
    width_s: float,
    depth_v: float,
    repeats: int,
    spec: CampaignSpec,
) -> list[GlitchAttempt]:
    """One work unit: all repeats of one (leg, pulse) campaign point.

    Builds a fresh rig per unit (repeats share it — residual cache
    state between repeats is real physics and deterministic within the
    unit), with per-attempt RNG streams keyed by the point's label so
    the draws are independent of sharding.
    """
    board = glitch_rig(seed=seed)
    board.boot(BootMedia("victim-os"))
    machine_code = assemble(
        pin_check(
            FLAG_ADDR, ENTERED_PIN, STORED_PIN, spec.delay_iterations
        )
    ).machine_code
    pulse = GlitchPulse(offset_s=offset_s, width_s=width_s, depth_v=depth_v)
    waveform = _rig_waveform(board, pulse, spec.nominal_v)
    model = default_fault_model(spec.nominal_v)
    brownout = spec.brownout(leg)
    attempts = []
    # Profiling hook: attempts/s through one campaign point.  The
    # "perf." gauge is stripped from manifest fingerprints, and the
    # disabled path reads no clock.
    start = wall_clock() if OBS.enabled else 0.0
    for repeat in range(repeats):
        rng = generator(
            seed, "glitch", leg, point_label, f"repeat{repeat}"
        )
        attempts.append(
            _one_attempt(
                board, machine_code, waveform, model, rng, spec,
                brownout, leg, source, pulse,
            )
        )
    if OBS.enabled:
        observe_rate(
            "glitch.attempts", len(attempts), wall_clock() - start, leg=leg
        )
    return attempts


def shard_plan(seed: int, spec: CampaignSpec = DEFAULT_SPEC) -> ShardPlan:
    """Shardable axis: one unit per (leg, grid point) and per
    (leg, random sample)."""
    units: list[WorkUnit] = []
    random_points = spec.random_pulses(seed)
    for leg in spec.legs:
        for grid_index, (offset_s, width_s, depth_v) in enumerate(
            spec.grid_points()
        ):
            pulse = GlitchPulse(offset_s, width_s, depth_v)
            units.append(
                WorkUnit(
                    index=len(units),
                    fn=run_point,
                    args=(
                        seed, leg, "grid", f"grid{grid_index}",
                        offset_s, width_s, depth_v, spec.repeats, spec,
                    ),
                    label=f"glitch[{leg}:{pulse.label()}]",
                )
            )
        for rand_index, (offset_s, width_s, depth_v) in enumerate(
            random_points
        ):
            pulse = GlitchPulse(offset_s, width_s, depth_v)
            units.append(
                WorkUnit(
                    index=len(units),
                    fn=run_point,
                    args=(
                        seed, leg, "random", f"rand{rand_index}",
                        offset_s, width_s, depth_v, 1, spec,
                    ),
                    label=f"glitch[{leg}:rand:{pulse.label()}]",
                )
            )
    return ShardPlan(units)


# ----------------------------------------------------------------------
# OS-level glitched victim (the osim.noise interaction surface)
# ----------------------------------------------------------------------

#: Kernel working set placed inside the rig's 64 KB DRAM.
_OS_NOISE_BASE = 0x8000
_OS_NOISE_SPAN = 0x4000


def run_os_attempt(
    seed: int, offset_s: float, width_s: float, depth_v: float
) -> tuple[str, int, int, dict[str, int]]:
    """One glitched victim under the toy OS scheduler.

    Boots a rig, starts :class:`~repro.osim.kernel.SimKernel` with
    kernel cache noise, and runs the PIN-check victim as a
    :class:`~repro.glitch.injector.GlitchedInterpretedProcess`.
    Returns ``(outcome, unlock_flag, instructions, noise_stats)`` —
    the jobs-equivalence suite asserts this tuple is identical however
    the attempts are sharded.
    """
    from ..osim.kernel import SimKernel
    from ..osim.noise import NoiseProfile

    board = glitch_rig(seed=seed)
    board.boot(BootMedia("victim-os"))
    kernel = SimKernel(
        board,
        noise_profile=NoiseProfile(
            kernel_base=_OS_NOISE_BASE, kernel_span=_OS_NOISE_SPAN
        ),
        seed_label="glitch-os",
    )
    kernel.enable_caches()
    machine_code = assemble(
        pin_check(FLAG_ADDR, ENTERED_PIN, STORED_PIN)
    ).machine_code
    pulse = GlitchPulse(offset_s=offset_s, width_s=width_s, depth_v=depth_v)
    spec = DEFAULT_SPEC
    waveform = _rig_waveform(board, pulse, spec.nominal_v)
    process = GlitchedInterpretedProcess(
        "pin-check",
        core_index=0,
        machine_code=machine_code,
        load_addr=CODE_ADDR,
        waveform=waveform,
        model=default_fault_model(spec.nominal_v),
        rng=generator(seed, "glitch", "os", pulse.label()),
        instruction_period_s=spec.instruction_period_s,
        steps_per_quantum=16,
    )
    # The kernel's DMA-maintenance sweep targets the victim's buffer
    # neighbourhood; point it at the unlock flag (the default 0x40000
    # working set would sit outside the rig's 64 KB DRAM).
    process.base_addr = FLAG_ADDR
    process.array_bytes = 0x2000
    kernel.spawn(process)
    try:
        kernel.run(max_rounds=spec.max_steps)
    except CpuFault:
        pass  # victim spun past the round budget: classified as hung
    unit = board.soc.core(0)
    flag = int.from_bytes(_victim_read(unit, board, FLAG_ADDR, 8), "little")
    outcome = process.outcome or "hung"
    retired = process._core.instructions_retired if process._core else 0
    return outcome, flag, retired, kernel.noise_stats()
