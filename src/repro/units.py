"""Physical units and conversions used across the simulation.

The library stores quantities in SI base units: volts, amperes, seconds,
farads, ohms, kelvins.  This module provides the small set of helpers and
constants used to build and check those quantities, plus human-readable
formatting for reports.

All converters are trivially invertible; they exist to make call sites
self-documenting (``milliseconds(20)`` rather than a bare ``0.02``).
"""

from __future__ import annotations

from .errors import CalibrationError

#: Absolute zero in degrees Celsius.
ABSOLUTE_ZERO_CELSIUS = -273.15

#: Boltzmann constant (J/K); used by leakage models.
BOLTZMANN = 1.380649e-23

#: Conventional room temperature (kelvin).
ROOM_TEMPERATURE_K = 298.15


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a Celsius temperature to kelvin, rejecting sub-0 K values."""
    kelvin = celsius - ABSOLUTE_ZERO_CELSIUS
    if kelvin <= 0.0:
        raise CalibrationError(
            f"temperature {celsius} degC is at or below absolute zero"
        )
    return kelvin


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert kelvin to Celsius (must be a positive absolute temperature)."""
    if kelvin <= 0.0:
        raise CalibrationError(f"absolute temperature must be > 0 K, got {kelvin}")
    return kelvin + ABSOLUTE_ZERO_CELSIUS


def milliseconds(value: float) -> float:
    """Express ``value`` milliseconds in seconds."""
    return value / 1e3


def microseconds(value: float) -> float:
    """Express ``value`` microseconds in seconds."""
    return value / 1e6


def nanoseconds(value: float) -> float:
    """Express ``value`` nanoseconds in seconds."""
    return value / 1e9


def millivolts(value: float) -> float:
    """Express ``value`` millivolts in volts."""
    return value / 1e3


def milliamps(value: float) -> float:
    """Express ``value`` milliamperes in amperes."""
    return value / 1e3


def milliohms(value: float) -> float:
    """Express ``value`` milliohms in ohms."""
    return value / 1e3


def microfarads(value: float) -> float:
    """Express ``value`` microfarads in farads."""
    return value / 1e6


def nanofarads(value: float) -> float:
    """Express ``value`` nanofarads in farads."""
    return value / 1e9


def kib(value: float) -> int:
    """Express ``value`` kibibytes in bytes."""
    return int(value * 1024)


def format_voltage(volts: float) -> str:
    """Render a voltage the way board schematics do (``0.8V``, ``800mV``)."""
    if abs(volts) >= 1.0:
        return f"{volts:g}V"
    return f"{volts * 1e3:g}mV"


def format_duration(seconds: float) -> str:
    """Render a duration with an auto-selected unit (s / ms / us / ns)."""
    magnitude = abs(seconds)
    if magnitude >= 1.0:
        return f"{seconds:g}s"
    if magnitude >= 1e-3:
        return f"{seconds * 1e3:g}ms"
    if magnitude >= 1e-6:
        return f"{seconds * 1e6:g}us"
    return f"{seconds * 1e9:g}ns"


def format_bytes(count: int) -> str:
    """Render a byte count using binary units (B / KiB / MiB)."""
    if count >= 1024 * 1024 and count % (1024 * 1024) == 0:
        return f"{count // (1024 * 1024)}MiB"
    if count >= 1024 and count % 1024 == 0:
        return f"{count // 1024}KiB"
    return f"{count}B"
