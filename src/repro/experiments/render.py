"""Render every figure experiment's bit images to PGM files.

The paper's figures are grayscale bit-matrix snapshots; this module
regenerates all of them into an output directory so the reproduction's
visuals can be inspected with any image viewer.
"""

from __future__ import annotations

from pathlib import Path

from ..analysis.imaging import write_pgm
from ..exec import ShardPlan, WorkUnit, execute, shard_unit
from ..rng import DEFAULT_SEED


@shard_unit
def _render_figure3(out_dir: str, seed: int) -> list[Path]:
    from . import figure3

    fig3 = figure3.run(seed=seed)
    return [
        write_pgm(
            fig3.way0_image, 512, Path(out_dir) / "figure3_coldboot_way0.pgm"
        )
    ]


@shard_unit
def _render_figure7(out_dir: str, seed: int) -> list[Path]:
    from . import figure7

    return [
        write_pgm(
            device_result.way0_image,
            512,
            Path(out_dir)
            / f"figure7_{device_result.device.lower()}_icache.pgm",
        )
        for device_result in figure7.run(seed=seed)
    ]


@shard_unit
def _render_figure8(out_dir: str, seed: int) -> list[Path]:
    from . import figure8

    fig8 = figure8.run(seed=seed)
    out = Path(out_dir)
    return [
        write_pgm(fig8.dcache_way0, 512, out / "figure8_dcache_way0.pgm"),
        write_pgm(
            fig8.icache_way_images[0], 512, out / "figure8_icache_way0.pgm"
        ),
    ]


@shard_unit
def _render_figure9(out_dir: str, seed: int) -> list[Path]:
    from . import figure9

    fig9 = figure9.run(seed=seed)
    written = []
    for panel in range(4):
        path = Path(out_dir) / f"figure9_panel_{chr(ord('a') + panel)}.pgm"
        fig9.save_panel_pgm(panel, str(path))
        written.append(path)
    return written


@shard_unit
def _render_glitch(out_dir: str, seed: int) -> list[Path]:
    from ..analysis.imaging import write_gray_pgm
    from ..glitch.campaign import DEFAULT_SPEC, CampaignSpec
    from . import glitch_campaign

    # Unprotected leg only, trimmed depth axis: the success map is the
    # figure, and the countermeasure leg contributes nothing to it.
    spec = CampaignSpec(
        offsets_s=DEFAULT_SPEC.offsets_s,
        widths_s=DEFAULT_SPEC.widths_s,
        depths_v=DEFAULT_SPEC.depths_v[-2:],
        repeats=2,
        random_points=0,
        legs=("unprotected",),
    )
    result = glitch_campaign.run(seed=seed, spec=spec)
    return [
        write_gray_pgm(
            result.success_map("unprotected"),
            Path(out_dir) / "glitch_success_map.pgm",
        )
    ]


def shard_plan(out_dir: str | Path, seed: int) -> ShardPlan:
    """Shardable axis: one unit per figure (each writes its own files)."""
    renderers = (
        ("figure3", _render_figure3),
        ("figure7", _render_figure7),
        ("figure8", _render_figure8),
        ("figure9", _render_figure9),
        ("glitch", _render_glitch),
    )
    return ShardPlan(
        [
            WorkUnit(
                index=i,
                fn=renderer,
                args=(str(out_dir), seed),
                label=f"render[{name}]",
            )
            for i, (name, renderer) in enumerate(renderers)
        ]
    )


def render_all(
    out_dir: str | Path, seed: int = DEFAULT_SEED, jobs: int = 1
) -> list[Path]:
    """Regenerate every figure's images; returns the written paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for paths in execute(shard_plan(out_dir, seed), jobs=jobs):
        written.extend(paths)
    return written
