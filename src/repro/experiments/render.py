"""Render every figure experiment's bit images to PGM files.

The paper's figures are grayscale bit-matrix snapshots; this module
regenerates all of them into an output directory so the reproduction's
visuals can be inspected with any image viewer.
"""

from __future__ import annotations

from pathlib import Path

from ..analysis.imaging import write_pgm
from ..rng import DEFAULT_SEED
from . import figure3, figure7, figure8, figure9


def render_all(out_dir: str | Path, seed: int = DEFAULT_SEED) -> list[Path]:
    """Regenerate every figure's images; returns the written paths."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    fig3 = figure3.run(seed=seed)
    written.append(
        write_pgm(fig3.way0_image, 512, out_dir / "figure3_coldboot_way0.pgm")
    )

    for device_result in figure7.run(seed=seed):
        written.append(
            write_pgm(
                device_result.way0_image,
                512,
                out_dir / f"figure7_{device_result.device.lower()}_icache.pgm",
            )
        )

    fig8 = figure8.run(seed=seed)
    written.append(
        write_pgm(fig8.dcache_way0, 512, out_dir / "figure8_dcache_way0.pgm")
    )
    written.append(
        write_pgm(
            fig8.icache_way_images[0], 512, out_dir / "figure8_icache_way0.pgm"
        )
    )

    fig9 = figure9.run(seed=seed)
    for panel in range(4):
        path = out_dir / f"figure9_panel_{chr(ord('a') + panel)}.pgm"
        fig9.save_panel_pgm(panel, str(path))
        written.append(path)

    return written
