"""§3/§5 — intrinsic retention versus temperature and off-time.

The cell-physics ablation behind the paper's argument:

* SRAM retention collapses within microseconds at room temperature and
  only becomes partial below about -110 C for ~20 ms cuts (the
  remanence-literature numbers the model is calibrated against);
* DRAM retains for seconds at room temperature and minutes when chilled
  (the classic cold boot regime);
* Volt Boot is flat 100 % everywhere because it removes the decay
  variable entirely — its line does not depend on either axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.dram import DramArray
from ..circuits.sram import SramArray
from ..core.report import AttackReport
from ..exec import ShardPlan, WorkUnit, execute, shard_unit
from ..rng import DEFAULT_SEED, generator
from ..units import celsius_to_kelvin, microseconds, milliseconds
from .common import manifested

#: Temperature axis (degrees C): room, chamber cold, cold boot classic,
#: extreme (liquid-nitrogen-ish) territory.
SWEEP_TEMPERATURES_C = (25.0, -40.0, -50.0, -110.0)

#: Off-time axis (seconds): instruction-scale to human battery pull.
SWEEP_OFF_TIMES_S = (
    microseconds(20), milliseconds(1), milliseconds(20), 0.5
)

#: Array size used for the statistical sweep.
SWEEP_BITS = 64 * 1024


@dataclass
class RetentionPoint:
    """Measured retention for one (technology, temperature, time) cell."""

    technology: str
    temperature_c: float
    off_time_s: float
    retained_fraction: float


@dataclass
class RetentionSweep:
    """The full grid plus the Volt Boot reference line."""

    points: list[RetentionPoint] = field(default_factory=list)

    def lookup(
        self, technology: str, temperature_c: float, off_time_s: float
    ) -> float:
        """Retention fraction for one grid point."""
        for point in self.points:
            if (
                point.technology == technology
                and point.temperature_c == temperature_c
                and point.off_time_s == off_time_s
            ):
                return point.retained_fraction
        raise KeyError((technology, temperature_c, off_time_s))


def _sram_retention(seed: int, temperature_c: float, off_time_s: float) -> float:
    sram = SramArray(SWEEP_BITS, rng=generator(seed, "sweep-sram"))
    sram.power_up()
    rng = generator(seed, "sweep-data")
    sram.write_bits(0, rng.integers(0, 2, SWEEP_BITS, dtype=np.uint8))
    reference = sram.image()
    sram.power_down()
    sram.elapse_unpowered(off_time_s, celsius_to_kelvin(temperature_c))
    sram.restore_power()
    return float(np.mean(sram.image() == reference))


def _dram_retention(seed: int, temperature_c: float, off_time_s: float) -> float:
    dram = DramArray(SWEEP_BITS, rng=generator(seed, "sweep-dram"))
    dram.restore_power()
    rng = generator(seed, "sweep-data")
    payload = rng.integers(0, 256, SWEEP_BITS // 8, dtype=np.uint8).tobytes()
    dram.write_bytes(0, payload)
    reference = dram.image()
    dram.power_down()
    dram.elapse_unpowered(off_time_s, celsius_to_kelvin(temperature_c))
    dram.restore_power()
    return float(np.mean(dram.image() == reference))


@shard_unit
def _voltboot_retention(seed: int) -> float:
    """Probe-held SRAM: supply never leaves the retention region."""
    sram = SramArray(SWEEP_BITS, rng=generator(seed, "sweep-vb"))
    sram.power_up()
    rng = generator(seed, "sweep-data")
    sram.write_bits(0, rng.integers(0, 2, SWEEP_BITS, dtype=np.uint8))
    reference = sram.image()
    # Rail held at nominal by the probe; the board power-cycles around it.
    sram.set_supply_voltage(sram.params.nominal_v)
    return float(np.mean(sram.image() == reference))


@shard_unit
def _grid_point(
    seed: int, temperature: float, off_time: float
) -> tuple[RetentionPoint, RetentionPoint]:
    """SRAM + DRAM retention at one grid cell — an independent unit.

    Every cell derives its generators from ``(seed, label)`` afresh,
    so the grid shares no RNG stream and shards freely.
    """
    return (
        RetentionPoint(
            "sram", temperature, off_time,
            _sram_retention(seed, temperature, off_time),
        ),
        RetentionPoint(
            "dram", temperature, off_time,
            _dram_retention(seed, temperature, off_time),
        ),
    )


def shard_plan(seed: int) -> ShardPlan:
    """Shardable axis: the (temperature x off-time) grid, plus one
    trailing unit for the Volt Boot reference line."""
    units = [
        WorkUnit(
            index=i,
            fn=_grid_point,
            args=(seed, temperature, off_time),
            label=f"retention[{temperature:g}C,{off_time * 1e3:g}ms]",
        )
        for i, (temperature, off_time) in enumerate(
            (t, ot)
            for t in SWEEP_TEMPERATURES_C
            for ot in SWEEP_OFF_TIMES_S
        )
    ]
    units.append(
        WorkUnit(
            index=len(units),
            fn=_voltboot_retention,
            args=(seed,),
            label="retention[voltboot]",
        )
    )
    return ShardPlan(units)


@manifested("retention-sweep", device="rpi4")
def run(seed: int = DEFAULT_SEED, jobs: int = 1) -> RetentionSweep:
    """Measure the full (technology x temperature x time) grid."""
    results = execute(shard_plan(seed), jobs=jobs)
    voltboot = results[-1]
    sweep = RetentionSweep()
    for sram_point, dram_point in results[:-1]:
        sweep.points.append(sram_point)
        sweep.points.append(dram_point)
    for temperature in SWEEP_TEMPERATURES_C:
        for off_time in SWEEP_OFF_TIMES_S:
            sweep.points.append(
                RetentionPoint("voltboot", temperature, off_time, voltboot)
            )
    return sweep


def report(sweep: RetentionSweep) -> AttackReport:
    """Render the grid with one row per (temperature, off-time)."""
    out = AttackReport(
        "Retention sweep: intrinsic SRAM/DRAM remanence vs the Volt Boot "
        "hold (paper 3/5: SRAM dies in ms even at -40C; DRAM survives; "
        "Volt Boot is temperature/time-independent)"
    )
    for temperature in SWEEP_TEMPERATURES_C:
        for off_time in SWEEP_OFF_TIMES_S:
            out.add_row(
                temperature_c=temperature,
                off_time=f"{off_time * 1e3:g}ms",
                sram_retained=round(sweep.lookup("sram", temperature, off_time), 3),
                dram_retained=round(sweep.lookup("dram", temperature, off_time), 3),
                voltboot=round(sweep.lookup("voltboot", temperature, off_time), 3),
            )
    out.add_note(
        "retention of ~0.5 is chance level for bistable SRAM cells."
    )
    return out
