"""Table 4 — Volt Boot against a Linux victim, array-size sweep (§7.1.2).

The paper's microbenchmark fills an array of unique 8-byte elements on
each of the four cores of a Raspberry Pi 4 while Raspberry Pi OS runs in
the background; Volt Boot then dumps the L1 d-caches and counts how many
elements survive in each way.  Three trials per size are averaged.

Expected shape: the full array is recovered while it fits comfortably in
the cache (4/8/16 KB -> ~100 %), and kernel eviction noise claims ~10 %
when the array equals the cache size (32 KB -> ~90 %).  Elements appear
in *both* ways (the W0+W1 sums exceed the array size) because DMA cache
maintenance invalidates lines without erasing their payload, and the
rewrite can land in the other way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.report import AttackReport
from ..core.voltboot import VoltBootAttack
from ..analysis.patterns import elements_present
from ..cpu.programs import element_value
from ..devices import raspberry_pi_4
from ..osim.kernel import SimKernel
from ..osim.noise import NoiseProfile
from ..osim.process import ArrayFillProcess
from ..rng import DEFAULT_SEED
from ..units import kib
from .common import ATTACKER_MEDIA, VICTIM_MEDIA, victim_buffer_base
from .common import manifested

#: Array sizes of the sweep (the paper's 12.5 % .. 100 % of the cache).
TABLE4_ARRAY_KIB = (4, 8, 16, 32)

#: Trials averaged per configuration (paper: three).
TRIALS = 3

#: Kernel background activity calibrated to an idle Raspberry Pi OS:
#: enough eviction pressure to cost ~10 % of a cache-sized array, plus
#: the DMA-maintenance rate that produces cross-way duplicates.
TABLE4_NOISE = NoiseProfile(fill_lines=1.1, maintenance_lines=0.5)


@dataclass
class Table4Cell:
    """Mean results for one (array size, core) pair."""

    array_kib: int
    core: int
    way_counts: list[float] = field(default_factory=list)  # mean per way
    union_count: float = 0.0
    n_elements: int = 0

    @property
    def percent_extracted(self) -> float:
        """Union recovery percentage (the paper's bottom row)."""
        return 100.0 * self.union_count / self.n_elements


def _run_single_trial(
    array_kib: int, seed: int
) -> list[tuple[list[int], int, int]]:
    """One board, one trial; returns per-core (way counts, union, total)."""
    board = raspberry_pi_4(seed=seed)
    board.boot(VICTIM_MEDIA)
    kernel = SimKernel(board, noise_profile=TABLE4_NOISE,
                       seed_label=f"t4-{array_kib}-{seed}")
    kernel.enable_caches()
    kernel.warm_caches()  # the system has been up for a while
    n_elements = kib(array_kib) // 8
    for core in board.soc.cores:
        kernel.spawn(
            ArrayFillProcess(
                name=f"bench{core.index}",
                core_index=core.index,
                base_addr=victim_buffer_base(core.index),
                n_elements=n_elements,
                passes=2,
            )
        )
    kernel.run()

    # Power is cut mid-system-life; the attack rides VDD_CORE through.
    attack = VoltBootAttack(
        board, target="l1-caches", boot_media=ATTACKER_MEDIA
    )
    result = attack.execute()
    assert result.cache_images is not None

    element_bytes = [
        element_value(i).to_bytes(8, "little") for i in range(n_elements)
    ]
    per_core = []
    for core in board.soc.cores:
        way_images = result.cache_images.l1d[core.index]
        found_per_way = [
            elements_present(image, element_bytes) for image in way_images
        ]
        union: set[int] = set()
        for found in found_per_way:
            union |= found
        per_core.append(
            ([len(found) for found in found_per_way], len(union), n_elements)
        )
    return per_core


def _headline(cells: "list[Table4Cell]") -> dict[str, float]:
    percents = [cell.percent_extracted for cell in cells]
    return {
        "cells": len(cells),
        "mean_percent_extracted": sum(percents) / len(percents),
        "min_percent_extracted": min(percents),
    }


@manifested("table4", device="rpi4", headline=_headline)
def run(
    seed: int = DEFAULT_SEED,
    array_sizes_kib: tuple[int, ...] = TABLE4_ARRAY_KIB,
    trials: int = TRIALS,
) -> list[Table4Cell]:
    """Run the full sweep; returns one cell per (size, core)."""
    cells: list[Table4Cell] = []
    for array_kib in array_sizes_kib:
        trial_results = [
            _run_single_trial(array_kib, seed + 1000 * array_kib + t)
            for t in range(trials)
        ]
        n_cores = len(trial_results[0])
        for core in range(n_cores):
            ways = len(trial_results[0][core][0])
            cell = Table4Cell(
                array_kib=array_kib,
                core=core,
                n_elements=trial_results[0][core][2],
            )
            cell.way_counts = [
                sum(trial[core][0][w] for trial in trial_results) / trials
                for w in range(ways)
            ]
            cell.union_count = (
                sum(trial[core][1] for trial in trial_results) / trials
            )
            cells.append(cell)
    return cells


def report(cells: list[Table4Cell]) -> AttackReport:
    """Render the sweep in the paper's Table 4 shape."""
    out = AttackReport(
        "Table 4: d-cache elements extracted by Volt Boot on BCM2711 "
        "(paper: 100% at 4-16KB, ~86-92% at 32KB)"
    )
    for cell in cells:
        out.add_row(
            array_kib=cell.array_kib,
            core=cell.core,
            **{f"W{w}": round(c, 1) for w, c in enumerate(cell.way_counts)},
            union=round(cell.union_count, 1),
            of=cell.n_elements,
            percent=round(cell.percent_extracted, 2),
        )
    out.add_note(
        "W0+W1 exceeding the union reflects elements resident in both "
        "ways after DMA-maintenance invalidation + rewrite."
    )
    return out
