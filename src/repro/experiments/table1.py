"""Table 1 — cold booting on-chip SRAM is ineffective (paper §3).

A BCM2711 runs bare-metal software populating each core's d-cache; the
board is soaked in a thermal chamber at 0 / −5 / −40 °C, power-cycled
for a few milliseconds, and the caches are extracted.  The paper finds
~50 % mean error at every temperature — no retention — and a fractional
Hamming distance of ~0.10 between the post-cycle cache and the cache's
*power-on* state (confirming the array simply reset to its fingerprint).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.hamming import bit_error_percent, fractional_hamming_distance
from ..core.coldboot import ColdBootAttack
from ..core.report import AttackReport
from ..devices import raspberry_pi_4
from ..exec import ShardPlan, execute, shard_unit
from ..rng import DEFAULT_SEED
from ..units import milliseconds
from .common import ATTACKER_MEDIA, VICTIM_MEDIA, fill_dcache, snapshot_l1d
from .common import manifested

#: The temperatures of paper Table 1: the recommended minimum operating
#: point, just below it, and the SoC's hard limit.
TABLE1_TEMPERATURES_C = (0.0, -5.0, -40.0)

#: How long the power stays cut ("a few milliseconds").
OFF_TIME_S = milliseconds(4)


@dataclass
class Table1Row:
    """One temperature point of the experiment."""

    temperature_c: float
    per_core_error_percent: list[float] = field(default_factory=list)
    fhd_to_powerup: float = 0.0

    @property
    def mean_error_percent(self) -> float:
        """Mean d-cache error over the four cores."""
        return sum(self.per_core_error_percent) / len(self.per_core_error_percent)


def _headline(rows: "list[Table1Row]") -> dict[str, float]:
    return {
        "temperatures": len(rows),
        "mean_error_percent": sum(r.mean_error_percent for r in rows)
        / len(rows),
        "mean_fhd_to_powerup": sum(r.fhd_to_powerup for r in rows)
        / len(rows),
    }


@shard_unit
def _temperature_point(
    seed: int, position: int, temperature: float
) -> Table1Row:
    """One chamber soak on a fresh board — an independent work unit.

    Each temperature gets its own board seeded ``seed + position``, so
    the points share no RNG stream and shard freely.
    """
    board = raspberry_pi_4(seed=seed + position)
    board.boot(VICTIM_MEDIA)
    # Capture the power-on fingerprint before the victim writes.
    powerup = {
        core.index: snapshot_l1d(core) for core in board.soc.cores
    }
    ground_truth = {}
    for core in board.soc.cores:
        fill_dcache(board, core.index, pattern=0xAA)
        ground_truth[core.index] = snapshot_l1d(core)

    attack = ColdBootAttack(
        board,
        temperature_c=temperature,
        off_time_s=OFF_TIME_S,
        boot_media=ATTACKER_MEDIA,
    )
    result = attack.execute()
    assert result.cache_images is not None

    row = Table1Row(temperature_c=temperature)
    fhd_values = []
    for core in board.soc.cores:
        observed = result.cache_images.dcache(core.index)
        reference = b"".join(ground_truth[core.index])
        row.per_core_error_percent.append(
            bit_error_percent(reference, observed)
        )
        fhd_values.append(
            fractional_hamming_distance(
                b"".join(powerup[core.index]), observed
            )
        )
    row.fhd_to_powerup = sum(fhd_values) / len(fhd_values)
    return row


def shard_plan(seed: int) -> ShardPlan:
    """Shardable axis: one unit per chamber temperature."""
    return ShardPlan.enumerate(
        _temperature_point,
        [
            (seed, position, temperature)
            for position, temperature in enumerate(TABLE1_TEMPERATURES_C)
        ],
        labels=[f"table1[{t:g}C]" for t in TABLE1_TEMPERATURES_C],
    )


@manifested("table1", device="rpi4", headline=_headline)
def run(seed: int = DEFAULT_SEED, jobs: int = 1) -> list[Table1Row]:
    """Run the three-temperature cold boot sweep on fresh Pi 4 boards."""
    return execute(shard_plan(seed), jobs=jobs)


def report(rows: list[Table1Row]) -> AttackReport:
    """Render the sweep in the paper's Table 1 shape."""
    out = AttackReport(
        "Table 1: d-cache error after cold boot on BCM2711 (paper: ~50% at "
        "0/-5/-40C; fHD to power-on state ~0.10)"
    )
    for row in rows:
        out.add_row(
            temperature_c=row.temperature_c,
            mean_error_percent=row.mean_error_percent,
            fhd_to_powerup=round(row.fhd_to_powerup, 3),
            **{
                f"core{i}_err%": round(err, 2)
                for i, err in enumerate(row.per_core_error_percent)
            },
        )
    out.add_note(
        "~50% error means the cache reset to a random-looking power-on "
        "state: no retention at any survivable temperature."
    )
    return out
