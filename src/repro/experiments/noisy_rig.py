"""Noisy-rig extraction — naive vs resilient driver on a flaky bench.

Reruns the paper's two headline extraction scenarios — the BCM2711 L1
d-cache dump over CP15 (the Table 1 / Figure 8 setting) and the i.MX53
iRAM bitmap recovery over JTAG (the Figure 9/10 setting) — on the
:data:`~repro.resilience.DEFAULT_NOISY_RIG` imperfect bench instead of
the ideal one, and pits two drivers against each other:

* **naive** — :meth:`~repro.resilience.RetryPolicy.single_shot`: one
  attempt, one read, accept whatever comes back.  This is what every
  pre-resilience experiment implicitly did.
* **resilient** — the default :class:`~repro.resilience.RetryPolicy`:
  bounded retries with backoff, adaptive set-point re-search, and
  five-read per-bit majority voting.

Each leg records its ground-truth-relative recovered bit fraction as
the ``resilience.recovered_fraction`` gauge (labelled by scenario and
driver) — the resilient driver must come out strictly higher, which the
regression tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.bitmap import BITMAP_BYTES, test_bitmap_bytes
from ..analysis.hamming import fractional_hamming_distance
from ..core.report import AttackReport
from ..devices import imx53_qsb, raspberry_pi_4
from ..devices.builders import IMX53_IRAM_BASE
from ..exec import ShardPlan, execute, shard_unit
from ..obs import OBS
from ..resilience import (
    DEFAULT_NOISY_RIG,
    ResilientVoltBoot,
    RetryPolicy,
)
from ..rng import DEFAULT_SEED, generator
from ..soc.jtag import JtagProbe
from .common import (
    ATTACKER_MEDIA,
    VICTIM_MEDIA,
    fill_dcache,
    manifested,
    snapshot_l1d,
    snapshot_l1i,
)

#: The two extraction scenarios, in unit-enumeration order.
SCENARIOS = ("rpi4-l1d", "imx53-iram")

#: The two drivers compared per scenario.
DRIVERS = ("naive", "resilient")

#: Bitmap copies stored into the i.MX53 iRAM (as in Figure 9).
N_PANELS = 4


@dataclass
class NoisyRigLeg:
    """One (scenario, driver) cell of the comparison."""

    scenario: str
    driver: str
    recovered_fraction: float
    succeeded: bool
    degraded: bool
    attempts: int
    confident_fraction: float
    mean_confidence: float
    total_backoff_s: float


def _policy(driver: str) -> RetryPolicy:
    if driver == "naive":
        return RetryPolicy.single_shot()
    return RetryPolicy()


def _rpi4_leg(seed: int, driver: str, rng: np.random.Generator) -> NoisyRigLeg:
    """BCM2711 L1 d-cache extraction over noisy CP15 RAMINDEX reads."""

    def make():
        board = raspberry_pi_4(seed=seed)
        board.boot(VICTIM_MEDIA)
        for core in board.soc.cores:
            fill_dcache(board, core.index, pattern=0xAA)
        return board

    # Ground truth in the driver's image layout (CacheImages.everything
    # order: all d-cache ways per core, then all i-cache ways per core).
    reference = make()
    truth = b"".join(
        b"".join(snapshot_l1d(core)) for core in reference.soc.cores
    ) + b"".join(
        b"".join(snapshot_l1i(core)) for core in reference.soc.cores
    )
    recovery = ResilientVoltBoot(
        make,
        target="l1-caches",
        policy=_policy(driver),
        rig=DEFAULT_NOISY_RIG,
        rng=rng,
        boot_media=ATTACKER_MEDIA,
    ).recover()
    return _leg("rpi4-l1d", driver, truth, recovery)


def _imx53_leg(seed: int, driver: str, rng: np.random.Generator) -> NoisyRigLeg:
    """i.MX53 iRAM bitmap recovery over noisy JTAG block reads."""
    bitmap = test_bitmap_bytes()
    truth = bitmap * N_PANELS

    def make():
        board = imx53_qsb(seed=seed)
        board.boot()  # internal ROM boot
        jtag = JtagProbe(board.soc.memory_map)
        for panel in range(N_PANELS):
            jtag.write_block(IMX53_IRAM_BASE + panel * BITMAP_BYTES, bitmap)
        return board

    recovery = ResilientVoltBoot(
        make,
        target="iram",
        policy=_policy(driver),
        rig=DEFAULT_NOISY_RIG,
        rng=rng,
    ).recover()
    return _leg("imx53-iram", driver, truth, recovery)


def _leg(scenario, driver, truth, recovery) -> NoisyRigLeg:
    """Score one recovery against its ground truth and record gauges."""
    if recovery.image is None or len(recovery.image) != len(truth):
        recovered = 0.0
    else:
        recovered = 1.0 - fractional_hamming_distance(truth, recovery.image)
    if OBS.enabled:
        OBS.gauge_set(
            "resilience.recovered_fraction",
            recovered,
            scenario=scenario,
            driver=driver,
        )
        OBS.gauge_set(
            "resilience.confident_fraction",
            recovery.confident_fraction,
            scenario=scenario,
            driver=driver,
        )
    return NoisyRigLeg(
        scenario=scenario,
        driver=driver,
        recovered_fraction=recovered,
        succeeded=recovery.succeeded,
        degraded=recovery.degraded,
        attempts=len(recovery.attempts),
        confident_fraction=recovery.confident_fraction,
        mean_confidence=recovery.mean_confidence,
        total_backoff_s=recovery.total_backoff_s,
    )


@shard_unit
def _run_leg(
    seed: int, scenario: str, driver: str, rng: np.random.Generator = None
) -> NoisyRigLeg:
    if rng is None:
        rng = generator(seed)
    if scenario == "rpi4-l1d":
        return _rpi4_leg(seed, driver, rng)
    return _imx53_leg(seed, driver, rng)


def shard_plan(seed: int) -> ShardPlan:
    """Shardable axis: one unit per (scenario, driver) leg.

    Per-leg rig-noise streams are spawned in unit order at plan-build
    time, so the comparison is byte-identical at any ``--jobs``.
    """
    legs = [
        (scenario, driver)
        for scenario in SCENARIOS
        for driver in DRIVERS
    ]
    plan = ShardPlan.enumerate(
        _run_leg,
        [(seed, scenario, driver) for scenario, driver in legs],
        labels=[f"noisy-rig[{s}/{d}]" for s, d in legs],
    )
    return plan.with_spawned_streams(generator(seed))


def _headline(legs: "list[NoisyRigLeg]") -> dict[str, float]:
    by_key = {(leg.scenario, leg.driver): leg for leg in legs}
    out: dict[str, float] = {}
    for scenario in SCENARIOS:
        naive = by_key[(scenario, "naive")]
        resilient = by_key[(scenario, "resilient")]
        out[f"{scenario}.naive_recovered"] = naive.recovered_fraction
        out[f"{scenario}.resilient_recovered"] = resilient.recovered_fraction
        out[f"{scenario}.gain"] = (
            resilient.recovered_fraction - naive.recovered_fraction
        )
    return out


@manifested("noisy-rig", headline=_headline)
def run(seed: int = DEFAULT_SEED, jobs: int = 1) -> list[NoisyRigLeg]:
    """Run both scenarios with both drivers on the default noisy rig."""
    return execute(shard_plan(seed), jobs=jobs)


def report(legs: list[NoisyRigLeg]) -> AttackReport:
    """Render the comparison as a driver-vs-scenario table."""
    out = AttackReport(
        "Noisy rig: recovered bit fraction, naive single-shot vs "
        "resilient retry+vote driver (default noisy bench)"
    )
    for leg in legs:
        out.add_row(
            scenario=leg.scenario,
            driver=leg.driver,
            recovered_fraction=round(leg.recovered_fraction, 6),
            attempts=leg.attempts,
            degraded=leg.degraded,
            confident_fraction=round(leg.confident_fraction, 6),
            backoff_s=round(leg.total_backoff_s, 2),
        )
    out.add_note(
        "The resilient driver's majority vote removes per-read bit "
        "errors; retries + set-point re-search recover from surge-lossy "
        "landings the naive driver simply accepts."
    )
    return out
