"""§7.2 — attacking CPU registers.

A bare-metal program fills the 128-bit vector registers ``v0..v31`` with
distinguishable patterns (0xFF / 0xAA) on both Broadcom devices; the
paper finds the registers fully retain their state across a Volt Boot
power cycle, so TRESOR-style register-resident key storage is broken.

The experiment also confirms the contrast the paper relies on: the
general-purpose registers are useless to an attacker (boot code burns
through them), while the vector file sits outside every boot sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.report import AttackReport
from ..core.voltboot import VoltBootAttack
from ..devices import raspberry_pi_3, raspberry_pi_4
from ..rng import DEFAULT_SEED
from .common import ATTACKER_MEDIA, VICTIM_MEDIA, run_vector_fill
from .common import manifested

_BUILDERS = {"BCM2711": raspberry_pi_4, "BCM2837": raspberry_pi_3}

#: The patterns the victim parks in even/odd vector registers.
PATTERNS = (0xFF, 0xAA)


@dataclass
class RegisterResult:
    """Retention outcome for one device."""

    device: str
    registers_correct: int = 0
    registers_total: int = 0
    per_core_correct: dict[int, int] = field(default_factory=dict)

    @property
    def fully_retained(self) -> bool:
        """Whether every vector register held its exact pattern."""
        return self.registers_correct == self.registers_total


def run_device(builder_name: str, seed: int = DEFAULT_SEED) -> RegisterResult:
    """Attack the vector file of every core on one device."""
    board = _BUILDERS[builder_name](seed=seed)
    board.boot(VICTIM_MEDIA)
    for core in board.soc.cores:
        run_vector_fill(board, core.index)

    attack = VoltBootAttack(board, target="registers",
                            boot_media=ATTACKER_MEDIA)
    attack_result = attack.execute()

    result = RegisterResult(device=builder_name)
    for core_index, values in attack_result.vector_registers.items():
        correct = 0
        for reg_index, value in enumerate(values):
            expected = bytes([PATTERNS[reg_index % len(PATTERNS)]]) * 16
            if value == expected:
                correct += 1
        result.per_core_correct[core_index] = correct
        result.registers_correct += correct
        result.registers_total += len(values)
    return result


@manifested("registers", device="rpi4+rpi3")
def run(seed: int = DEFAULT_SEED) -> list[RegisterResult]:
    """Run on both Broadcom devices."""
    return [run_device(name, seed) for name in _BUILDERS]


def report(results: list[RegisterResult]) -> AttackReport:
    """Summarise register retention per device."""
    out = AttackReport(
        "Section 7.2: vector register (v0..v31) retention under Volt Boot "
        "(paper: fully retained on BCM2711 and BCM2837)"
    )
    for result in results:
        out.add_row(
            device=result.device,
            registers_correct=result.registers_correct,
            registers_total=result.registers_total,
            fully_retained=result.fully_retained,
        )
    out.add_note(
        "any crypto scheme hiding keys in these registers is exposed."
    )
    return out
