"""Voltage-glitch parameter-search campaign (``repro.glitch`` demo).

Runs the offset × width × depth fault-injection search of
:mod:`repro.glitch.campaign` against the PIN-check victim on the bench
glitch rig, twice: unprotected, and with the brown-out-detector
countermeasure armed.  The report compares outcome rates per leg and
locates the exploitable parameter region.

The campaign shards over (leg, pulse) work units through
:mod:`repro.exec`, so ``--jobs N`` output is byte-identical to serial.
"""

from __future__ import annotations

import numpy as np

from ..core.report import AttackReport
from ..exec import ShardPlan, execute
from ..glitch.campaign import (
    DEFAULT_SPEC,
    CampaignResult,
    CampaignSpec,
)
from ..glitch.campaign import shard_plan as campaign_shard_plan
from ..rng import DEFAULT_SEED
from .common import manifested


def shard_plan(seed: int, spec: CampaignSpec = DEFAULT_SPEC) -> ShardPlan:
    """Shardable axis: one unit per (leg, grid point) and random sample."""
    return campaign_shard_plan(seed, spec)


def _headline(result: CampaignResult) -> dict[str, float]:
    return {
        "exploitable_rate_unprotected": result.exploitable_rate("unprotected"),
        "exploitable_rate_brownout": result.exploitable_rate("brownout"),
    }


@manifested("glitch-campaign", device="glitch-rig", headline=_headline)
def run(
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    spec: CampaignSpec | None = None,
) -> CampaignResult:
    """Run the full campaign; returns every classified attempt."""
    spec = spec or DEFAULT_SPEC
    merged = execute(campaign_shard_plan(seed, spec), jobs=jobs)
    attempts = [attempt for unit in merged for attempt in unit]
    return CampaignResult(spec, attempts)


def report(result: CampaignResult) -> AttackReport:
    """Outcome rates per leg, plus the exploitable parameter region."""
    out = AttackReport(
        "Voltage-glitch campaign: PIN-check guard vs. brown-out detector "
        "(offset x width x depth search on the bench glitch rig)"
    )
    for leg in result.spec.legs:
        rates = result.outcome_rates(leg)
        out.add_row(
            leg=leg,
            attempts=len(result.leg_attempts(leg)),
            **{key: round(rate, 4) for key, rate in rates.items()},
        )
    for leg in result.spec.legs:
        success = result.success_map(leg)
        if not np.any(success > 0):
            continue
        row, col = np.unravel_index(int(np.argmax(success)), success.shape)
        out.add_row(
            leg=leg,
            best_offset_ns=round(result.spec.offsets_s[row] * 1e9, 1),
            best_width_ns=round(result.spec.widths_s[col] * 1e9, 1),
            best_rate=round(float(success[row, col]), 4),
        )
    unprotected = result.exploitable_rate("unprotected")
    protected = result.exploitable_rate("brownout")
    if unprotected > 0.0:
        out.add_note(
            f"brown-out detector cuts the exploitable rate from "
            f"{unprotected:.1%} to {protected:.1%}: slow deep glitches "
            f"are caught, but pulses shorter than its response time "
            f"still slip through."
        )
    out.add_note(
        "the die never sees the programmed pulse: board decoupling "
        "RC-filters the drive, so the width axis trades depth for "
        "dwell exactly as on real hardware."
    )
    return out
