"""The classic DRAM cold boot attack and its deployed mitigation (§9.1).

Volt Boot exists because the older attack path was closed twice over:
DRAM scramblers made raw dumps useless, and on-chip computation moved
the secrets out of DRAM entirely.  This experiment reproduces the
history:

1. **Halderman-style key recovery** — an AES-128 schedule sits in plain
   DRAM; the module is chilled, power is cut for seconds, and the
   attacker reconstructs the key from the decayed dump using the
   ground-state-aware decoder.  Recovery succeeds while the decayed
   fraction stays within the decoder's working range and fails beyond
   it — the trade-off curve the original paper reports.
2. **Scrambler mitigation** — the same dump through a session-keyed
   scrambler is uniform garbage after a reboot rolls the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.imaging import ones_fraction
from ..analysis.keycorrect import reconstruct_with_decay_model
from ..circuits.dram import DramArray
from ..core.report import AttackReport
from ..crypto.aes import schedule_bytes
from ..rng import DEFAULT_SEED, generator
from ..soc.memory_map import MainMemory
from ..soc.scrambler import ScrambledMemory
from ..units import celsius_to_kelvin
from .common import manifested

#: The disk key the victim schedule derives from.
VICTIM_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")

#: Where the schedule sits in DRAM.
SCHEDULE_ADDR = 0x2000

#: Off-times swept (seconds without power at -50 C).
OFF_TIMES_S = (5.0, 60.0, 180.0, 300.0, 420.0, 900.0)


@dataclass
class DramColdBootPoint:
    """One off-time sample of the key-recovery sweep."""

    off_time_s: float
    decayed_fraction: float
    key_recovered: bool


@dataclass
class DramColdBootResult:
    """Sweep results plus the scrambler control."""

    points: list[DramColdBootPoint]
    scrambled_dump_ones: float
    scrambled_key_found: bool

    @property
    def recovery_horizon_s(self) -> float:
        """Longest off-time at which the key was still recovered."""
        recovered = [p.off_time_s for p in self.points if p.key_recovered]
        return max(recovered) if recovered else 0.0


def _build_dram(seed: int) -> tuple[DramArray, np.ndarray]:
    dram = DramArray(8 * 65536, rng=generator(seed, "dram-cb"))
    dram.restore_power()
    ground = dram._ground_state()  # the attacker profiles this per chip
    return dram, ground


def _ground_window(ground: np.ndarray) -> bytes:
    lo = SCHEDULE_ADDR * 8
    return np.packbits(
        ground[lo : lo + 176 * 8], bitorder="little"
    ).tobytes()


@manifested("dram-coldboot", device="rpi4")
def run(seed: int = DEFAULT_SEED) -> DramColdBootResult:
    """Run the off-time sweep and the scrambler control."""
    schedule = schedule_bytes(VICTIM_KEY)
    points = []
    for off_time in OFF_TIMES_S:
        dram, ground = _build_dram(seed + int(off_time))
        dram.write_bytes(SCHEDULE_ADDR, schedule)
        dram.power_down()
        dram.elapse_unpowered(off_time, celsius_to_kelvin(-50.0))
        dram.restore_power()
        window = dram.read_bytes(SCHEDULE_ADDR, 176)
        window_bits = np.unpackbits(
            np.frombuffer(window, dtype=np.uint8), bitorder="little"
        )
        schedule_bits = np.unpackbits(
            np.frombuffer(schedule, dtype=np.uint8), bitorder="little"
        )
        decayed = float(np.mean(window_bits != schedule_bits))
        key = reconstruct_with_decay_model(window, _ground_window(ground))
        points.append(
            DramColdBootPoint(
                off_time_s=off_time,
                decayed_fraction=decayed,
                key_recovered=key == VICTIM_KEY,
            )
        )

    # Scrambler control: same dump, session seed rolls across the boot.
    dram, ground = _build_dram(seed + 99)
    memory = ScrambledMemory(MainMemory(dram), session_seed=seed)
    memory.write_block(SCHEDULE_ADDR, schedule)
    dram.power_down()
    dram.elapse_unpowered(1.0, celsius_to_kelvin(-50.0))  # barely any decay
    dram.restore_power()
    memory.reseed(seed + 1)  # the reboot derives a fresh session key
    dump = memory.read_block(SCHEDULE_ADDR, 176)
    raw = memory.raw_array_read(SCHEDULE_ADDR, 176)
    key = reconstruct_with_decay_model(dump, _ground_window(ground))
    return DramColdBootResult(
        points=points,
        scrambled_dump_ones=ones_fraction(dump),
        scrambled_key_found=key == VICTIM_KEY or raw == schedule,
    )


def report(result: DramColdBootResult) -> AttackReport:
    """Render the sweep plus the mitigation row."""
    out = AttackReport(
        "DRAM cold boot baseline (Halderman-style) and the scrambler "
        "mitigation (paper section 9.1)"
    )
    for point in result.points:
        out.add_row(
            scenario="plain DRAM @ -50C",
            off_time_s=point.off_time_s,
            decayed_percent=round(100 * point.decayed_fraction, 2),
            key_recovered=point.key_recovered,
        )
    out.add_row(
        scenario="scrambled DRAM (seed rolled)",
        off_time_s=1.0,
        decayed_percent=round(100 * (0.5 - abs(result.scrambled_dump_ones - 0.5)), 2),
        key_recovered=result.scrambled_key_found,
    )
    out.add_note(
        "the decoder exploits known decay direction; SRAM's bistable "
        "cells offer no such ground state, which is why cold-boot-style "
        "error correction fails there (paper section 9.2)."
    )
    return out
