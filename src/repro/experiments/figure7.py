"""Figure 7 — i-cache snapshots after attacking bare-metal software (§7.1.1).

A bare-metal NOP program runs on all four cores of both Broadcom
devices; Volt Boot then dumps the i-caches.  Where a plain power cycle
leaves random power-on state (Figure 3), the probed attack preserves the
instruction stream across the cycle: the paper reports 100 % retention
on every core of both devices.

The BCM2837 stores instructions and ECC in a vendor-private bit order
(paper footnote 4), so its comparison uses before/after raw images, not
decoded instructions — exactly the paper's method.  The model applies a
fixed in-line interleave to the BCM2837 i-cache, making that comparison
path meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.hamming import fractional_hamming_distance
from ..analysis.imaging import ones_fraction
from ..core.report import AttackReport
from ..core.voltboot import VoltBootAttack
from ..devices import raspberry_pi_3, raspberry_pi_4
from ..rng import DEFAULT_SEED
from .common import ATTACKER_MEDIA, VICTIM_MEDIA, run_nop_fill, snapshot_l1i
from .common import manifested

_BUILDERS = {"BCM2711": raspberry_pi_4, "BCM2837": raspberry_pi_3}


@dataclass
class Figure7Result:
    """Per-device, per-core retention accuracies for the i-cache attack."""

    device: str
    per_core_accuracy: list[float] = field(default_factory=list)
    way0_image: bytes = b""
    machine_code: bytes = b""

    @property
    def all_perfect(self) -> bool:
        """Whether every core retained every bit."""
        return all(acc >= 100.0 for acc in self.per_core_accuracy)


def run_device(builder_name: str, seed: int = DEFAULT_SEED) -> Figure7Result:
    """Run the bare-metal i-cache attack on one Broadcom device."""
    board = _BUILDERS[builder_name](seed=seed)
    board.boot(VICTIM_MEDIA)
    machine_code = b""
    ground_truth = {}
    for core in board.soc.cores:
        machine_code = run_nop_fill(board, core.index)
        ground_truth[core.index] = snapshot_l1i(core)

    attack = VoltBootAttack(board, target="l1-caches",
                            boot_media=ATTACKER_MEDIA)
    attack_result = attack.execute()
    assert attack_result.cache_images is not None

    result = Figure7Result(device=builder_name, machine_code=machine_code)
    for core in board.soc.cores:
        observed = attack_result.cache_images.icache(core.index)
        reference = b"".join(ground_truth[core.index])
        error = fractional_hamming_distance(reference, observed)
        result.per_core_accuracy.append(100.0 * (1.0 - error))
    result.way0_image = attack_result.cache_images.l1i[0][0]
    return result


@manifested("figure7", device="rpi4+rpi3")
def run(seed: int = DEFAULT_SEED) -> list[Figure7Result]:
    """Run on both devices (the two panels of Figure 7)."""
    return [run_device(name, seed) for name in _BUILDERS]


def report(results: list[Figure7Result]) -> AttackReport:
    """Render the figure's headline numbers."""
    out = AttackReport(
        "Figure 7: i-cache retention after Volt Boot, bare-metal NOP "
        "victim (paper: 100% on all cores of both SoCs)"
    )
    for result in results:
        nop_lines = result.way0_image.count(b"\x00" * 64)
        out.add_row(
            device=result.device,
            **{
                f"core{i}_acc%": round(acc, 2)
                for i, acc in enumerate(result.per_core_accuracy)
            },
            structured_way0=nop_lines > 0 or ones_fraction(result.way0_image) < 0.45,
        )
    out.add_note(
        "compare against Figure 3: without the probe the same dump is a "
        "50/50 bit soup."
    )
    return out
