"""§8 — countermeasure survey.

Each defense the paper discusses is applied to an otherwise-identical
victim (Pi 4, 0xAA-filled d-cache plus a CaSE-style secure key schedule)
and the attack is re-run:

* **none** — baseline; full recovery;
* **purge on power-down** — a software shutdown handler zeroes the
  caches, but an *abrupt* power cut never runs it (the paper's point);
  a graceful shutdown shows the purge does work when it gets to run;
* **MBIST reset at startup** — boot-time hardware initialisation denies
  the post-reboot readout;
* **TrustZone enforcement** — secure (NS=0) lines are unreadable from
  the attacker's non-secure world;
* **authenticated boot** — the attacker's media never boots, so there is
  no readout program at all (except on internal-ROM parts).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.patterns import count_pattern_lines
from ..core.extraction import attacker_context, extract_l1_images
from ..core.report import AttackReport
from ..core.voltboot import VoltBootAttack
from ..cpu.assembler import assemble
from ..cpu.core import Core
from ..cpu.programs import dczva_wipe
from ..crypto.onchip import CacheLockedAes
from ..devices import raspberry_pi_4
from ..errors import AuthenticatedBootError
from ..rng import DEFAULT_SEED
from .common import (
    ATTACKER_MEDIA,
    VICTIM_MEDIA,
    fill_dcache,
    victim_buffer_base,
    victim_code_base,
)
from .common import manifested

#: Secret key parked CaSE-style in secure cache lines.
VICTIM_KEY = bytes(range(16))


@dataclass
class DefenseOutcome:
    """What the attacker got under one defense."""

    defense: str
    attack_completed: bool
    pattern_lines_recovered: int
    secure_schedule_recovered: bool
    verdict: str


def _prepare_victim(board) -> None:
    """0xAA-fill core 0's d-cache and install a secure AES schedule."""
    fill_dcache(board, 0, pattern=0xAA)
    CacheLockedAes(board.soc.core(0),
                   schedule_addr=victim_buffer_base(1)).install_key(VICTIM_KEY)


def _schedule_visible(images, board) -> bool:
    from ..crypto.aes import schedule_bytes

    needle = schedule_bytes(VICTIM_KEY)[:64]
    return needle in images.dcache(0)


def _attack(board) -> tuple[bool, int, bool]:
    """Run the cache attack; returns (completed, AA lines, schedule seen)."""
    attack = VoltBootAttack(board, target="l1-caches",
                            boot_media=ATTACKER_MEDIA)
    try:
        result = attack.execute()
    except AuthenticatedBootError:
        return False, 0, False
    assert result.cache_images is not None
    lines = count_pattern_lines(result.cache_images.dcache(0), 0xAA)
    return True, lines, _schedule_visible(result.cache_images, board)


def _case_none(seed: int) -> DefenseOutcome:
    board = raspberry_pi_4(seed=seed)
    board.boot(VICTIM_MEDIA)
    _prepare_victim(board)
    completed, lines, schedule = _attack(board)
    return DefenseOutcome("none (baseline)", completed, lines, schedule,
                          "broken: full recovery")


def _case_purge_abrupt(seed: int) -> DefenseOutcome:
    """The purge handler exists but the power cut is abrupt."""
    board = raspberry_pi_4(seed=seed)
    board.boot(VICTIM_MEDIA)
    _prepare_victim(board)
    # The shutdown handler (dczva_wipe) is registered but never runs:
    # VoltBootAttack yanks the input without warning the OS.
    completed, lines, schedule = _attack(board)
    return DefenseOutcome(
        "purge on power-down (abrupt cut)", completed, lines, schedule,
        "broken: handler never ran",
    )


def _case_purge_graceful(seed: int) -> DefenseOutcome:
    """Control: a graceful shutdown does run the purge and it works."""
    board = raspberry_pi_4(seed=seed)
    board.boot(VICTIM_MEDIA)
    _prepare_victim(board)
    unit = board.soc.core(0)
    wipe = assemble(
        dczva_wipe(victim_buffer_base(0), unit.l1d.geometry.size_bytes * 2)
    )
    cpu = Core(unit, board.soc.memory_map)
    cpu.load_program(wipe.machine_code, victim_code_base(3))
    cpu.run(max_steps=50_000)
    completed, lines, schedule = _attack(board)
    return DefenseOutcome(
        "purge on power-down (graceful)", completed, lines, schedule,
        "effective when it actually runs",
    )


def _case_mbist(seed: int) -> DefenseOutcome:
    board = raspberry_pi_4(seed=seed, mbist_enabled=True)
    board.boot(VICTIM_MEDIA)
    _prepare_victim(board)
    completed, lines, schedule = _attack(board)
    return DefenseOutcome(
        "MBIST reset at startup", completed, lines, schedule,
        "effective: RAMs zeroed before readout",
    )


def _case_trustzone(seed: int) -> DefenseOutcome:
    board = raspberry_pi_4(seed=seed, trustzone_enforced=True)
    board.boot(VICTIM_MEDIA)
    _prepare_victim(board)
    attack = VoltBootAttack(board, target="l1-caches",
                            boot_media=ATTACKER_MEDIA)
    result = attack.execute()
    assert result.cache_images is not None
    lines = count_pattern_lines(result.cache_images.dcache(0), 0xAA)
    schedule = _schedule_visible(result.cache_images, board)
    return DefenseOutcome(
        "TrustZone enforcement", True, lines, schedule,
        "partial: secure lines blocked, normal-world data still leaks",
    )


def _case_auth_boot(seed: int) -> DefenseOutcome:
    board = raspberry_pi_4(seed=seed, auth_boot=True)
    board.boot(VICTIM_MEDIA.__class__(VICTIM_MEDIA.name, "oem-signed"))
    _prepare_victim(board)
    completed, lines, schedule = _attack(board)
    return DefenseOutcome(
        "authenticated boot", completed, lines, schedule,
        "effective on media-booting parts: no readout program boots",
    )


@manifested("countermeasures", device="rpi4")
def run(seed: int = DEFAULT_SEED) -> list[DefenseOutcome]:
    """Evaluate every defense on fresh, otherwise-identical victims."""
    return [
        _case_none(seed),
        _case_purge_abrupt(seed + 1),
        _case_purge_graceful(seed + 2),
        _case_mbist(seed + 3),
        _case_trustzone(seed + 4),
        _case_auth_boot(seed + 5),
    ]


def report(outcomes: list[DefenseOutcome]) -> AttackReport:
    """Render the defense matrix."""
    out = AttackReport(
        "Section 8: countermeasure survey (victim: 0xAA d-cache fill + "
        "CaSE-style secure AES schedule on a Pi 4)"
    )
    for outcome in outcomes:
        out.add_row(
            defense=outcome.defense,
            attack_completed=outcome.attack_completed,
            aa_lines=outcome.pattern_lines_recovered,
            secure_schedule_leaked=outcome.secure_schedule_recovered,
            verdict=outcome.verdict,
        )
    return out
