"""Figure 8 — Volt Boot against an application under an OS (§7.1.2).

A user application stores 0xAA over a large buffer while the (simulated)
Linux kernel schedules background work.  Post-attack, the d-cache dump
shows the expected pattern and the i-cache dump contains the
application's machine code in consecutive lines — both of the paper's
observations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.patterns import count_pattern_lines, find_all
from ..core.report import AttackReport
from ..core.voltboot import VoltBootAttack
from ..cpu.assembler import assemble
from ..cpu.programs import byte_pattern_store
from ..devices import raspberry_pi_4
from ..osim.kernel import SimKernel
from ..osim.process import InterpretedProcess
from ..rng import DEFAULT_SEED
from .common import (
    ATTACKER_MEDIA,
    VICTIM_MEDIA,
    victim_buffer_base,
    victim_code_base,
)
from .common import manifested

#: Size of the 0xAA buffer the demo app touches.
BUFFER_BYTES = 8 * 1024


@dataclass
class Figure8Result:
    """Evidence recovered from the attacked OS system."""

    pattern_lines_in_dcache: int
    code_fragments_in_icache: int
    machine_code_bytes: int
    dcache_way0: bytes
    icache_way_images: list[bytes]

    @property
    def pattern_found(self) -> bool:
        """Whether the 0xAA payload survived into the dump."""
        return self.pattern_lines_in_dcache > 0

    @property
    def instructions_found(self) -> bool:
        """Whether the app's code was located in the i-cache dump."""
        return self.code_fragments_in_icache > 0


@manifested("figure8", device="rpi4")
def run(seed: int = DEFAULT_SEED) -> Figure8Result:
    """Run the OS scenario on a Pi 4 and attack core 0's caches."""
    board = raspberry_pi_4(seed=seed)
    board.boot(VICTIM_MEDIA)
    kernel = SimKernel(board, seed_label=f"fig8-{seed}")
    kernel.enable_caches()

    program = assemble(
        byte_pattern_store(victim_buffer_base(0), BUFFER_BYTES, pattern=0xAA)
    )
    kernel.spawn(
        InterpretedProcess(
            name="aa-writer",
            core_index=0,
            machine_code=program.machine_code,
            load_addr=victim_code_base(0),
        )
    )
    kernel.run()

    attack = VoltBootAttack(board, target="l1-caches",
                            boot_media=ATTACKER_MEDIA)
    result = attack.execute()
    assert result.cache_images is not None

    dcache = result.cache_images.dcache(0)
    icache = result.cache_images.icache(0)
    # The app's inner loop is its most-executed line; search for any
    # 16-byte (4-instruction) window of the program in the i-cache dump.
    fragments = 0
    code = program.machine_code
    for start in range(0, len(code) - 16 + 1, 16):
        if find_all(icache, code[start : start + 16]):
            fragments += 1
    return Figure8Result(
        pattern_lines_in_dcache=count_pattern_lines(dcache, 0xAA),
        code_fragments_in_icache=fragments,
        machine_code_bytes=len(code),
        dcache_way0=result.cache_images.l1d[0][0],
        icache_way_images=result.cache_images.l1i[0],
    )


def report(result: Figure8Result) -> AttackReport:
    """Summarise the two Figure 8 observations."""
    out = AttackReport(
        "Figure 8: caches of a general-purpose (OS) system after Volt "
        "Boot (paper: 0xAA pattern + all app instructions recovered)"
    )
    out.add_row(
        pattern_lines_0xAA=result.pattern_lines_in_dcache,
        code_fragments_found=result.code_fragments_in_icache,
        app_code_bytes=result.machine_code_bytes,
        pattern_found=result.pattern_found,
        instructions_found=result.instructions_found,
    )
    return out
