"""Shared plumbing for the experiment modules.

Victim-preparation helpers (cache fills, NOP sleds, register fills) and
snapshot utilities used by several tables/figures.  Experiments capture
*pre-attack ground truth* by reading the raw SRAM images right before
the power cut — the experimenter wrote the data, so this mirrors the
paper's "compare to previously-stored binaries" methodology.
"""

from __future__ import annotations

import dataclasses
import functools
import inspect
from typing import Any, Callable

from ..cpu.assembler import assemble
from ..cpu.core import Core
from ..cpu.programs import nop_fill, vector_fill
from ..exec import runtime as exec_runtime
from ..obs import OBS, RunManifest, SectionTimer
from ..soc.board import Board
from ..soc.bootrom import BootMedia
from ..soc.soc import CoreUnit

#: Boot media used by victims and attackers in the experiments.
VICTIM_MEDIA = BootMedia("victim-os", kernel="victim")
ATTACKER_MEDIA = BootMedia("attacker-usb", kernel="extractor")

#: DRAM base address for per-core victim buffers (64 KB apart so cores
#: never alias in DRAM).
VICTIM_BASE = 0x40000
VICTIM_STRIDE = 0x10000

#: DRAM load address for victim program text, per core.
CODE_BASE = 0x8000
CODE_STRIDE = 0x1000


def victim_buffer_base(core_index: int) -> int:
    """Per-core victim data buffer base address."""
    return VICTIM_BASE + core_index * VICTIM_STRIDE


def victim_code_base(core_index: int) -> int:
    """Per-core victim program load address."""
    return CODE_BASE + core_index * CODE_STRIDE


def fill_dcache(board: Board, core_index: int, pattern: int = 0xAA) -> int:
    """Enable and completely fill one core's d-cache with ``pattern``.

    Streams cache-size bytes of the repeated pattern through the cache
    (write + allocate), touching every set of every way.  Returns the
    number of bytes written.
    """
    unit = board.soc.core(core_index)
    cache = unit.l1d
    if not cache.enabled:
        cache.invalidate_all()
        cache.enabled = True
    line = cache.geometry.line_bytes
    payload = bytes([pattern & 0xFF]) * line
    base = victim_buffer_base(core_index)
    total = cache.geometry.size_bytes
    for offset in range(0, total, line):
        cache.write(base + offset, payload)
    return total


def run_nop_fill(board: Board, core_index: int) -> bytes:
    """Run the NOP-sled victim on one core; returns its machine code."""
    unit = board.soc.core(core_index)
    program = assemble(nop_fill(unit.l1i.geometry.size_bytes))
    core = Core(unit, board.soc.memory_map)
    core.load_program(program.machine_code, victim_code_base(core_index))
    core.run(max_steps=len(program.machine_code) // 4 + 16)
    return program.machine_code


def run_vector_fill(board: Board, core_index: int) -> None:
    """Park the §7.2 register patterns on one core."""
    unit = board.soc.core(core_index)
    program = assemble(vector_fill())
    core = Core(unit, board.soc.memory_map)
    core.load_program(program.machine_code, victim_code_base(core_index))
    core.run()


def snapshot_l1d(unit: CoreUnit) -> list[bytes]:
    """Raw data-RAM images of every d-cache way (ground truth capture)."""
    return [
        unit.l1d.raw_way_image(way) for way in range(unit.l1d.geometry.ways)
    ]


def snapshot_l1i(unit: CoreUnit) -> list[bytes]:
    """Raw data-RAM images of every i-cache way."""
    return [
        unit.l1i.raw_way_image(way) for way in range(unit.l1i.geometry.ways)
    ]


# ----------------------------------------------------------------------
# Run manifests for experiments
# ----------------------------------------------------------------------


def _plain(value: Any) -> Any:
    """Reduce a parameter/headline value to JSON-friendly primitives."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_plain(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return repr(value)


def auto_headline(result: Any) -> dict[str, Any]:
    """A generic headline for experiments without a bespoke summariser.

    Lists report their row count; dataclasses and dicts surface their
    scalar fields — enough for trend tooling to chart something useful
    even before a module grows a curated summary.
    """
    if isinstance(result, (list, tuple)):
        return {"rows": len(result)}
    source: dict[str, Any] | None = None
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        source = {
            f.name: getattr(result, f.name)
            for f in dataclasses.fields(result)
        }
    elif isinstance(result, dict):
        source = result
    if source is not None:
        return {
            str(k): v
            for k, v in source.items()
            if isinstance(v, (int, float, str, bool))
        }
    return {}


def manifested(
    experiment: str,
    device: str | None = None,
    headline: Callable[[Any], dict[str, Any]] | None = None,
) -> Callable:
    """Decorate an experiment ``run`` to record a run manifest.

    When observability is disabled the wrapper adds a single boolean
    check and nothing else, so undecorated behaviour (and RNG state) is
    preserved byte-for-byte.  When enabled, the run is wrapped in an
    ``experiment.<name>`` span and a :class:`~repro.obs.RunManifest` is
    recorded with the call's bound parameters, wall-clock timing, and a
    headline summary.

    Quarantined work units (a quarantine-enabled
    :class:`~repro.exec.SupervisionPolicy` turned poison units into
    partial results) surface as the manifest's ``partial`` section —
    the runtime incident ledger is cleared at run start so the section
    reflects only this run's incidents.
    """

    def decorate(run_fn: Callable) -> Callable:
        signature = inspect.signature(run_fn)

        @functools.wraps(run_fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not OBS.enabled:
                return run_fn(*args, **kwargs)
            exec_runtime.clear_incidents()
            bound = signature.bind_partial(*args, **kwargs)
            bound.apply_defaults()
            params = {k: _plain(v) for k, v in bound.arguments.items()}
            timer = SectionTimer()
            with OBS.span(f"experiment.{experiment}", device=device):
                with timer.section("run"):
                    result = run_fn(*args, **kwargs)
            summarise = headline or auto_headline
            seed = bound.arguments.get("seed")
            OBS.record_manifest(
                RunManifest(
                    kind="experiment",
                    name=experiment,
                    seed=seed if isinstance(seed, int) else None,
                    device=device,
                    parameters=params,
                    phases=timer.phases(),
                    headline=_plain(summarise(result)),
                    metrics=OBS.metrics.snapshot(),
                    partial=_partial_section(),
                )
            )
            return result

        return wrapper

    return decorate


def _partial_section() -> dict[str, Any] | None:
    """The manifest ``partial`` section from the run's incident ledger.

    Only quarantined units are listed — a journal degradation loses
    durability, not results, and is surfaced through the CLI exit-code
    contract instead (a timing accident must not change the manifest
    fingerprint).  Entries sort by unit index so the section is
    identical whatever dispatch order produced the incidents.
    """
    quarantined = sorted(
        (
            dict(incident.detail)
            for incident in exec_runtime.incidents()
            if incident.kind == "quarantined-unit"
        ),
        key=lambda entry: entry.get("unit", 0),
    )
    if not quarantined:
        return None
    return {"quarantined": quarantined}
