"""Shared plumbing for the experiment modules.

Victim-preparation helpers (cache fills, NOP sleds, register fills) and
snapshot utilities used by several tables/figures.  Experiments capture
*pre-attack ground truth* by reading the raw SRAM images right before
the power cut — the experimenter wrote the data, so this mirrors the
paper's "compare to previously-stored binaries" methodology.
"""

from __future__ import annotations

from ..cpu.assembler import assemble
from ..cpu.core import Core
from ..cpu.programs import nop_fill, vector_fill
from ..soc.board import Board
from ..soc.bootrom import BootMedia
from ..soc.soc import CoreUnit

#: Boot media used by victims and attackers in the experiments.
VICTIM_MEDIA = BootMedia("victim-os", kernel="victim")
ATTACKER_MEDIA = BootMedia("attacker-usb", kernel="extractor")

#: DRAM base address for per-core victim buffers (64 KB apart so cores
#: never alias in DRAM).
VICTIM_BASE = 0x40000
VICTIM_STRIDE = 0x10000

#: DRAM load address for victim program text, per core.
CODE_BASE = 0x8000
CODE_STRIDE = 0x1000


def victim_buffer_base(core_index: int) -> int:
    """Per-core victim data buffer base address."""
    return VICTIM_BASE + core_index * VICTIM_STRIDE


def victim_code_base(core_index: int) -> int:
    """Per-core victim program load address."""
    return CODE_BASE + core_index * CODE_STRIDE


def fill_dcache(board: Board, core_index: int, pattern: int = 0xAA) -> int:
    """Enable and completely fill one core's d-cache with ``pattern``.

    Streams cache-size bytes of the repeated pattern through the cache
    (write + allocate), touching every set of every way.  Returns the
    number of bytes written.
    """
    unit = board.soc.core(core_index)
    cache = unit.l1d
    if not cache.enabled:
        cache.invalidate_all()
        cache.enabled = True
    line = cache.geometry.line_bytes
    payload = bytes([pattern & 0xFF]) * line
    base = victim_buffer_base(core_index)
    total = cache.geometry.size_bytes
    for offset in range(0, total, line):
        cache.write(base + offset, payload)
    return total


def run_nop_fill(board: Board, core_index: int) -> bytes:
    """Run the NOP-sled victim on one core; returns its machine code."""
    unit = board.soc.core(core_index)
    program = assemble(nop_fill(unit.l1i.geometry.size_bytes))
    core = Core(unit, board.soc.memory_map)
    core.load_program(program.machine_code, victim_code_base(core_index))
    core.run(max_steps=len(program.machine_code) // 4 + 16)
    return program.machine_code


def run_vector_fill(board: Board, core_index: int) -> None:
    """Park the §7.2 register patterns on one core."""
    unit = board.soc.core(core_index)
    program = assemble(vector_fill())
    core = Core(unit, board.soc.memory_map)
    core.load_program(program.machine_code, victim_code_base(core_index))
    core.run()


def snapshot_l1d(unit: CoreUnit) -> list[bytes]:
    """Raw data-RAM images of every d-cache way (ground truth capture)."""
    return [
        unit.l1d.raw_way_image(way) for way in range(unit.l1d.geometry.ways)
    ]


def snapshot_l1i(unit: CoreUnit) -> list[bytes]:
    """Raw data-RAM images of every i-cache way."""
    return [
        unit.l1i.raw_way_image(way) for way in range(unit.l1i.geometry.ways)
    ]
