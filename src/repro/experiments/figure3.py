"""Figure 3 — snapshot of a cold-booted d-cache way (paper §3).

After the −40 °C power cycle of the Table 1 setup, WAY0 of a Cortex-A72
d-cache (256×512 bits = 16 KB) shows an even mix of ones and zeros: the
stored pattern is gone and the array rebooted into its random-looking
power-on state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.imaging import ascii_bit_image, ones_fraction, write_pgm
from ..core.coldboot import ColdBootAttack
from ..core.report import AttackReport
from ..devices import raspberry_pi_4
from ..rng import DEFAULT_SEED
from ..units import milliseconds
from .common import ATTACKER_MEDIA, VICTIM_MEDIA, fill_dcache
from .common import manifested

#: The paper renders WAY0 as a 256-row x 512-column bit matrix (16 KB).
IMAGE_WIDTH_BITS = 512


@dataclass
class Figure3Result:
    """The post-cold-boot WAY0 image and its statistics."""

    way0_image: bytes
    ones: float
    temperature_c: float

    def ascii_art(self, max_rows: int = 24) -> str:
        """Downsampled ASCII rendering of the way image."""
        return ascii_bit_image(
            self.way0_image, width=IMAGE_WIDTH_BITS,
            max_rows=max_rows, downsample=8,
        )

    def save_pgm(self, path: str) -> None:
        """Write the full-resolution bit image as a PGM file."""
        write_pgm(self.way0_image, IMAGE_WIDTH_BITS, path)


@manifested("figure3", device="rpi4")
def run(seed: int = DEFAULT_SEED, temperature_c: float = -40.0) -> Figure3Result:
    """Cold boot a pattern-filled Pi 4 and dump d-cache WAY0 of core 0."""
    board = raspberry_pi_4(seed=seed)
    board.boot(VICTIM_MEDIA)
    fill_dcache(board, 0, pattern=0xAA)
    attack = ColdBootAttack(
        board,
        temperature_c=temperature_c,
        off_time_s=milliseconds(4),
        boot_media=ATTACKER_MEDIA,
    )
    result = attack.execute()
    assert result.cache_images is not None
    way0 = result.cache_images.l1d[0][0]
    return Figure3Result(
        way0_image=way0,
        ones=ones_fraction(way0),
        temperature_c=temperature_c,
    )


def report(result: Figure3Result) -> AttackReport:
    """Summarise the snapshot the way the figure caption does."""
    out = AttackReport(
        "Figure 3: d-cache WAY0 after a cold boot at "
        f"{result.temperature_c:g}C (paper: ~equal 1s and 0s)"
    )
    out.add_row(
        way_bytes=len(result.way0_image),
        ones_fraction=round(result.ones, 3),
        pattern_surviving=result.way0_image.count(b"\xaa" * 64),
    )
    out.add_note("an even 1/0 mix == the cache reset to its power-on state")
    return out
