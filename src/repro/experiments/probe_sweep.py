"""§6 ablation — probe adequacy: current capability and hold voltage.

The paper stresses that the external supply must (a) match the measured
pad voltage and (b) source enough current to ride out the disconnect
surge ("a bench power supply with >3A current driving capability").
This sweep quantifies both requirements:

* **Current-limit sweep** (board level, Pi 4 core rail at 0.8 V): an
  under-sized probe lets the disconnect surge droop the rail; once the
  dip undercuts the cell-DRV distribution, recovery collapses toward
  chance.
* **Hold-voltage sweep** (cell level): after the cut, the probe only
  needs to keep the rail above the per-cell data retention voltage
  (§2.1); dropping the hold voltage through the DRV distribution traces
  the retention cliff directly.
* **Attach mismatch**: a probe whose set-point fights the live rail
  cannot even be landed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.hamming import fractional_hamming_distance
from ..circuits.sram import SramArray
from ..circuits.supply import BenchSupply
from ..core.report import AttackReport
from ..core.voltboot import VoltBootAttack
from ..devices import raspberry_pi_4
from ..errors import ProbeError
from ..exec import ShardPlan, WorkUnit, execute, shard_unit
from ..rng import DEFAULT_SEED, generator
from ..units import milliamps
from .common import ATTACKER_MEDIA, VICTIM_MEDIA, fill_dcache, snapshot_l1d
from .common import manifested

#: Current limits swept at nominal voltage (amps).
CURRENT_LIMITS_A = (milliamps(50), 0.25, 0.5, 1.0, 3.0)

#: Hold voltages swept at cell level (volts; nominal is 0.8).
HOLD_VOLTAGES_V = (0.10, 0.18, 0.25, 0.32, 0.40, 0.80)

#: Cell-level sweep array size.
SWEEP_BITS = 64 * 1024


@dataclass
class ProbePoint:
    """One sweep sample."""

    sweep: str  # "current", "hold-voltage", or "attach"
    current_limit_a: float
    voltage_v: float
    accuracy_percent: float
    attached: bool


def _accuracy_with_supply(seed: int, supply: BenchSupply) -> tuple[float, bool]:
    """Run the d-cache attack with a specific supply; returns accuracy."""
    board = raspberry_pi_4(seed=seed)
    board.boot(VICTIM_MEDIA)
    fill_dcache(board, 0, pattern=0xAA)
    reference = b"".join(snapshot_l1d(board.soc.core(0)))
    attack = VoltBootAttack(
        board, target="l1-caches", supply=supply, boot_media=ATTACKER_MEDIA
    )
    try:
        result = attack.execute()
    except ProbeError:
        return 0.0, False  # set-point fought the live rail: cannot attach
    assert result.cache_images is not None
    observed = result.cache_images.dcache(0)
    error = fractional_hamming_distance(reference, observed)
    return 100.0 * (1.0 - 2.0 * error), True


def _hold_voltage_accuracy(seed: int, hold_v: float) -> float:
    """Cell-level: fraction of bits surviving a reduced hold voltage."""
    sram = SramArray(SWEEP_BITS, rng=generator(seed, "hold-sweep"))
    sram.power_up()
    data = generator(seed, "hold-data").integers(0, 2, SWEEP_BITS, dtype=np.uint8)
    sram.write_bits(0, data)
    sram.set_supply_voltage(hold_v)
    surviving = float(np.mean(sram.image() == data))
    # Chance-level survival is 0.5 for bistable cells; rescale to the
    # paper's "accuracy" notion where random == 0 %.
    return max(0.0, 100.0 * (2.0 * surviving - 1.0))


@shard_unit
def _current_point(seed: int, limit: float) -> ProbePoint:
    """Board-level attack under one probe current limit."""
    supply = BenchSupply(voltage_v=0.8, current_limit_a=limit)
    accuracy, attached = _accuracy_with_supply(seed, supply)
    return ProbePoint("current", limit, 0.8, accuracy, attached)


@shard_unit
def _hold_point(seed: int, hold_v: float) -> ProbePoint:
    """Cell-level retention at one reduced hold voltage."""
    accuracy = _hold_voltage_accuracy(seed, hold_v)
    return ProbePoint("hold-voltage", 3.0, hold_v, accuracy, True)


@shard_unit
def _attach_point(seed: int) -> ProbePoint:
    """A mis-set probe cannot be attached to the live rail at all."""
    bad_supply = BenchSupply(voltage_v=0.5, current_limit_a=3.0)
    accuracy, attached = _accuracy_with_supply(seed + 77, bad_supply)
    return ProbePoint("attach", 3.0, 0.5, accuracy, attached)


def shard_plan(seed: int) -> ShardPlan:
    """Shardable axis: every sweep sample (current limits, hold
    voltages, the attach-mismatch probe) is an independent unit."""
    units = [
        WorkUnit(
            index=i,
            fn=_current_point,
            args=(seed, limit),
            label=f"probe[current={limit:g}A]",
        )
        for i, limit in enumerate(CURRENT_LIMITS_A)
    ]
    units.extend(
        WorkUnit(
            index=len(CURRENT_LIMITS_A) + i,
            fn=_hold_point,
            args=(seed, hold_v),
            label=f"probe[hold={hold_v:g}V]",
        )
        for i, hold_v in enumerate(HOLD_VOLTAGES_V)
    )
    units.append(
        WorkUnit(
            index=len(units),
            fn=_attach_point,
            args=(seed,),
            label="probe[attach-mismatch]",
        )
    )
    return ShardPlan(units)


@manifested("probe-sweep", device="rpi4")
def run(seed: int = DEFAULT_SEED, jobs: int = 1) -> list[ProbePoint]:
    """Run all three sweeps; returns every sampled point."""
    return execute(shard_plan(seed), jobs=jobs)


def report(points: list[ProbePoint]) -> AttackReport:
    """Render all sweeps."""
    out = AttackReport(
        "Probe adequacy sweeps (paper: >3A supply at the measured pad "
        "voltage gives 100%; retention only needs V > per-cell DRV)"
    )
    for point in points:
        out.add_row(
            sweep=point.sweep,
            current_limit_a=point.current_limit_a,
            voltage_v=point.voltage_v,
            attached=point.attached,
            accuracy_percent=round(point.accuracy_percent, 2),
        )
    out.add_note(
        "the hold-voltage cliff sits on the DRV distribution "
        "(~N(0.25V, 0.03V)) — far below the 0.8V nominal, as the paper "
        "notes in 2.1."
    )
    return out
