"""Tables 2 & 3 — platform and probe-point inventory.

Unlike the measurement experiments, these tables are *checked* rather
than merely printed: the registry rows are validated against the live
simulated hardware (cache geometries, rail voltages, pad/net wiring) so
the documentation cannot drift from the models.
"""

from __future__ import annotations

from ..core.probe import plan_probe
from ..core.report import AttackReport
from ..devices import DEVICES, build_device
from ..rng import DEFAULT_SEED
from .common import manifested

#: Maps a registry target keyword onto the planner's member keyword.
_TARGET_KEYWORD = {"L1D": "l1-caches", "L1I": "l1-caches",
                   "registers": "registers", "iRAM": "iram"}


@manifested("platforms", device="all")
def run(seed: int = DEFAULT_SEED) -> list[dict[str, object]]:
    """Cross-check every registry row against a freshly built board."""
    rows = []
    for key, info in DEVICES.items():
        board = build_device(key, seed=seed)
        plan = plan_probe(board, _TARGET_KEYWORD[info.targets[0]])
        rows.append(
            {
                "board": info.board,
                "soc": info.soc,
                "cpu": f"{info.cores}x {info.cpu}",
                "pad": plan.pad.name,
                "pad_matches_registry": plan.pad.name == info.probe_pad,
                "nominal_v": plan.set_voltage_v,
                "voltage_matches_registry": abs(
                    plan.set_voltage_v - info.nominal_v
                ) < 1e-9,
                "domain": plan.domain_name,
                "targets": ", ".join(info.targets),
            }
        )
    return rows


def report(rows: list[dict[str, object]]) -> AttackReport:
    """Render the combined Tables 2+3 inventory."""
    out = AttackReport(
        "Tables 2 & 3: evaluation platforms, probe pads, and rails "
        "(cross-checked against the simulated hardware)"
    )
    for row in rows:
        out.add_row(**row)
    return out
