"""Figure 10 — Hamming distance profile over the recovered iRAM (§7.3).

The paper localises the Figure 9 errors by computing the Hamming
distance between the stored bitmap and the recovered image at 512-bit
granularity: the error clusters at the beginning and end of the iRAM,
with the largest contiguous error run at 0xF800083C-0xF80018CC — the
boot ROM's scratchpad.  The device resets this region on every boot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.hamming import block_hamming_profile
from ..core.report import AttackReport
from ..devices.builders import IMX53_IRAM_BASE
from ..exec import ShardPlan, WorkUnit, execute, shard_unit
from ..rng import DEFAULT_SEED
from . import figure9
from .common import manifested

#: Profile granularity (bits), as in the paper.
BLOCK_BITS = 512

#: Blocks per shardable profile chunk.  Fixed — never derived from
#: ``jobs`` — so the unit enumeration (and thus the merged profile) is
#: identical at every parallelism level.
CHUNK_BLOCKS = 256


@dataclass
class ErrorCluster:
    """One contiguous run of erroneous blocks."""

    start_addr: int
    end_addr: int  # exclusive
    total_bit_errors: int

    @property
    def span_bytes(self) -> int:
        """Cluster length in bytes."""
        return self.end_addr - self.start_addr


@dataclass
class Figure10Result:
    """The block-level error profile and its clusters."""

    profile: np.ndarray
    clusters: list[ErrorCluster] = field(default_factory=list)

    @property
    def largest_cluster(self) -> ErrorCluster:
        """The widest contiguous error region (the ROM scratchpad)."""
        return max(self.clusters, key=lambda c: c.span_bytes)


def _find_clusters(profile: np.ndarray, threshold: int = 8) -> list[ErrorCluster]:
    """Group consecutive blocks whose error count exceeds ``threshold``."""
    clusters: list[ErrorCluster] = []
    block_bytes = BLOCK_BITS // 8
    run_start: int | None = None
    run_errors = 0
    for index, errors in enumerate([*profile.tolist(), 0]):
        if errors > threshold:
            if run_start is None:
                run_start = index
                run_errors = 0
            run_errors += int(errors)
        elif run_start is not None:
            clusters.append(
                ErrorCluster(
                    start_addr=IMX53_IRAM_BASE + run_start * block_bytes,
                    end_addr=IMX53_IRAM_BASE + index * block_bytes,
                    total_bit_errors=run_errors,
                )
            )
            run_start = None
    return clusters


@shard_unit
def _profile_chunk(stored: bytes, recovered: bytes) -> np.ndarray:
    """Hamming profile of one contiguous slice of the iRAM image."""
    return block_hamming_profile(stored, recovered, block_bits=BLOCK_BITS)


def shard_plan(seed: int) -> ShardPlan:
    """Shardable axis: fixed-size contiguous chunks of the iRAM image.

    The Figure 9 recovery itself runs in the parent (its attack is one
    indivisible sequence); only the block-profile computation shards.
    """
    recovery = figure9.run(seed=seed)
    chunk_bytes = CHUNK_BLOCKS * BLOCK_BITS // 8
    units = [
        WorkUnit(
            index=i,
            fn=_profile_chunk,
            args=(
                recovery.stored[offset : offset + chunk_bytes],
                recovery.recovered[offset : offset + chunk_bytes],
            ),
            label=f"figure10[blocks {i * CHUNK_BLOCKS}+]",
        )
        for i, offset in enumerate(
            range(0, len(recovery.stored), chunk_bytes)
        )
    ]
    return ShardPlan(units)


@manifested("figure10", device="imx53")
def run(seed: int = DEFAULT_SEED, jobs: int = 1) -> Figure10Result:
    """Compute the profile from a fresh Figure 9 recovery."""
    chunks = execute(shard_plan(seed), jobs=jobs)
    profile = np.concatenate(chunks)
    return Figure10Result(profile=profile, clusters=_find_clusters(profile))


def report(result: Figure10Result) -> AttackReport:
    """Summarise the spatial error structure."""
    out = AttackReport(
        "Figure 10: Hamming distance between stored and recovered iRAM at "
        "512-bit granularity (paper: clusters at start+end; largest run "
        "0xF800083C-0xF80018CC)"
    )
    for cluster in result.clusters:
        out.add_row(
            start=f"{cluster.start_addr:#010x}",
            end=f"{cluster.end_addr:#010x}",
            span_bytes=cluster.span_bytes,
            bit_errors=cluster.total_bit_errors,
        )
    clean_blocks = int(np.count_nonzero(result.profile == 0))
    out.add_note(
        f"{clean_blocks}/{result.profile.size} blocks recovered without a "
        f"single bit error."
    )
    return out
