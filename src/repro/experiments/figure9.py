"""Figure 9 — i.MX53 iRAM bitmap recovery (§7.3).

Four copies of a 512x512 1-bpp bitmap (128 KB total) are stored into the
i.MX535's iRAM over JTAG; the board rides VDDAL1 through a power cycle
while VCCGP (the CPU core rail) dies, the SoC reboots from its internal
ROM, and the iRAM is dumped back over JTAG.

The paper recovers everything except the region the boot ROM uses as
scratchpad before releasing the core — an overall error of 2.7 %, with
~95 % of the iRAM available to the attacker.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.bitmap import BITMAP_BYTES, test_bitmap_bytes
from ..analysis.hamming import fractional_hamming_distance
from ..analysis.imaging import ascii_bit_image, write_pgm
from ..core.report import AttackReport
from ..core.voltboot import VoltBootAttack
from ..devices import imx53_qsb
from ..devices.builders import IMX53_IRAM_BASE, IMX53_IRAM_SIZE
from ..rng import DEFAULT_SEED
from ..soc.jtag import JtagProbe
from .common import manifested

#: Number of bitmap copies stored (paper: four, filling the 128 KB iRAM).
N_PANELS = 4


@dataclass
class Figure9Result:
    """Recovered panels plus their error statistics."""

    stored: bytes
    recovered: bytes
    panel_errors: list[float] = field(default_factory=list)

    @property
    def overall_error(self) -> float:
        """Fractional bit error over the whole iRAM."""
        return fractional_hamming_distance(self.stored, self.recovered)

    @property
    def accessible_fraction(self) -> float:
        """Approximation of the §6.2 accessible-iRAM fraction."""
        return 1.0 - 2.0 * self.overall_error  # clobber data is ~50% wrong

    def panel(self, index: int) -> bytes:
        """One recovered 32 KB panel (address windows of the figure)."""
        return self.recovered[index * BITMAP_BYTES : (index + 1) * BITMAP_BYTES]

    def panel_ascii(self, index: int, max_rows: int = 24) -> str:
        """ASCII rendering of one recovered panel."""
        return ascii_bit_image(
            self.panel(index), width=512, max_rows=max_rows, downsample=16
        )

    def save_panel_pgm(self, index: int, path: str) -> None:
        """Save one panel as a PGM image file."""
        write_pgm(self.panel(index), 512, path)


@manifested("figure9", device="imx53")
def run(seed: int = DEFAULT_SEED) -> Figure9Result:
    """Store the bitmaps, Volt Boot the iRAM, and dump it back."""
    board = imx53_qsb(seed=seed)
    board.boot()  # internal ROM boot; no external media needed
    jtag = JtagProbe(board.soc.memory_map)
    bitmap = test_bitmap_bytes()
    stored = bitmap * N_PANELS
    if len(stored) != IMX53_IRAM_SIZE:
        raise AssertionError("panel layout must exactly fill the iRAM")
    for panel in range(N_PANELS):
        jtag.write_block(IMX53_IRAM_BASE + panel * BITMAP_BYTES, bitmap)

    attack = VoltBootAttack(board, target="iram")
    attack_result = attack.execute()
    assert attack_result.iram_image is not None

    result = Figure9Result(stored=stored, recovered=attack_result.iram_image)
    for panel in range(N_PANELS):
        result.panel_errors.append(
            fractional_hamming_distance(bitmap, result.panel(panel))
        )
    return result


def report(result: Figure9Result) -> AttackReport:
    """Summarise the recovery in the figure's terms."""
    out = AttackReport(
        "Figure 9: iRAM bitmap extraction on i.MX535 (paper: 2.7% overall "
        "error, ~95% of iRAM available)"
    )
    for index, error in enumerate(result.panel_errors):
        lo = IMX53_IRAM_BASE + index * BITMAP_BYTES
        hi = lo + BITMAP_BYTES - 1
        out.add_row(
            panel=f"({chr(ord('a') + index)})",
            address_range=f"{lo:#010x}-{hi:#010x}",
            error_percent=round(100.0 * error, 2),
        )
    out.add_row(
        panel="overall",
        address_range="full 128KiB",
        error_percent=round(100.0 * result.overall_error, 2),
    )
    out.add_note(
        "errors concentrate in the boot-ROM scratchpad regions; see "
        "Figure 10 for the spatial profile."
    )
    return out
