"""Design-choice ablation: L1 replacement policy vs Table 4 recovery.

DESIGN.md calls out the replacement policy as the one cache design knob
that plausibly changes Table 4's structure (which way holds the victim
elements, and who gets evicted by kernel noise).  This ablation reruns
the cache-sized-array scenario on otherwise-identical Pi 4s with LRU,
round-robin, and random victim selection.

Expected shape: union recovery stays in the same ~90 % band across
policies — the loss is set by the *volume* of kernel interference, not
by who picks the victim — while the per-way split shifts with policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.patterns import elements_present
from ..core.report import AttackReport
from ..core.voltboot import VoltBootAttack
from ..cpu.programs import element_value
from ..devices import raspberry_pi_4
from ..osim.kernel import SimKernel
from ..osim.process import ArrayFillProcess
from ..rng import DEFAULT_SEED
from ..units import kib
from .common import ATTACKER_MEDIA, VICTIM_MEDIA, victim_buffer_base
from .table4 import TABLE4_NOISE
from .common import manifested

#: Policies ablated.
POLICIES = ("lru", "round-robin", "random")

#: The stressful configuration: array == cache size.
ARRAY_KIB = 32


@dataclass
class PolicyPoint:
    """Recovery for one policy (core 0 of one trial board)."""

    policy: str
    way_counts: list[int]
    union_count: int
    n_elements: int

    @property
    def percent_extracted(self) -> float:
        """Union recovery percentage."""
        return 100.0 * self.union_count / self.n_elements


@manifested("policy-ablation", device="rpi4")
def run(seed: int = DEFAULT_SEED) -> list[PolicyPoint]:
    """Run the 32 KiB scenario once per policy."""
    points = []
    n_elements = kib(ARRAY_KIB) // 8
    element_bytes = [
        element_value(i).to_bytes(8, "little") for i in range(n_elements)
    ]
    for policy in POLICIES:
        board = raspberry_pi_4(seed=seed, l1_replacement=policy)
        board.boot(VICTIM_MEDIA)
        kernel = SimKernel(board, noise_profile=TABLE4_NOISE,
                           seed_label=f"policy-{policy}")
        kernel.enable_caches()
        kernel.warm_caches()
        kernel.spawn(
            ArrayFillProcess(
                name="bench0",
                core_index=0,
                base_addr=victim_buffer_base(0),
                n_elements=n_elements,
                passes=2,
            )
        )
        kernel.run()
        attack = VoltBootAttack(board, target="l1-caches",
                                boot_media=ATTACKER_MEDIA)
        result = attack.execute()
        assert result.cache_images is not None
        found_per_way = [
            elements_present(image, element_bytes)
            for image in result.cache_images.l1d[0]
        ]
        union: set[int] = set()
        for found in found_per_way:
            union |= found
        points.append(
            PolicyPoint(
                policy=policy,
                way_counts=[len(found) for found in found_per_way],
                union_count=len(union),
                n_elements=n_elements,
            )
        )
    return points


def report(points: list[PolicyPoint]) -> AttackReport:
    """Render the ablation."""
    out = AttackReport(
        "Ablation: L1 replacement policy vs Table 4 recovery (32 KiB "
        "array, core 0)"
    )
    for point in points:
        out.add_row(
            policy=point.policy,
            **{f"W{w}": c for w, c in enumerate(point.way_counts)},
            union=point.union_count,
            of=point.n_elements,
            percent=round(point.percent_extracted, 2),
        )
    out.add_note(
        "recovery stays in the same band: the attack does not depend on "
        "the victim-selection heuristic, only on eviction volume."
    )
    return out
