"""Extension experiment: standby voltage scaling vs retention (§2.1).

Paper §2.1: "modern processors dynamically scale down the voltage when
the RAM is not actively accessed because it reduces the energy leakage"
— the very mechanism that makes the DRV headroom exist also creates the
probe-hold window Volt Boot exploits.  This experiment maps that
trade-off on the Pi 4 core domain: for each standby level, how much
leakage power is saved (quadratic in V) and how many cells the move
costs.

The safe-standby floor sits just above the DRV distribution's upper
tail; a PMU that scales below it starts silently corrupting cached
state — the same cliff the attacker's probe must stay above.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.patterns import count_pattern_lines
from ..core.report import AttackReport
from ..devices import raspberry_pi_4
from ..rng import DEFAULT_SEED
from .common import VICTIM_MEDIA, fill_dcache
from .common import manifested

#: Standby voltages swept on the 0.8 V core rail.
STANDBY_LEVELS_V = (0.80, 0.60, 0.45, 0.40, 0.35, 0.30, 0.25)


@dataclass
class StandbyPoint:
    """One standby-level sample."""

    standby_v: float
    leakage_fraction: float
    cells_lost: int
    pattern_lines_intact: int


@manifested("standby-retention", device="rpi4")
def run(seed: int = DEFAULT_SEED) -> list[StandbyPoint]:
    """Sweep standby levels on fresh boards holding a cache pattern."""
    points = []
    total_lines = None
    for index, standby_v in enumerate(STANDBY_LEVELS_V):
        board = raspberry_pi_4(seed=seed + index)
        board.boot(VICTIM_MEDIA)
        fill_dcache(board, 0, pattern=0xAA)
        if total_lines is None:
            total_lines = (
                board.soc.core(0).l1d.geometry.size_bytes // 64
            )
        domain = board.soc.pmu.domain("VDD_CORE")
        lost = domain.scale_voltage(standby_v)
        leakage = domain.leakage_power_fraction()
        unit = board.soc.core(0)
        image = b"".join(
            unit.l1d.raw_way_image(w) for w in range(unit.l1d.geometry.ways)
        )
        points.append(
            StandbyPoint(
                standby_v=standby_v,
                leakage_fraction=leakage,
                cells_lost=lost,
                pattern_lines_intact=count_pattern_lines(image, 0xAA),
            )
        )
    return points


def report(points: list[StandbyPoint]) -> AttackReport:
    """Render the standby trade-off table."""
    out = AttackReport(
        "Extension: standby voltage scaling vs retention on the Pi 4 core "
        "domain (paper section 2.1's leakage/retention trade-off)"
    )
    for point in points:
        out.add_row(
            standby_v=point.standby_v,
            leakage_vs_nominal=round(point.leakage_fraction, 3),
            cells_lost=point.cells_lost,
            pattern_lines_intact=point.pattern_lines_intact,
        )
    out.add_note(
        "the safe floor sits just above the DRV tail (~0.35-0.40V here); "
        "the same headroom is what the attacker's probe exploits."
    )
    return out
