"""Extension experiment: execution-footprint leakage via TLB and BTB.

Paper §2.1 notes the Cortex-A72 exposes fifteen internal RAMs through
CP15 — among them TLBs and branch target buffers.  The evaluation
attacks caches, registers, and iRAM; this extension closes the loop on
the remaining structures: even when a victim's *data* has been
scrubbed, Volt Boot preserves its *footprint* — which pages it touched
(TLB) and where its hot branches lived (BTB).

The victim runs a loop over a secret buffer, then wipes the buffer with
``DC ZVA`` (a diligent defender).  The attack still recovers:

* the buffer's page numbers from retained TLB entries, and
* the loop's branch/target addresses from retained BTB entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.report import AttackReport
from ..core.voltboot import VoltBootAttack
from ..cpu.assembler import assemble
from ..cpu.core import Core
from ..cpu.programs import byte_pattern_store, dczva_wipe
from ..devices import raspberry_pi_4
from ..rng import DEFAULT_SEED
from ..soc.cp15 import RamId
from ..soc.tlb import Btb, Tlb
from ..core.extraction import attacker_context
from .common import ATTACKER_MEDIA, VICTIM_MEDIA, victim_buffer_base
from .common import manifested

#: Size of the victim's secret buffer.
BUFFER_BYTES = 16 * 1024


@dataclass
class MicroarchLeakResult:
    """What the footprint dump revealed."""

    secret_pages: set[int]
    recovered_pages: set[int]
    loop_branch_pcs: set[int]
    recovered_branch_pcs: set[int]
    data_lines_surviving: int
    tlb_entries_total: int = 0
    btb_entries_total: int = 0
    code_base: int = 0
    code_end: int = 0

    @property
    def page_recovery_fraction(self) -> float:
        """Fraction of the secret buffer's pages exposed by the TLB."""
        if not self.secret_pages:
            return 0.0
        return len(self.secret_pages & self.recovered_pages) / len(
            self.secret_pages
        )

    @property
    def branch_recovery_fraction(self) -> float:
        """Fraction of the victim's branch sites exposed by the BTB."""
        if not self.loop_branch_pcs:
            return 0.0
        return len(self.loop_branch_pcs & self.recovered_branch_pcs) / len(
            self.loop_branch_pcs
        )


@manifested("microarch-leak", device="rpi4")
def run(seed: int = DEFAULT_SEED) -> MicroarchLeakResult:
    """Victim writes + wipes a secret buffer; attack dumps TLB/BTB."""
    board = raspberry_pi_4(seed=seed)
    board.boot(VICTIM_MEDIA)
    unit = board.soc.core(0)
    # The victim OS executes TLBI/BPIALL at its own boot, so only the
    # victim's genuine footprint is marked valid afterwards.
    unit.tlb.invalidate_all()
    unit.btb.invalidate_all()
    cpu = Core(unit, board.soc.memory_map, asid=7)

    buffer_base = victim_buffer_base(0)
    code_base = 0x8000
    writer = assemble(byte_pattern_store(buffer_base, BUFFER_BYTES, 0x5A))
    cpu.load_program(writer.machine_code, code_base)
    cpu.run(max_steps=100_000)

    # Record the victim's true footprint before the wipe.
    secret_pages = {
        (buffer_base + offset) >> Tlb.PAGE_SHIFT
        for offset in range(0, BUFFER_BYTES, 1 << Tlb.PAGE_SHIFT)
    }
    loop_branch_pcs = {e.branch_pc for e in unit.btb.valid_entries()}

    # The diligent defender wipes the buffer before the power cut.
    wiper = assemble(dczva_wipe(buffer_base, BUFFER_BYTES))
    wipe_cpu = Core(unit, board.soc.memory_map, asid=7)
    wipe_cpu.load_program(wiper.machine_code, code_base + 0x1000)
    wipe_cpu.run(max_steps=100_000)

    attack = VoltBootAttack(board, target="l1-caches",
                            boot_media=ATTACKER_MEDIA)
    attack.identify()
    attack.attach()
    attack.power_cycle()
    attack.reboot()
    ctx = attacker_context(board)
    tlb_image = unit.cp15.dump_entry_ram(ctx, RamId.TLB)
    btb_image = unit.cp15.dump_entry_ram(ctx, RamId.BTB)
    cache_result = attack.extract()

    tlb_entries = Tlb.decode_raw_image(tlb_image)
    btb_entries = Btb.decode_raw_image(btb_image)
    data_lines = cache_result.cache_images.dcache(0).count(b"\x5a" * 64)
    return MicroarchLeakResult(
        secret_pages=secret_pages,
        recovered_pages={e.vpn for e in tlb_entries if e.asid == 7},
        loop_branch_pcs=loop_branch_pcs,
        recovered_branch_pcs={e.branch_pc for e in btb_entries},
        data_lines_surviving=data_lines,
        tlb_entries_total=len(tlb_entries),
        btb_entries_total=len(btb_entries),
        code_base=code_base,
        code_end=code_base + 0x2000,
    )


def report(result: MicroarchLeakResult) -> AttackReport:
    """Render the footprint-leak summary."""
    out = AttackReport(
        "Extension: TLB/BTB execution-footprint leakage (victim wiped its "
        "data with DC ZVA before the cut)"
    )
    out.add_row(
        structure="TLB",
        entries_recovered=result.tlb_entries_total,
        victim_items=len(result.secret_pages),
        fraction_exposed=round(result.page_recovery_fraction, 2),
        reveals="secret buffer page numbers",
    )
    out.add_row(
        structure="BTB",
        entries_recovered=result.btb_entries_total,
        victim_items=len(result.loop_branch_pcs),
        fraction_exposed=round(result.branch_recovery_fraction, 2),
        reveals="hot-loop branch sites",
    )
    out.add_row(
        structure="L1D (control)",
        entries_recovered=result.data_lines_surviving,
        victim_items=BUFFER_BYTES // 64,
        fraction_exposed=round(
            result.data_lines_surviving / (BUFFER_BYTES // 64), 2
        ),
        reveals="the wiped data itself (should be ~0)",
    )
    out.add_note(
        "scrubbing data is not enough: the microarchitectural footprint "
        "of *having used it* retains across the probed power cycle."
    )
    return out
