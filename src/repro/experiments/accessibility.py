"""§6.2 — how much memory is accessible to an attacker?

The CPU and co-processors consume some embedded SRAM during boot before
an attacker's code can run.  The paper measures what survives:

* Broadcom L1 caches are software-enabled — boot never touches them, so
  100 % of the L1 image is available;
* the Broadcom L2 is shared with the VideoCore, whose boot firmware
  clobbers it completely — 0 % available;
* the i.MX53 boot ROM uses part of the iRAM as scratchpad — ~95 %
  available.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.hamming import fractional_hamming_distance
from ..core.report import AttackReport
from ..core.voltboot import VoltBootAttack
from ..devices import imx53_qsb, raspberry_pi_4
from ..devices.builders import IMX53_IRAM_BASE, IMX53_IRAM_SIZE
from ..rng import DEFAULT_SEED, from_entropy
from ..soc.jtag import JtagProbe
from .common import ATTACKER_MEDIA, VICTIM_MEDIA, fill_dcache, snapshot_l1d
from .common import manifested

#: A recovered region counts as "available" when its bits survive boot;
#: clobbered regions approach 50 % mismatch against the stored pattern.
_CLOBBER_THRESHOLD = 0.05


@dataclass
class AccessibilityRow:
    """Availability of one memory type on one device."""

    device: str
    memory: str
    available_fraction: float
    clobbered_by: str


def _l1_availability(seed: int) -> AccessibilityRow:
    """Fill a Pi 4 L1D, Volt Boot it, and measure surviving fraction."""
    board = raspberry_pi_4(seed=seed)
    board.boot(VICTIM_MEDIA)
    fill_dcache(board, 0, pattern=0x5C)
    reference = b"".join(snapshot_l1d(board.soc.core(0)))
    attack = VoltBootAttack(board, target="l1-caches",
                            boot_media=ATTACKER_MEDIA)
    result = attack.execute()
    assert result.cache_images is not None
    observed = result.cache_images.dcache(0)
    error = fractional_hamming_distance(reference, observed)
    return AccessibilityRow(
        device="BCM2711",
        memory="L1 caches",
        available_fraction=1.0 - 2.0 * error,
        clobbered_by="nothing (software-enabled; boot never touches them)",
    )


def _l2_availability(seed: int) -> AccessibilityRow:
    """Fill the shared L2 and measure what the VideoCore boot leaves."""
    board = raspberry_pi_4(seed=seed)
    board.boot(VICTIM_MEDIA)
    l2 = board.soc.l2
    assert l2 is not None
    pattern = bytes([0x5C]) * 64
    reference_parts = []
    for way, data_ram in enumerate(l2.data_rams):
        data_ram.write_bytes(0, pattern * (data_ram.n_bytes // 64))
        reference_parts.append(l2.raw_way_image(way))
    reference = b"".join(reference_parts)

    attack = VoltBootAttack(board, target="l2", boot_media=ATTACKER_MEDIA)
    attack.identify()
    attack.attach()
    attack.power_cycle()
    attack.reboot()  # the VideoCore clobbers the L2 right here
    observed = b"".join(
        l2.raw_way_image(way) for way in range(l2.geometry.ways)
    )
    error = fractional_hamming_distance(reference, observed)
    return AccessibilityRow(
        device="BCM2711",
        memory="L2 (VideoCore-shared)",
        available_fraction=max(0.0, 1.0 - 2.0 * error),
        clobbered_by="VideoCore boot firmware",
    )


def _iram_availability(seed: int) -> AccessibilityRow:
    """Fill the i.MX53 iRAM and measure the post-boot surviving bytes."""
    board = imx53_qsb(seed=seed)
    board.boot()
    jtag = JtagProbe(board.soc.memory_map)
    rng = from_entropy(seed)
    stored = rng.integers(0, 256, IMX53_IRAM_SIZE, dtype=np.uint8).tobytes()
    jtag.write_block(IMX53_IRAM_BASE, stored)
    attack = VoltBootAttack(board, target="iram")
    result = attack.execute()
    assert result.iram_image is not None
    # Byte-exact availability: the scratchpad regions come back as ROM
    # working data, everything else byte-identical.
    matches = sum(
        1 for a, b in zip(stored, result.iram_image) if a == b
    )
    return AccessibilityRow(
        device="i.MX535",
        memory="iRAM (128KiB)",
        available_fraction=matches / IMX53_IRAM_SIZE,
        clobbered_by="boot ROM scratchpad (pre-attacker phase)",
    )


@manifested("accessibility", device="rpi4+imx53")
def run(seed: int = DEFAULT_SEED) -> list[AccessibilityRow]:
    """Measure all three availability figures."""
    return [
        _l1_availability(seed),
        _l2_availability(seed + 1),
        _iram_availability(seed + 2),
    ]


def report(rows: list[AccessibilityRow]) -> AttackReport:
    """Render the §6.2 summary."""
    out = AttackReport(
        "Section 6.2: post-boot SRAM availability (paper: L1 100%, L2 0%, "
        "iRAM ~95%)"
    )
    for row in rows:
        out.add_row(
            device=row.device,
            memory=row.memory,
            available_percent=round(100.0 * row.available_fraction, 2),
            clobbered_by=row.clobbered_by,
        )
    return out
