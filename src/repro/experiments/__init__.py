"""Paper experiments: one module per table/figure of the evaluation.

Every module exposes ``run(...) -> AttackReport``-style entry points plus
the structured data behind them, so the benchmark harness can both print
the paper-shaped tables and assert on the result shapes.

| Module | Reproduces |
|---|---|
| :mod:`~repro.experiments.table1` | Table 1 — cold boot errors on BCM2711 d-cache vs temperature |
| :mod:`~repro.experiments.figure3` | Figure 3 — cold-booted d-cache way snapshot (random) |
| :mod:`~repro.experiments.table4` | Table 4 — d-cache extraction vs array size under Linux |
| :mod:`~repro.experiments.figure7` | Figure 7 — bare-metal i-cache snapshots (BCM2711/BCM2837) |
| :mod:`~repro.experiments.figure8` | Figure 8 — cache snapshots under an OS (0xAA app) |
| :mod:`~repro.experiments.figure9` | Figure 9 — i.MX53 iRAM bitmap recovery |
| :mod:`~repro.experiments.figure10` | Figure 10 — per-512-bit Hamming profile of the iRAM |
| :mod:`~repro.experiments.registers` | §7.2 — vector-register retention |
| :mod:`~repro.experiments.accessibility` | §6.2 — post-boot accessible memory fractions |
| :mod:`~repro.experiments.retention_sweep` | §3/§5 — retention vs temperature and off-time |
| :mod:`~repro.experiments.probe_sweep` | §6 — probe current/voltage adequacy ablation |
| :mod:`~repro.experiments.countermeasures` | §8 — defense survey |
| :mod:`~repro.experiments.platforms` | Tables 2 & 3 — platform/pad inventory |
| :mod:`~repro.experiments.glitch_campaign` | ``repro.glitch`` — voltage-glitch parameter search |
| :mod:`~repro.experiments.noisy_rig` | ``repro.resilience`` — naive vs resilient driver on a flaky bench |
"""

from . import (
    accessibility,
    countermeasures,
    dram_coldboot,
    figure3,
    figure7,
    figure8,
    figure9,
    figure10,
    glitch_campaign,
    microarch_leak,
    noisy_rig,
    platforms,
    policy_ablation,
    probe_sweep,
    registers,
    retention_sweep,
    standby_retention,
    table1,
    table4,
)

__all__ = [
    "table1",
    "figure3",
    "table4",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "registers",
    "accessibility",
    "retention_sweep",
    "probe_sweep",
    "countermeasures",
    "platforms",
    "dram_coldboot",
    "microarch_leak",
    "standby_retention",
    "policy_ablation",
    "glitch_campaign",
    "noisy_rig",
]
