"""Volt Boot — a simulated reproduction of "SRAM Has No Chill" (ASPLOS'22).

The library models the full victim stack — SRAM/DRAM cell physics, power
delivery networks, power-domain separation, caches/registers/iRAM, boot
flows, a small CPU, and a toy OS — and implements the Volt Boot attack
(plus the cold boot baseline) on top of it.

Quickstart::

    from repro import devices, VoltBootAttack
    from repro.soc import BootMedia
    from repro.cpu import Core, assemble, programs

    board = devices.raspberry_pi_4()
    board.boot(BootMedia("victim-os"))

    # Victim parks a secret pattern in its d-cache ...
    unit = board.soc.core(0)
    cpu = Core(unit, board.soc.memory_map)
    cpu.load_program(
        assemble(programs.byte_pattern_store(0x40000, 4096)).machine_code,
        0x8000,
    )
    cpu.run()

    # ... and the attacker rides VDD_CORE through a power cycle.
    attack = VoltBootAttack(board, target="l1-caches",
                            boot_media=BootMedia("attacker-usb"))
    result = attack.execute()
    print(b"\\xaa" * 64 in result.cache_images.dcache(0))  # True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from . import analysis, circuits, cpu, crypto, devices, glitch, osim, power, soc
from .core import (
    AttackReport,
    ColdBootAttack,
    ColdBootResult,
    ProbePlan,
    VoltBootAttack,
    VoltBootResult,
    plan_probe,
)
from .errors import (
    AccessViolation,
    AttackError,
    BootError,
    CircuitError,
    CpuFault,
    PowerError,
    ProbeError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "circuits",
    "cpu",
    "crypto",
    "devices",
    "glitch",
    "osim",
    "power",
    "soc",
    "VoltBootAttack",
    "VoltBootResult",
    "ColdBootAttack",
    "ColdBootResult",
    "ProbePlan",
    "plan_probe",
    "AttackReport",
    "ReproError",
    "CircuitError",
    "PowerError",
    "ProbeError",
    "AccessViolation",
    "CpuFault",
    "BootError",
    "AttackError",
    "__version__",
]
