"""The ``chaos-probe`` experiment: a small, fast, fault-friendly target.

A 12-unit shardable campaign whose physics is trivial (per-unit
Gaussian draws from plan-spawned RNG streams) but whose observability
surface is complete: each unit emits a counter, a gauge, and a
histogram under the ``chaos.*`` metric names, all of which are **part
of the manifest fingerprint** — so the chaos matrix's byte-identity
assertion covers results, headline numbers, and merged metrics alike.

Units run with ``retries=2``, giving every one-shot fault (kill, hang,
poison) a clean re-attempt to recover into — the recovered run must be
byte-identical to a run that never saw the fault.
"""

from __future__ import annotations

import numpy as np

from ..core.report import AttackReport
from ..exec import ShardPlan, execute, shard_unit
from ..obs import OBS
from ..rng import DEFAULT_SEED, generator
from ..experiments.common import manifested

#: Units in the probe plan — enough for several shards at --jobs 4.
N_UNITS = 12

#: Gaussian draws per unit.
N_SAMPLES = 256


@shard_unit
def probe_unit(index: int, rng: "np.random.Generator | None" = None) -> float:
    """One probe unit: a seeded draw reduced to a stable scalar."""
    if rng is None:
        rng = generator(DEFAULT_SEED, "chaos-probe", str(index))
    samples = rng.normal(0.0, 1.0, size=N_SAMPLES)
    value = float(np.abs(samples).sum())
    OBS.counter_inc("chaos.units")
    OBS.gauge_set("chaos.probe_sum", round(value, 9))
    OBS.histogram_record("chaos.probe_extreme", round(float(samples.max()), 9))
    return round(value, 9)


def shard_plan(seed: int) -> ShardPlan:
    """One unit per probe index, RNG streams spawned in unit order."""
    plan = ShardPlan.enumerate(
        probe_unit,
        [(index,) for index in range(N_UNITS)],
        labels=[f"probe[{index}]" for index in range(N_UNITS)],
    )
    return plan.with_spawned_streams(generator(seed))


def _headline(results: "list[float | None]") -> dict[str, float]:
    present = [value for value in results if value is not None]
    return {
        "units": len(results),
        "completed": len(present),
        "probe_total": round(sum(present), 6),
    }


@manifested("chaos-probe", headline=_headline)
def run(seed: int = DEFAULT_SEED, jobs: int = 1) -> "list[float | None]":
    """Run the probe campaign; quarantined units surface as ``None``."""
    return execute(shard_plan(seed), jobs=jobs, retries=2)


def report(results: "list[float | None]") -> AttackReport:
    """Per-unit probe values (the CLI's human-readable rendering)."""
    out = AttackReport("Chaos probe campaign (fault-injection target)")
    for index, value in enumerate(results):
        out.add_row(
            unit=f"probe[{index}]",
            value="quarantined" if value is None else round(value, 6),
        )
    out.add_note(
        "A deterministic 12-unit campaign used by `repro chaos` to "
        "assert that injected faults are survived byte-identically."
    )
    return out
