"""One faulted chaos run and its byte-identity invariant check.

:func:`run_chaos` runs an experiment twice: once clean (the
*reference* leg, serial and fault-free) and once with a
:class:`~repro.chaos.inject.ChaosInjector` installed under a
checkpointing + supervision policy.  The faulted leg is allowed to be
interrupted (simulated crashes bank the journal and raise
:class:`~repro.errors.CampaignInterrupted`) and is resumed — in the
same process but across a fresh observability epoch, with the
injector's marker files carrying the fault state — until it
completes.  The result records:

* whether the final run-manifest fingerprint is **byte-identical** to
  the reference leg's;
* every :data:`repro.errors.FAILURE_CLASSES` entry observed along the
  way (from ``exec.failures{...}`` / ``exec.journal_failures{...}``
  counter labels, runtime incidents, and interruption causes) — so
  callers can assert a fault was *classified*, not merely survived.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any

from ..errors import CampaignInterrupted, ChaosError, failure_class
from ..exec import runtime
from ..obs import OBS
from ..units import milliseconds
from .inject import ChaosInjector
from .spec import parse_faults

#: Bound on resume attempts before the run is declared non-convergent.
MAX_RESUMES = 8


@dataclass(frozen=True)
class ChaosRunResult:
    """Outcome of one faulted run (plus its reference comparison)."""

    experiment: str
    faults: str
    seed: int
    jobs: int
    reference_fingerprint: str
    final_fingerprint: str
    identical: bool
    interruptions: int
    failure_classes: tuple[str, ...]
    incident_kinds: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view for the CLI's ``--json`` mode."""
        return {
            "experiment": self.experiment,
            "faults": self.faults,
            "seed": self.seed,
            "jobs": self.jobs,
            "reference_fingerprint": self.reference_fingerprint,
            "final_fingerprint": self.final_fingerprint,
            "identical": self.identical,
            "interruptions": self.interruptions,
            "failure_classes": list(self.failure_classes),
            "incident_kinds": list(self.incident_kinds),
        }


def _experiment_module(name: str) -> Any:
    """Resolve an experiment name via the CLI registry (lazy import —
    the CLI imports this package)."""
    from ..cli import EXPERIMENTS

    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ChaosError(f"unknown chaos target {name!r}; choose from: {known}")
    return EXPERIMENTS[name]


def _observed_run(module: Any, seed: int, jobs: int) -> tuple[str, dict]:
    """Run one leg under a fresh observability epoch.

    Returns the manifest fingerprint and the final metrics snapshot.
    The caller owns policy/injector installation.  When the leg is
    interrupted, the partial metrics snapshot — which carries the
    failure classes observed before the simulated crash — is attached
    to the propagating exception as ``metrics_snapshot``.
    """
    OBS.reset()
    OBS.configure()
    try:
        try:
            module.run(seed=seed, jobs=jobs)
        except CampaignInterrupted as error:
            error.metrics_snapshot = OBS.metrics.snapshot()
            raise
        manifest = OBS.last_manifest
        if manifest is None:
            raise ChaosError(
                f"experiment {module.__name__!r} recorded no manifest"
            )
        return manifest.fingerprint(), OBS.metrics.snapshot()
    finally:
        OBS.reset()


def _classes_from_snapshot(snapshot: dict) -> set[str]:
    """Extract failure classes from labelled counter keys.

    The metrics registry renders labelled keys as
    ``name{failure_class=<class>}`` — the chaos harness's contract
    with the engine's typed-taxonomy accounting.
    """
    classes = set()
    for key in snapshot:
        if key.startswith(
            ("exec.failures{", "exec.journal_failures{")
        ) and "failure_class=" in key:
            value = key.split("failure_class=", 1)[1]
            classes.add(value.rstrip("}").split(",", 1)[0])
    return classes


def reference_fingerprint(experiment: str, seed: int) -> str:
    """The uninterrupted, fault-free, serial fingerprint of a target."""
    fingerprint, _ = _observed_run(_experiment_module(experiment), seed, 1)
    return fingerprint


def run_chaos(
    experiment: str,
    faults: str,
    seed: int,
    jobs: int,
    workdir: str,
    hang_timeout_s: float = 5.0,
    reference: str | None = None,
) -> ChaosRunResult:
    """Run ``experiment`` under injected ``faults``; check invariants.

    ``workdir`` holds the leg's checkpoint journals and the injector's
    marker files; callers choose it deterministically (the CLI derives
    it from the experiment name and seed — no ``mkdtemp`` entropy).
    Raises :class:`~repro.errors.ChaosError` if the faulted campaign
    does not converge within :data:`MAX_RESUMES` resumes.
    """
    module = _experiment_module(experiment)
    if reference is None:
        reference = reference_fingerprint(experiment, seed)
    injector = ChaosInjector(
        parse_faults(faults), os.path.join(workdir, "faults")
    )
    policy = runtime.SupervisionPolicy(
        hang_timeout_s=hang_timeout_s, poll_interval_s=milliseconds(20)
    )
    checkpoint_dir = os.path.join(workdir, "ckpt")
    interruptions = 0
    classes: set[str] = set()
    incident_kinds: set[str] = set()
    final = None
    for attempt in range(MAX_RESUMES + 1):
        try:
            with runtime.checkpointing(checkpoint_dir, resume=attempt > 0):
                with runtime.supervised(policy), runtime.injected(injector):
                    final, snapshot = _observed_run(module, seed, jobs)
            classes |= _classes_from_snapshot(snapshot)
            break
        except CampaignInterrupted as error:
            interruptions += 1
            classes |= _classes_from_snapshot(
                getattr(error, "metrics_snapshot", {})
            )
            if error.__cause__ is not None:
                classes.add(failure_class(error.__cause__))
        finally:
            for incident in runtime.incidents():
                incident_kinds.add(incident.kind)
                classes.add(incident.failure_class)
    if final is None:
        raise ChaosError(
            f"chaos run {experiment!r} with faults {faults!r} did not "
            f"converge within {MAX_RESUMES} resume(s)"
        )
    return ChaosRunResult(
        experiment=experiment,
        faults=faults,
        seed=seed,
        jobs=jobs,
        reference_fingerprint=reference,
        final_fingerprint=final,
        identical=final == reference,
        interruptions=interruptions,
        failure_classes=tuple(sorted(classes)),
        incident_kinds=tuple(sorted(incident_kinds)),
    )
