"""The chaos matrix: every fault class × ``--jobs``, with assertions.

For each fault class the supervised runtime claims to survive — kill,
hang, fsync failure, ENOSPC, torn journal tail, poison unit — the
matrix runs the probe campaign with that fault injected, at each jobs
level of the grid, and asserts the two chaos invariants per cell:

1. the run completes with a manifest fingerprint **byte-identical**
   to the uninterrupted reference (directly, or after ``--resume``);
2. the injected fault shows up in the typed failure taxonomy as its
   expected :data:`repro.errors.FAILURE_CLASSES` entry.

Serial (``jobs=1``) and pooled (``jobs=4``) cells exercise genuinely
different machinery — a ``kill`` serially is an engine-level simulated
crash with journal banking and resume, while on the pool it is a real
``SIGKILL`` recovered *in-run* by the supervisor — so the grid is not
redundant.  CI runs this as the ``chaos-matrix`` job.
"""

from __future__ import annotations

import os
import shutil
from dataclasses import dataclass
from typing import Any

from .runner import ChaosRunResult, reference_fingerprint, run_chaos

#: (name, fault spec, expected failure class) — one row per fault
#: class the acceptance gate names.  Targets sit mid-plan so every
#: fault lands after some progress is banked and before the end.
DEFAULT_MATRIX: tuple[tuple[str, str, str], ...] = (
    ("kill", "kill@unit=3", "crash"),
    ("hang", "hang@unit=4", "hang"),
    ("fsync", "fsync@record=2", "journal-io"),
    ("enospc", "enospc@record=2", "journal-enospc"),
    ("torn", "torn@record=1", "journal-torn"),
    ("poison", "poison@unit=5", "poison"),
)

#: Jobs levels every fault class is exercised at.
DEFAULT_JOBS_GRID: tuple[int, ...] = (1, 4)


@dataclass(frozen=True)
class MatrixCell:
    """One (fault class, jobs) cell and its assertion outcome."""

    name: str
    expected_class: str
    result: ChaosRunResult
    problems: tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.problems


@dataclass(frozen=True)
class MatrixReport:
    """Every cell of one matrix run."""

    experiment: str
    seed: int
    cells: tuple[MatrixCell, ...]

    @property
    def passed(self) -> bool:
        return all(cell.passed for cell in self.cells)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view for the CLI's ``--json`` mode."""
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "passed": self.passed,
            "cells": [
                {
                    "name": cell.name,
                    "expected_class": cell.expected_class,
                    "passed": cell.passed,
                    "problems": list(cell.problems),
                    **cell.result.to_dict(),
                }
                for cell in self.cells
            ],
        }


def run_matrix(
    workdir: str,
    seed: int,
    experiment: str = "chaos-probe",
    matrix: tuple[tuple[str, str, str], ...] = DEFAULT_MATRIX,
    jobs_grid: tuple[int, ...] = DEFAULT_JOBS_GRID,
    hang_timeout_s: float = 2.0,
) -> MatrixReport:
    """Run the full grid under ``workdir`` (one subdir per cell).

    Cell directories are wiped before each run — matrix state must
    come from the cell's own faults, not a previous invocation.  The
    reference fingerprint is computed once (it is jobs-independent by
    the engine's equivalence guarantee).
    """
    reference = reference_fingerprint(experiment, seed)
    cells = []
    for name, faults, expected in matrix:
        for jobs in jobs_grid:
            cell_dir = os.path.join(workdir, f"{name}-jobs{jobs}")
            if os.path.exists(cell_dir):
                shutil.rmtree(cell_dir)
            result = run_chaos(
                experiment,
                faults,
                seed=seed,
                jobs=jobs,
                workdir=cell_dir,
                hang_timeout_s=hang_timeout_s,
                reference=reference,
            )
            cells.append(
                MatrixCell(
                    name=name,
                    expected_class=expected,
                    result=result,
                    problems=_check_cell(result, expected),
                )
            )
    return MatrixReport(experiment=experiment, seed=seed, cells=tuple(cells))


def _check_cell(result: ChaosRunResult, expected: str) -> tuple[str, ...]:
    problems = []
    if not result.identical:
        problems.append(
            f"fingerprint {result.final_fingerprint[:12]} != reference "
            f"{result.reference_fingerprint[:12]}"
        )
    if expected not in result.failure_classes:
        observed = ", ".join(result.failure_classes) or "none"
        problems.append(
            f"failure class {expected!r} not recorded (observed: {observed})"
        )
    return tuple(problems)


def render_matrix(report: MatrixReport) -> str:
    """Human-readable grid: one line per cell."""
    lines = [
        f"chaos matrix: {report.experiment} seed={report.seed} — "
        f"{'PASS' if report.passed else 'FAIL'}"
    ]
    for cell in report.cells:
        status = "ok" if cell.passed else "FAIL"
        lines.append(
            f"  {cell.name:<8} jobs={cell.result.jobs}  {status:<4} "
            f"class={cell.expected_class:<14} "
            f"resumes={cell.result.interruptions} "
            f"identical={'yes' if cell.result.identical else 'NO'}"
        )
        for problem in cell.problems:
            lines.append(f"           - {problem}")
    return "\n".join(lines)
