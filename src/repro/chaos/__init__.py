"""Deterministic chaos-injection harness for the supervised runtime.

The robustness counterpart of :mod:`repro.exec`: seeded fault
injectors (worker kill, hang, journal I/O failures, torn writes, slow
shards) wired into the engine's runtime hooks
(:func:`repro.exec.runtime.run_unit` and the checkpoint journal's
write path), plus runners that assert the engine's **chaos
invariants**:

1. every injected fault lands in the typed failure taxonomy
   (:data:`repro.errors.FAILURE_CLASSES`), and
2. the faulted campaign either completes with a run-manifest
   fingerprint byte-identical to the uninterrupted reference run, or
   is interrupted and ``--resume``\\ s to one.

Faults are *one-shot by default* and their state lives in marker
files under a seeded work directory — never in process memory — so a
fault fires exactly once across process forks **and** across the
kill/resume process boundary, making every chaos run byte-reproducible
for a given ``(experiment, faults, seed)`` triple.

Entry points: ``repro chaos <experiment> --faults <spec>`` for one
faulted run, ``repro chaos --matrix`` for the full fault-class ×
``--jobs`` grid, and ``repro chaos --smoke`` for the subprocess
``kill -9``/resume end-to-end check (previously
``tools/chaos_smoke.py``).  See ``docs/robustness.md``.
"""

from __future__ import annotations

from ..errors import ChaosError
from .inject import (
    ChaosHang,
    ChaosInjector,
    ChaosKill,
    ChaosPoison,
    ChaosTornWrite,
    FaultingFile,
)
from .matrix import DEFAULT_MATRIX, MatrixReport, render_matrix, run_matrix
from .runner import ChaosRunResult, reference_fingerprint, run_chaos
from .smoke import SmokeResult, render_smoke, run_smoke
from .spec import FAULT_KINDS, FaultSpec, parse_faults

__all__ = [
    "ChaosError",
    "ChaosHang",
    "ChaosInjector",
    "ChaosKill",
    "ChaosPoison",
    "ChaosRunResult",
    "ChaosTornWrite",
    "DEFAULT_MATRIX",
    "FAULT_KINDS",
    "FaultSpec",
    "FaultingFile",
    "MatrixReport",
    "SmokeResult",
    "parse_faults",
    "reference_fingerprint",
    "render_matrix",
    "render_smoke",
    "run_chaos",
    "run_matrix",
    "run_smoke",
]
