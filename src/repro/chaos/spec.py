"""Fault-specification grammar for chaos runs.

A fault spec is a comma-separated list of faults, each of the form::

    <kind>@<target>=<index>[:<option>=<value>...]

for example ``kill@unit=3`` (SIGKILL the worker the moment it reaches
plan unit 3), ``torn@record=1:times=1`` (tear the second journal
*unit* record mid-write), or ``slow@unit=2:s=0.1`` (stall unit 2 for
0.1 simulated-slow seconds before running it).

Targets are **deterministic coordinates**, never wall-clock moments:
``unit=N`` matches the plan's unit index (fixed at plan-build time),
``record=N`` matches the N-th unit record appended to the checkpoint
journal.  Combined with the marker-file one-shot state in
:class:`~repro.chaos.inject.ChaosInjector`, this makes a chaos run a
pure function of ``(experiment, faults, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ChaosError

#: Every injectable fault kind and the target axis it fires on.
FAULT_KINDS: dict[str, str] = {
    "kill": "unit",     # SIGKILL the worker (simulated crash serially)
    "hang": "unit",     # stop making heartbeat progress
    "poison": "unit",   # raise a deterministic unit error
    "slow": "unit",     # stall before running the unit (no failure)
    "fsync": "record",  # journal fsync path raises OSError (EIO)
    "enospc": "record", # journal write raises OSError (ENOSPC)
    "torn": "record",   # journal record torn mid-write, then crash
}

#: Options each kind accepts beyond ``times``.
_KIND_OPTIONS: dict[str, tuple[str, ...]] = {
    "slow": ("s",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: what fires, where, and how often.

    ``times`` bounds how many firings the fault gets before its
    marker-file budget is exhausted (1 = one-shot, the default —
    exactly what a bounded-retry engine must recover from).
    ``param`` carries the kind-specific numeric option (``slow``'s
    stall seconds).
    """

    kind: str
    target: str
    index: int
    times: int = 1
    param: float | None = None

    def describe(self) -> str:
        """Canonical spec text for reports and marker-file names."""
        text = f"{self.kind}@{self.target}={self.index}"
        if self.times != 1:
            text += f":times={self.times}"
        if self.param is not None:
            text += f":s={self.param:g}"
        return text


def parse_faults(text: str) -> tuple[FaultSpec, ...]:
    """Parse a ``--faults`` spec string into :class:`FaultSpec`\\ s.

    Raises :class:`~repro.errors.ChaosError` naming the offending
    token on any grammar or vocabulary violation.
    """
    specs = []
    for token in filter(None, (t.strip() for t in text.split(","))):
        specs.append(_parse_one(token))
    if not specs:
        raise ChaosError(f"empty fault spec {text!r}")
    return tuple(specs)


def _parse_one(token: str) -> FaultSpec:
    kind, sep, rest = token.partition("@")
    if not sep or kind not in FAULT_KINDS:
        known = ", ".join(sorted(FAULT_KINDS))
        raise ChaosError(
            f"bad fault {token!r}: expected <kind>@<target>=<index> "
            f"with kind in {{{known}}}"
        )
    fields = rest.split(":")
    target, _, index_text = fields[0].partition("=")
    expected_target = FAULT_KINDS[kind]
    if target != expected_target:
        raise ChaosError(
            f"bad fault {token!r}: {kind} targets "
            f"{expected_target}=<index>, not {fields[0]!r}"
        )
    index = _int_field(token, index_text, "index")
    times = 1
    param: float | None = None
    for option in fields[1:]:
        key, _, value = option.partition("=")
        if key == "times":
            times = _int_field(token, value, "times")
        elif key in _KIND_OPTIONS.get(kind, ()):
            param = _float_field(token, value, key)
        else:
            raise ChaosError(
                f"bad fault {token!r}: unknown option {key!r} for {kind}"
            )
    if index < 0 or times < 1:
        raise ChaosError(
            f"bad fault {token!r}: index must be >= 0 and times >= 1"
        )
    return FaultSpec(
        kind=kind, target=target, index=index, times=times, param=param
    )


def _int_field(token: str, text: str, name: str) -> int:
    try:
        return int(text)
    except (TypeError, ValueError):
        raise ChaosError(
            f"bad fault {token!r}: {name} must be an integer, "
            f"got {text!r}"
        ) from None


def _float_field(token: str, text: str, name: str) -> float:
    try:
        return float(text)
    except (TypeError, ValueError):
        raise ChaosError(
            f"bad fault {token!r}: {name} must be a number, got {text!r}"
        ) from None
