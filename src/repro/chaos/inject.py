"""The seeded fault injector and its simulated-failure exceptions.

A :class:`ChaosInjector` plugs into the two runtime hooks the exec
layer exposes (:func:`repro.exec.runtime.run_unit` and the checkpoint
journal's write path) — the engine never imports this package.  Fault
*state* is marker files under a work directory, not process memory:

* a fault's firing budget is one marker file per allowed firing,
  claimed atomically with ``open(path, "x")`` — so a fault fires
  exactly ``times`` times even though the injector object is copied
  into every forked worker **and** re-created by a resumed process;
* the injector records the constructing (parent) process id, so a
  ``kill`` fault can distinguish a forked worker (really SIGKILL
  itself, exercising the supervisor's crash detection) from the
  serial parent (raise :class:`ChaosKill`, exercising the engine's
  interrupt/resume contract).

Hard-crash simulations (:class:`ChaosKill`, :class:`ChaosHang`,
:class:`ChaosTornWrite`) derive from
:class:`~repro.errors.SimulatedFailure` (a ``BaseException``) so they
sail through the engine's ``except Exception`` retry handlers exactly
like a real ``kill -9``; :class:`ChaosPoison` is an ordinary
:class:`~repro.errors.ReproError` so the bounded-retry/quarantine
machinery handles it like any deterministic unit failure.
"""

from __future__ import annotations

import errno as _errno
import os
import signal
import threading
from typing import Any

from ..errors import ChaosError, ReproError, SimulatedFailure
from ..obs import OBS
from .spec import FaultSpec

#: How long a "hang" fault stalls a worker.  Far beyond any sane
#: ``hang_timeout_s`` — the supervisor's SIGKILL always wins.
HANG_STALL_S = 3600.0


class ChaosKill(SimulatedFailure):
    """Simulated ``kill -9`` landing in serial (parent) context."""

    failure_class = "crash"


class ChaosHang(SimulatedFailure):
    """Simulated hang landing in serial (parent) context.

    A real parent cannot supervise itself out of a hang, so serially
    the fault degrades to an immediate simulated crash-with-class —
    the checkpointed engine banks the journal and the run resumes.
    """

    failure_class = "hang"


class ChaosTornWrite(SimulatedFailure):
    """A journal record was torn mid-write (simulated power loss)."""

    failure_class = "journal-torn"


class ChaosPoison(ReproError):
    """A deterministically failing work unit (ordinary exception)."""


class FaultingFile:
    """File proxy whose fsync path raises ``OSError`` (EIO).

    Wraps the journal's append handle so the write and flush succeed
    but ``fileno()`` — called only by the journal's ``os.fsync`` step
    — raises, modelling a disk that accepts data and then fails to
    make it durable.
    """

    def __init__(self, handle: Any) -> None:
        self._handle = handle

    def write(self, data: bytes) -> int:
        return self._handle.write(data)

    def flush(self) -> None:
        self._handle.flush()

    def fileno(self) -> int:
        raise OSError(_errno.EIO, "chaos: simulated fsync failure")

    def truncate(self, size: int) -> int:
        return self._handle.truncate(size)

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._handle.seek(offset, whence)

    def close(self) -> None:
        self._handle.close()


class ChaosInjector:
    """Fires parsed :class:`~repro.chaos.spec.FaultSpec`\\ s at the
    runtime hook points, with marker-file one-shot state.

    Duck-typed to the :mod:`repro.exec.runtime` injector protocol:
    ``on_unit(unit)`` before every work-unit execution and
    ``on_journal_write(journal, line)`` before every journal line.
    An injector with no faults is a cheap no-op — the
    ``quick.chaos-overhead`` benchmark holds it on the dispatch path.
    """

    def __init__(self, faults: tuple[FaultSpec, ...], state_dir: str) -> None:
        self.faults = tuple(faults)
        self.state_dir = state_dir
        self.parent_pid = os.getpid()
        if self.faults:
            os.makedirs(state_dir, exist_ok=True)

    # -- hook points -----------------------------------------------------

    def on_unit(self, unit: Any) -> None:
        """Runtime hook: fires unit-targeted faults for this index."""
        for fault in self.faults:
            if fault.target != "unit" or fault.index != unit.index:
                continue
            if self._claim(fault):
                self._fire_unit(fault, unit)

    def on_journal_write(self, journal: Any, line: bytes) -> None:
        """Journal hook: fires record-targeted faults for this append.

        The record ordinal is the journal's count of already-written
        unit records; the header write (nothing written yet) never
        matches, so ``record=0`` is the first *unit* record.
        """
        if journal.bytes_written == 0:
            return
        for fault in self.faults:
            if fault.target != "record" or fault.index != journal.units_written:
                continue
            if self._claim(fault):
                self._fire_record(fault, journal, line)

    # -- firing ----------------------------------------------------------

    def _fire_unit(self, fault: FaultSpec, unit: Any) -> None:
        self._note(fault)
        if fault.kind == "slow":
            threading.Event().wait(fault.param or 0.05)
            return
        if fault.kind == "poison":
            raise ChaosPoison(
                f"chaos: poisoned unit {unit.index} ({unit.describe()})"
            )
        in_worker = os.getpid() != self.parent_pid
        if fault.kind == "kill":
            if in_worker:
                os.kill(os.getpid(), signal.SIGKILL)
            raise ChaosKill(f"chaos: killed at unit {unit.index}")
        if fault.kind == "hang":
            if in_worker:
                # Stall without heartbeat progress until the
                # supervisor's hang detector SIGKILLs this process.
                threading.Event().wait(HANG_STALL_S)
                os.kill(os.getpid(), signal.SIGKILL)
            raise ChaosHang(f"chaos: hung at unit {unit.index}")
        raise ChaosError(f"unit fault {fault.kind!r} has no firing rule")

    def _fire_record(self, fault: FaultSpec, journal: Any, line: bytes) -> None:
        self._note(fault)
        if fault.kind == "enospc":
            raise OSError(_errno.ENOSPC, "chaos: no space left on device")
        if fault.kind == "fsync":
            # Swap in the proxy; the journal's write/flush succeed and
            # its fsync step raises.
            journal._handle = FaultingFile(journal._handle)
            return
        if fault.kind == "torn":
            # Simulated power loss mid-append: a prefix of the record
            # reaches the disk, then the "process" dies.  The resume
            # path must discard exactly this torn tail.
            journal._handle.write(line[: max(1, len(line) // 2)])
            journal._handle.flush()
            raise ChaosTornWrite(
                f"chaos: journal record {journal.units_written} torn "
                f"mid-write"
            )
        raise ChaosError(f"record fault {fault.kind!r} has no firing rule")

    # -- marker-file one-shot state --------------------------------------

    def _claim(self, fault: FaultSpec) -> bool:
        """Atomically claim one of the fault's ``times`` firings.

        ``open(path, "x")`` either creates the marker (the claim) or
        fails because a previous firing — possibly in another process,
        possibly before a crash/resume boundary — already owns it.
        """
        for occurrence in range(fault.times):
            marker = os.path.join(
                self.state_dir,
                f"{fault.kind}-{fault.target}{fault.index}-{occurrence}",
            )
            try:
                with open(marker, "x"):
                    return True
            except FileExistsError:
                continue
        return False

    def _note(self, fault: FaultSpec) -> None:
        if OBS.enabled:
            OBS.counter_inc("exec.chaos_faults")
            OBS.event("exec.chaos-fault", fault=fault.describe())
