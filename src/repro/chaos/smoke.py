"""Chaos smoke: kill a real CLI campaign, resume it, compare runs.

The crash-safety guarantee exercised end to end through the actual
``python -m repro`` process boundary — the one layer the in-process
chaos matrix cannot reach:

1. run a reference campaign uninterrupted (``--json``) and record its
   run-manifest fingerprint;
2. start the same campaign with ``--checkpoint``, and ``kill -9`` the
   process the moment its journal holds at least one completed work
   unit — no signal handler, no atexit, no cleanup;
3. rerun with ``--resume`` and assert that (a) at least one journalled
   unit was actually reused and (b) the final manifest fingerprint is
   **identical** to the uninterrupted reference.

The work directory is the *seeded* convention
``<base>/smoke-<experiment>-seed<seed>`` — no ``mkdtemp`` wall-clock
entropy — so two smoke runs with the same arguments touch the same
paths and a crashed harness leaves evidence in a predictable place.
``tools/chaos_smoke.py`` is now a thin shim over :func:`main` for the
existing CI job.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..errors import ChaosError
from ..obs import manifest_fingerprint
from ..obs.timing import wall_clock
from ..units import milliseconds

#: Poll cadence while waiting for the victim to journal a unit.
_POLL_S = milliseconds(20)


@dataclass(frozen=True)
class SmokeResult:
    """Outcome of one kill/resume smoke round."""

    experiment: str
    seed: int
    jobs: int
    banked_units: int
    resumed_units: int
    reference_fingerprint: str
    resumed_fingerprint: str

    @property
    def problems(self) -> tuple[str, ...]:
        out = []
        if not self.resumed_units:
            out.append("resume re-ran everything (exec.resumed_units == 0)")
        if self.resumed_fingerprint != self.reference_fingerprint:
            out.append(
                f"resumed manifest {self.resumed_fingerprint[:16]}... "
                f"differs from uninterrupted reference "
                f"{self.reference_fingerprint[:16]}..."
            )
        return tuple(out)

    @property
    def passed(self) -> bool:
        return not self.problems

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly view for the CLI's ``--json`` mode."""
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "jobs": self.jobs,
            "banked_units": self.banked_units,
            "resumed_units": self.resumed_units,
            "reference_fingerprint": self.reference_fingerprint,
            "resumed_fingerprint": self.resumed_fingerprint,
            "passed": self.passed,
            "problems": list(self.problems),
        }


def smoke_workdir(base: str, experiment: str, seed: int) -> Path:
    """The seeded (entropy-free) work directory for one smoke round."""
    return Path(base) / f"smoke-{experiment}-seed{seed}"


def _cli(args: list[str]) -> list[str]:
    return [sys.executable, "-m", "repro", *args]


def _env() -> dict[str, str]:
    """Subprocess environment with this ``repro`` package importable."""
    src = str(Path(__file__).resolve().parent.parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_json(args: list[str]) -> dict:
    """Run the CLI, parse its ``--json`` document, return it."""
    proc = subprocess.run(
        _cli(args), env=_env(), capture_output=True, text=True
    )
    if proc.returncode != 0:
        raise ChaosError(
            f"smoke harness: `repro {' '.join(args)}` exited "
            f"{proc.returncode}: {proc.stderr.strip()[:500]}"
        )
    doc = json.loads(proc.stdout)
    if doc.get("manifest") is None:
        raise ChaosError("smoke harness: CLI emitted no run manifest")
    return doc


def _kill_mid_campaign(
    args: list[str], journal: Path, timeout_s: float
) -> int:
    """Start the campaign; SIGKILL once the journal has >= 1 unit line.

    Returns the number of units banked before the kill.
    """
    victim = subprocess.Popen(
        _cli(args), env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = wall_clock() + timeout_s
        banked_enough = False
        while wall_clock() < deadline:
            if victim.poll() is not None:
                raise ChaosError(
                    "smoke harness: victim finished before the kill "
                    "landed — campaign too fast for this smoke"
                )
            # header line + at least one whole unit line
            if journal.exists() and journal.read_bytes().count(b"\n") >= 2:
                banked_enough = True
                break
            threading.Event().wait(_POLL_S)
        if not banked_enough:
            raise ChaosError(
                "smoke harness: victim never journalled a unit within "
                f"{timeout_s:g}s"
            )
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
    finally:
        if victim.poll() is None:
            victim.kill()
    return journal.read_bytes().count(b"\n") - 1


def run_smoke(
    experiment: str = "noisy-rig",
    seed: int = 2022,
    jobs: int = 1,
    timeout_s: float = 300.0,
    workdir_base: str = "chaos-runs",
    keep: bool = False,
) -> SmokeResult:
    """One full kill/resume round through the real CLI.

    Raises :class:`~repro.errors.ChaosError` on harness failures (the
    victim never journalled, the CLI misbehaved); invariant violations
    land in the returned result's ``problems`` instead.
    """
    workdir = smoke_workdir(workdir_base, experiment, seed)
    if workdir.exists():
        shutil.rmtree(workdir)
    ckpt = workdir / "ckpt"
    journal = ckpt / "journal-000.jsonl"
    base = [
        "experiment", experiment,
        "--seed", str(seed), "--jobs", str(jobs),
    ]
    try:
        reference = _run_json([*base, "--json"])
        banked = _kill_mid_campaign(
            [*base, "--checkpoint", str(ckpt)], journal, timeout_s
        )
        resumed = _run_json(
            [*base, "--checkpoint", str(ckpt), "--resume", "--json",
             "--metrics"]
        )
        return SmokeResult(
            experiment=experiment,
            seed=seed,
            jobs=jobs,
            banked_units=banked,
            resumed_units=int(
                resumed.get("metrics", {}).get("exec.resumed_units", 0)
            ),
            reference_fingerprint=manifest_fingerprint(
                reference["manifest"]
            ),
            resumed_fingerprint=manifest_fingerprint(resumed["manifest"]),
        )
    finally:
        if not keep:
            shutil.rmtree(workdir, ignore_errors=True)


def render_smoke(result: SmokeResult) -> str:
    """One-paragraph human rendering of a smoke round."""
    if result.passed:
        return (
            f"chaos smoke OK: {result.experiment} seed={result.seed} "
            f"jobs={result.jobs} — killed -9 with "
            f"{result.banked_units} unit(s) banked, resumed "
            f"{result.resumed_units} of them; manifest fingerprint "
            f"{result.reference_fingerprint[:16]}... matches the "
            f"uninterrupted reference"
        )
    lines = [
        f"chaos smoke FAIL: {result.experiment} seed={result.seed} "
        f"jobs={result.jobs}"
    ]
    lines += [f"  - {problem}" for problem in result.problems]
    return "\n".join(lines)


def main(argv: "list[str] | None" = None) -> int:
    """Standalone entry point (kept for the ``tools/`` CI shim)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--experiment", default="noisy-rig")
    parser.add_argument("--seed", type=int, default=2022)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds to wait for the victim to journal its first unit",
    )
    parser.add_argument(
        "--workdir", default="chaos-runs",
        help="base directory for the seeded smoke workdir",
    )
    parser.add_argument(
        "--keep", action="store_true",
        help="keep the workdir (journals, fault markers) after the run",
    )
    args = parser.parse_args(argv)
    try:
        result = run_smoke(
            experiment=args.experiment,
            seed=args.seed,
            jobs=args.jobs,
            timeout_s=args.timeout,
            workdir_base=args.workdir,
            keep=args.keep,
        )
    except ChaosError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_smoke(result), file=sys.stdout if result.passed else sys.stderr)
    return 0 if result.passed else 1
