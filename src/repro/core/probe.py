"""Attack step 1: identify the target domain and plan the probe.

BGA packaging hides the SoC's supply balls, but every supply net
surfaces at decoupling-capacitor leads and test pads near the PMIC
(paper §6.1 step 1, Figure 4).  The planner walks the board's PDN graph
from the target memory kind to a probe-able pad and sizes the bench
supply: the set-point is the *measured* pad voltage, and the current
limit must cover the disconnect surge of the domain, or cells whose DRV
exceeds the drooped rail will be lost.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..circuits.pdn import TestPad
from ..circuits.supply import BenchSupply
from ..errors import AttackError
from ..soc.board import Board

#: Safety factor applied over the surge peak when sizing the supply.
SURGE_MARGIN = 1.5


@dataclass(frozen=True)
class ProbePlan:
    """Everything needed to land the probe for one target memory."""

    target: str
    domain_name: str
    net_name: str
    pad: TestPad
    set_voltage_v: float
    required_current_a: float

    def recommended_supply(
        self,
        current_limit_a: float | None = None,
        set_voltage_v: float | None = None,
        contact_resistance_ohm: float = 0.0,
    ) -> BenchSupply:
        """Build a bench supply matching the plan.

        ``current_limit_a`` overrides the sized limit — the probe-sweep
        experiment uses this to study under-provisioned supplies.
        ``set_voltage_v`` overrides the planned set-point (the resilient
        driver's adaptive re-search, and imperfect supplies via
        :class:`~repro.circuits.supply.SupplyNoise`).
        ``contact_resistance_ohm`` adds one landing's realised probe
        contact resistance (:class:`~repro.circuits.pdn.ContactNoise`)
        in series with the supply's own source resistance.
        """
        limit = (
            self.required_current_a
            if current_limit_a is None
            else current_limit_a
        )
        supply = BenchSupply(
            voltage_v=(
                self.set_voltage_v
                if set_voltage_v is None
                else set_voltage_v
            ),
            current_limit_a=limit,
        )
        if contact_resistance_ohm < 0.0:
            raise AttackError("contact resistance cannot be negative")
        if contact_resistance_ohm:
            supply = dataclasses.replace(
                supply,
                source_resistance_ohm=(
                    supply.source_resistance_ohm + contact_resistance_ohm
                ),
            )
        return supply

    def describe(self) -> str:
        """Human-readable summary for attack transcripts."""
        return (
            f"target={self.target} domain={self.domain_name} "
            f"pad={self.pad.name} set={self.set_voltage_v:.3f}V "
            f"supply>={self.required_current_a:.2f}A"
        )


def plan_probe(board: Board, target: str) -> ProbePlan:
    """Plan a probe landing for ``target`` on ``board``.

    ``target`` is a domain-member keyword: ``"l1-caches"``,
    ``"registers"``, ``"iram"``, ``"l2"``, or ``"dram"``.  Raises
    :class:`~repro.errors.AttackError` when the feeding net exposes no
    pad (nothing to probe without depackaging the SoC).
    """
    domain_name = board.soc.domain_for_target(target)
    net = board.pdn.net_for_domain(domain_name)
    if not net.pads:
        raise AttackError(
            f"net {net.name!r} feeding {target!r} exposes no test pad; "
            f"the attack needs a reachable probe point"
        )
    pad = net.pads[0]
    measured = board.measure_pad_voltage(pad.name)
    if measured <= 0.0:
        # Unpowered board: fall back to the design voltage off the
        # schematic (the attacker would power it once to meter the pad).
        measured = board.pdn.nominal_voltage(net.name)
    surge = board.soc.domain_spec(domain_name).surge
    return ProbePlan(
        target=target,
        domain_name=domain_name,
        net_name=net.name,
        pad=pad,
        set_voltage_v=measured,
        required_current_a=surge.peak_current_a * SURGE_MARGIN,
    )
