"""The paper's primary contribution: the Volt Boot attack toolkit.

The attack pipeline follows §6.1 exactly:

1. **Identify** the power domain feeding the target memory and a
   probe-able pad on its net (:mod:`~repro.core.probe`);
2. **Attach** a bench-supply probe at the pad's measured voltage;
3. **Power cycle** the board — the probed domain rides through — and
   boot attacker-controlled media (or the internal ROM);
4. **Extract** the retained SRAM through CP15 RAMINDEX or JTAG
   (:mod:`~repro.core.extraction`) and analyse it.

:class:`~repro.core.voltboot.VoltBootAttack` drives the whole pipeline;
:class:`~repro.core.coldboot.ColdBootAttack` is the temperature-based
baseline the paper shows to be ineffective on SRAM (§3).
"""

from .coldboot import ColdBootAttack, ColdBootResult
from .extraction import (
    extract_iram,
    extract_l1_images,
    extract_vector_registers,
    CacheImages,
)
from .probe import ProbePlan, plan_probe
from .report import AttackReport
from .voltboot import VoltBootAttack, VoltBootResult

__all__ = [
    "VoltBootAttack",
    "VoltBootResult",
    "ColdBootAttack",
    "ColdBootResult",
    "ProbePlan",
    "plan_probe",
    "CacheImages",
    "extract_l1_images",
    "extract_iram",
    "extract_vector_registers",
    "AttackReport",
]
