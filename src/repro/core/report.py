"""Attack reports: accuracy accounting against ground truth.

Every experiment reduces an attack run to the paper's metrics —
retention accuracy, recovered-element counts, bit-error percentages —
and renders them as aligned text tables for terminal output and the
EXPERIMENTS.md log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.hamming import bit_error_percent, fractional_hamming_distance
from ..errors import ReproError


@dataclass
class AttackReport:
    """A labelled collection of metric rows for one experiment."""

    title: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **fields: object) -> None:
        """Append one result row (keyword arguments become columns)."""
        if not fields:
            raise ReproError("a report row needs at least one column")
        self.rows.append(dict(fields))

    def add_note(self, note: str) -> None:
        """Attach a free-text observation to the report."""
        self.notes.append(note)

    def to_dict(self) -> dict[str, object]:
        """The report as a JSON-friendly dict (``--json`` CLI mode)."""
        return {
            "title": self.title,
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def column_names(self) -> list[str]:
        """Union of all row columns, in first-seen order."""
        names: list[str] = []
        for row in self.rows:
            for name in row:
                if name not in names:
                    names.append(name)
        return names

    @staticmethod
    def _render_cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    def render(self) -> str:
        """Render the report as an aligned text table."""
        lines = [self.title, "=" * len(self.title)]
        if self.rows:
            names = self.column_names()
            cells = [
                [self._render_cell(row.get(name, "")) for name in names]
                for row in self.rows
            ]
            widths = [
                max(len(name), *(len(row[i]) for row in cells))
                for i, name in enumerate(names)
            ]
            header = "  ".join(n.ljust(w) for n, w in zip(names, widths))
            lines.append(header)
            lines.append("-" * len(header))
            for row in cells:
                lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def retention_accuracy_percent(reference: bytes, observed: bytes) -> float:
    """Data retention accuracy as the paper quotes it (100 % = perfect)."""
    return 100.0 - bit_error_percent(reference, observed)


def matches_exactly(reference: bytes, observed: bytes) -> bool:
    """Whether two images are bit-identical (the 100 % claim)."""
    return fractional_hamming_distance(reference, observed) <= 0.0
