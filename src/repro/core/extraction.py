"""Attack step 3/4: post-reboot data extraction.

The attacker's post-reboot software must (a) avoid touching the retained
SRAM — so it never enables the caches — and (b) move the raw contents to
somewhere durable (paper §6.1 step 3 tasks A/B).  Extraction paths:

* **CP15 RAMINDEX** for L1 caches: the well-barriered
  ``SYS``/``DSB``/``ISB``/data-register sequence at EL3
  (:meth:`~repro.soc.cp15.Cp15Interface.dump_way`);
* **direct register reads** for the vector file — the extraction stub
  stores each ``v`` register before any code clobbers it;
* **JTAG** block reads for memory-mapped iRAM on ROM-booting parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AttackError
from ..soc.board import Board
from ..soc.context import ExecutionContext, EL2_NS, EL3_SECURE
from ..soc.cp15 import RamId
from ..soc.jtag import JtagProbe


def attacker_context(board: Board) -> ExecutionContext:
    """The execution context attacker-booted code obtains on this board.

    Without enforced secure boot the attacker's image runs at EL3 in the
    secure world; a TrustZone-locked device pins third-party code to the
    non-secure world.
    """
    if board.soc.config.trustzone_enforced:
        return EL2_NS
    return EL3_SECURE


@dataclass
class CacheImages:
    """Raw L1 way images for every core of a board."""

    l1d: dict[int, list[bytes]] = field(default_factory=dict)
    l1i: dict[int, list[bytes]] = field(default_factory=dict)

    def dcache(self, core: int) -> bytes:
        """All d-cache ways of one core, concatenated."""
        return b"".join(self.l1d[core])

    def icache(self, core: int) -> bytes:
        """All i-cache ways of one core, concatenated."""
        return b"".join(self.l1i[core])

    def everything(self) -> bytes:
        """Every dumped byte (key-search convenience)."""
        blobs = []
        for core in sorted(self.l1d):
            blobs.extend(self.l1d[core])
        for core in sorted(self.l1i):
            blobs.extend(self.l1i[core])
        return b"".join(blobs)


def extract_l1_images(
    board: Board,
    ctx: ExecutionContext | None = None,
    cores: list[int] | None = None,
    skip_secure: bool = False,
) -> CacheImages:
    """Dump every L1 way of the selected cores over CP15 RAMINDEX.

    The board must be booted (the extraction program has to run); the
    caches themselves stay disabled, so the dump does not disturb them.
    """
    if not board.booted:
        raise AttackError("extraction software needs a booted system")
    ctx = ctx or attacker_context(board)
    cores = list(range(len(board.soc.cores))) if cores is None else cores
    images = CacheImages()
    for core_index in cores:
        unit = board.soc.core(core_index)
        if unit.l1d.enabled or unit.l1i.enabled:
            raise AttackError(
                f"core {core_index}: caches are enabled; the extraction "
                f"stub must keep them off to avoid self-contamination"
            )
        images.l1d[core_index] = [
            unit.cp15.dump_way(ctx, RamId.L1D_DATA, way, skip_secure=skip_secure)
            for way in range(unit.l1d.geometry.ways)
        ]
        images.l1i[core_index] = [
            unit.cp15.dump_way(ctx, RamId.L1I_DATA, way, skip_secure=skip_secure)
            for way in range(unit.l1i.geometry.ways)
        ]
    return images


def extract_vector_registers(board: Board, core: int) -> list[bytes]:
    """Dump the 128-bit vector file of one core.

    Models the paper's register-extraction stub: straight-line code that
    stores ``v0..v31`` to DRAM before any FP/SIMD-using code runs.  The
    GPRs are useless post-boot (boot code burns them); the vector file is
    untouched by the boot flow.
    """
    if not board.booted:
        raise AttackError("extraction software needs a booted system")
    unit = board.soc.core(core)
    return [unit.vreg.read_bytes(i) for i in range(unit.vreg.count)]


def extract_iram(board: Board, jtag: JtagProbe | None = None) -> bytes:
    """Dump the whole iRAM over JTAG (the i.MX53 path, §7.3)."""
    iram = board.soc.iram
    if iram is None:
        raise AttackError(f"{board.name} has no iRAM to extract")
    probe = jtag or JtagProbe(board.soc.memory_map,
                              enabled=board.soc.config.jtag_enabled)
    return probe.read_block(iram.base_addr, iram.size_bytes)
