"""The Volt Boot attack pipeline (paper §5–§6).

:class:`VoltBootAttack` drives a victim :class:`~repro.soc.board.Board`
through the four steps of §6.1: plan the probe against the PDN, attach a
bench supply at the measured pad voltage, cut the main input while the
probed domain rides through, reboot from attacker media (or internal
ROM), and extract the retained SRAM.

The class is deliberately stateful and explicit — each step can be run
and inspected on its own, which is how the experiments exercise failure
modes (weak probes, wrong voltages, countermeasures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.supply import BenchSupply
from ..errors import AttackError
from ..soc.board import Board
from ..soc.bootrom import BootMedia
from ..soc.jtag import JtagProbe
from .extraction import (
    CacheImages,
    attacker_context,
    extract_iram,
    extract_l1_images,
    extract_vector_registers,
)
from .probe import ProbePlan, plan_probe

#: Default time the board sits dark between unplug and re-plug.  Volt
#: Boot is insensitive to this (that is the point); the default matches
#: a deliberate human-speed power cycle.
DEFAULT_OFF_TIME_S = 10.0


@dataclass
class VoltBootResult:
    """Everything one attack run produced."""

    plan: ProbePlan
    cells_lost_in_surge: int
    off_time_s: float
    cache_images: CacheImages | None = None
    vector_registers: dict[int, list[bytes]] = field(default_factory=dict)
    iram_image: bytes | None = None

    @property
    def surge_clean(self) -> bool:
        """True when the probe rode the disconnect surge without losses."""
        return self.cells_lost_in_surge == 0


class VoltBootAttack:
    """One attacker, one victim board, one target memory kind."""

    def __init__(
        self,
        board: Board,
        target: str = "l1-caches",
        supply: BenchSupply | None = None,
        boot_media: BootMedia | None = None,
        off_time_s: float = DEFAULT_OFF_TIME_S,
    ) -> None:
        self.board = board
        self.target = target
        self.boot_media = boot_media
        self.off_time_s = off_time_s
        self.plan: ProbePlan | None = None
        self._supply_override = supply
        self._attached = False

    # ------------------------------------------------------------------
    # Individual steps (paper §6.1)
    # ------------------------------------------------------------------

    def identify(self) -> ProbePlan:
        """Step 1: locate the domain, pad, and required supply."""
        self.plan = plan_probe(self.board, self.target)
        return self.plan

    def attach(self) -> None:
        """Step 2: land the probe at the measured pad voltage."""
        if self.plan is None:
            self.identify()
        assert self.plan is not None
        supply = self._supply_override or self.plan.recommended_supply()
        self.board.attach_probe(self.plan.pad.name, supply)
        self._attached = True

    def power_cycle(self) -> int:
        """Step 3a: cut main power, sit dark, re-plug.

        Returns the number of cells lost to the disconnect surge in the
        held domain (0 for an adequately-sized supply).
        """
        if not self._attached:
            raise AttackError("attach the probe before power cycling")
        losses = self.board.unplug()
        self.board.wait(self.off_time_s)
        self.board.plug_in()
        assert self.plan is not None
        return losses.get(self.plan.domain_name, 0)

    def reboot(self) -> None:
        """Step 3b: boot the attacker's media (or the internal ROM)."""
        self.board.boot(self.boot_media)

    def extract(self) -> VoltBootResult:
        """Step 4: dump the target memory through the debug interfaces."""
        if self.plan is None:
            raise AttackError("run the pipeline before extracting")
        result = VoltBootResult(
            plan=self.plan,
            cells_lost_in_surge=self._surge_losses,
            off_time_s=self.off_time_s,
        )
        ctx = attacker_context(self.board)
        if self.target in ("l1-caches", "registers"):
            result.cache_images = extract_l1_images(
                self.board,
                ctx,
                skip_secure=self.board.soc.config.trustzone_enforced,
            )
            for core_index in range(len(self.board.soc.cores)):
                result.vector_registers[core_index] = extract_vector_registers(
                    self.board, core_index
                )
        elif self.target == "iram":
            jtag = JtagProbe(
                self.board.soc.memory_map,
                enabled=self.board.soc.config.jtag_enabled,
            )
            result.iram_image = extract_iram(self.board, jtag)
        else:
            raise AttackError(f"no extraction path for target {self.target!r}")
        return result

    # ------------------------------------------------------------------
    # The full pipeline
    # ------------------------------------------------------------------

    _surge_losses: int = 0

    def execute(self) -> VoltBootResult:
        """Run all four steps and return the extraction result."""
        self.identify()
        self.attach()
        self._surge_losses = self.power_cycle()
        self.reboot()
        return self.extract()

    def cleanup(self) -> None:
        """Lift the probe (ends the artificial retention)."""
        if self._attached and self.plan is not None:
            self.board.detach_probe(self.plan.pad.name)
            self._attached = False
