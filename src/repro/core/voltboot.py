"""The Volt Boot attack pipeline (paper §5–§6).

:class:`VoltBootAttack` drives a victim :class:`~repro.soc.board.Board`
through the four steps of §6.1: plan the probe against the PDN, attach a
bench supply at the measured pad voltage, cut the main input while the
probed domain rides through, reboot from attacker media (or internal
ROM), and extract the retained SRAM.

The class is deliberately stateful and explicit — each step can be run
and inspected on its own, which is how the experiments exercise failure
modes (weak probes, wrong voltages, countermeasures).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..circuits.supply import BenchSupply
from ..errors import AttackError
from ..obs import OBS, RunManifest, SectionTimer
from ..soc.board import Board
from ..soc.bootrom import BootMedia
from ..soc.jtag import JtagProbe
from .extraction import (
    CacheImages,
    attacker_context,
    extract_iram,
    extract_l1_images,
    extract_vector_registers,
)
from .probe import ProbePlan, plan_probe

#: Default time the board sits dark between unplug and re-plug.  Volt
#: Boot is insensitive to this (that is the point); the default matches
#: a deliberate human-speed power cycle.
DEFAULT_OFF_TIME_S = 10.0


@dataclass
class VoltBootResult:
    """Everything one attack run produced."""

    plan: ProbePlan
    cells_lost_in_surge: int
    off_time_s: float
    cache_images: CacheImages | None = None
    vector_registers: dict[int, list[bytes]] = field(default_factory=dict)
    iram_image: bytes | None = None

    @property
    def surge_clean(self) -> bool:
        """True when the probe rode the disconnect surge without losses."""
        return self.cells_lost_in_surge == 0


class VoltBootAttack:
    """One attacker, one victim board, one target memory kind."""

    def __init__(
        self,
        board: Board,
        target: str = "l1-caches",
        supply: BenchSupply | None = None,
        boot_media: BootMedia | None = None,
        off_time_s: float = DEFAULT_OFF_TIME_S,
    ) -> None:
        self.board = board
        self.target = target
        self.boot_media = boot_media
        self.off_time_s = off_time_s
        self.plan: ProbePlan | None = None
        self._supply_override = supply
        self._attached = False

    # ------------------------------------------------------------------
    # Individual steps (paper §6.1)
    # ------------------------------------------------------------------

    def identify(self) -> ProbePlan:
        """Step 1: locate the domain, pad, and required supply."""
        with OBS.span("attack.identify", target=self.target) as span:
            self.plan = plan_probe(self.board, self.target)
            span.set_attributes(
                domain=self.plan.domain_name,
                pad=self.plan.pad.name,
                set_voltage_v=self.plan.set_voltage_v,
                required_current_a=self.plan.required_current_a,
            )
        return self.plan

    def attach(self) -> None:
        """Step 2: land the probe at the measured pad voltage."""
        if self.plan is None:
            self.identify()
        assert self.plan is not None
        supply = self._supply_override or self.plan.recommended_supply()
        with OBS.span(
            "attack.attach",
            pad=self.plan.pad.name,
            supply_voltage_v=supply.voltage_v,
            current_limit_a=supply.current_limit_a,
        ):
            self.board.attach_probe(self.plan.pad.name, supply)
        self._attached = True

    def power_cycle(self) -> int:
        """Step 3a: cut main power, sit dark, re-plug.

        Returns the number of cells lost to the disconnect surge in the
        held domain (0 for an adequately-sized supply).
        """
        if not self._attached:
            raise AttackError("attach the probe before power cycling")
        assert self.plan is not None
        with OBS.span(
            "attack.power-cycle", off_time_s=self.off_time_s
        ) as span:
            losses = self.board.unplug()
            self.board.wait(self.off_time_s)
            self.board.plug_in()
            lost = losses.get(self.plan.domain_name, 0)
            span.set_attributes(
                held_domain=self.plan.domain_name,
                cells_lost_in_surge=lost,
                cells_below_drv_total=OBS.metrics.counter_total(
                    "sram.cells_below_drv"
                ),
            )
        return lost

    def reboot(self) -> None:
        """Step 3b: boot the attacker's media (or the internal ROM)."""
        media = self.boot_media.name if self.boot_media else "internal ROM"
        with OBS.span("attack.reboot", media=media):
            self.board.boot(self.boot_media)

    def extract(self) -> VoltBootResult:
        """Step 4: dump the target memory through the debug interfaces."""
        if self.plan is None:
            raise AttackError("run the pipeline before extracting")
        result = VoltBootResult(
            plan=self.plan,
            cells_lost_in_surge=self._surge_losses,
            off_time_s=self.off_time_s,
        )
        with OBS.span("attack.extract", target=self.target) as span:
            ctx = attacker_context(self.board)
            if self.target in ("l1-caches", "registers"):
                result.cache_images = extract_l1_images(
                    self.board,
                    ctx,
                    skip_secure=self.board.soc.config.trustzone_enforced,
                )
                for core_index in range(len(self.board.soc.cores)):
                    result.vector_registers[core_index] = (
                        extract_vector_registers(self.board, core_index)
                    )
                span.set_attribute(
                    "cores_dumped", len(self.board.soc.cores)
                )
            elif self.target == "iram":
                jtag = JtagProbe(
                    self.board.soc.memory_map,
                    enabled=self.board.soc.config.jtag_enabled,
                )
                result.iram_image = extract_iram(self.board, jtag)
                span.set_attribute("iram_bytes", len(result.iram_image))
            else:
                raise AttackError(
                    f"no extraction path for target {self.target!r}"
                )
            span.set_attributes(
                cells_lost_in_surge=result.cells_lost_in_surge,
                surge_clean=result.surge_clean,
                retention_metrics=OBS.metrics.snapshot("sram.retained"),
            )
        return result

    # ------------------------------------------------------------------
    # The full pipeline
    # ------------------------------------------------------------------

    _surge_losses: int = 0

    def execute(self) -> VoltBootResult:
        """Run all four steps and return the extraction result."""
        timer = SectionTimer()
        with OBS.span(
            "attack.voltboot", device=self.board.name, target=self.target
        ):
            with timer.section("identify"):
                self.identify()
            with timer.section("attach"):
                self.attach()
            with timer.section("power-cycle"):
                self._surge_losses = self.power_cycle()
            with timer.section("reboot"):
                self.reboot()
            with timer.section("extract"):
                result = self.extract()
        if OBS.enabled:
            OBS.record_manifest(
                RunManifest(
                    kind="attack",
                    name="voltboot",
                    seed=self.board.seed_root,
                    device=self.board.name,
                    parameters={
                        "target": self.target,
                        "off_time_s": self.off_time_s,
                        "boot_media": (
                            self.boot_media.name if self.boot_media else None
                        ),
                    },
                    phases=timer.phases(),
                    headline={
                        "surge_clean": result.surge_clean,
                        "cells_lost_in_surge": result.cells_lost_in_surge,
                        "probe_pad": result.plan.pad.name,
                        "held_domain": result.plan.domain_name,
                    },
                    metrics=OBS.metrics.snapshot(),
                )
            )
        return result

    def cleanup(self) -> None:
        """Lift the probe (ends the artificial retention)."""
        if self._attached and self.plan is not None:
            self.board.detach_probe(self.plan.pad.name)
            self._attached = False
