"""The cold boot baseline attack (paper §3).

Classic cold boot: chill the device, cut power, reboot quickly, dump
memory, and hope intrinsic capacitance preserved the bits.  The paper
reproduces FROST-style cold boot against the Pi 4's *SRAM* caches and
shows it recovers nothing at any survivable temperature (Table 1,
Figure 3) — the negative result that motivates Volt Boot.

The same class attacks DRAM, where cold boot famously *does* work; the
retention-sweep experiment uses that to confirm the model separates the
two technologies the way the literature does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AttackError
from ..obs import OBS, RunManifest, SectionTimer
from ..soc.board import Board
from ..soc.bootrom import BootMedia
from .extraction import CacheImages, attacker_context, extract_l1_images

#: How long a human takes to physically cut and restore power (paper:
#: "more than a few hundred milliseconds").
MANUAL_POWER_CYCLE_S = 0.5


@dataclass
class ColdBootResult:
    """Output of one cold boot attempt."""

    temperature_c: float
    off_time_s: float
    cache_images: CacheImages | None = None
    retained_fractions: dict[str, dict[str, float]] = field(default_factory=dict)

    def domain_retention(self, domain: str) -> float:
        """Mean retained-bit fraction across one domain's loads."""
        loads = self.retained_fractions.get(domain)
        if not loads:
            raise AttackError(f"no retention data for domain {domain!r}")
        return sum(loads.values()) / len(loads)


class ColdBootAttack:
    """Temperature-based data-remanence attack (no probe)."""

    def __init__(
        self,
        board: Board,
        temperature_c: float = -40.0,
        off_time_s: float = MANUAL_POWER_CYCLE_S,
        boot_media: BootMedia | None = None,
    ) -> None:
        self.board = board
        self.temperature_c = temperature_c
        self.off_time_s = off_time_s
        self.boot_media = boot_media

    def execute(self, extract_caches: bool = True) -> ColdBootResult:
        """Chill, power cycle, reboot, and (optionally) dump the L1s."""
        timer = SectionTimer()
        with OBS.span(
            "attack.coldboot",
            device=self.board.name,
            temperature_c=self.temperature_c,
        ):
            with timer.section("chill"), OBS.span(
                "attack.chill", temperature_c=self.temperature_c
            ):
                self.board.set_temperature_c(self.temperature_c)
            with timer.section("power-cycle"), OBS.span(
                "attack.power-cycle", off_time_s=self.off_time_s
            ) as cycle_span:
                self.board.unplug()
                self.board.wait(self.off_time_s)
                retained = self.board.plug_in()
                cycle_span.set_attribute(
                    "retention_metrics",
                    OBS.metrics.snapshot("sram.retained"),
                )
            result = ColdBootResult(
                temperature_c=self.temperature_c,
                off_time_s=self.off_time_s,
                retained_fractions=retained,
            )
            with timer.section("reboot"), OBS.span(
                "attack.reboot",
                media=self.boot_media.name if self.boot_media else "internal ROM",
            ):
                self.board.boot(self.boot_media)
            if extract_caches:
                with timer.section("extract"), OBS.span(
                    "attack.extract", target="l1-caches"
                ):
                    result.cache_images = extract_l1_images(
                        self.board, attacker_context(self.board)
                    )
        if OBS.enabled:
            mean_retained = {
                domain: sum(loads.values()) / len(loads)
                for domain, loads in retained.items()
                if loads
            }
            OBS.record_manifest(
                RunManifest(
                    kind="attack",
                    name="coldboot",
                    seed=self.board.seed_root,
                    device=self.board.name,
                    parameters={
                        "temperature_c": self.temperature_c,
                        "off_time_s": self.off_time_s,
                        "boot_media": (
                            self.boot_media.name if self.boot_media else None
                        ),
                    },
                    phases=timer.phases(),
                    headline={
                        "mean_retained_fraction_by_domain": mean_retained
                    },
                    metrics=OBS.metrics.snapshot(),
                )
            )
        return result
