"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``inventory`` — print the platform/probe tables (paper Tables 2 & 3);
* ``attack`` — run a Volt Boot (or cold boot) attack against a fresh
  simulated device with a demo victim and print what was recovered;
* ``experiment`` — run one named paper experiment and print its report;
* ``list-experiments`` — show the available experiment names;
* ``render-figures`` — regenerate every figure as PGM images;
* ``bench`` — performance-trajectory tooling (:mod:`repro.perf`):
  ``--all``/``--quick`` aggregate a schema-versioned ``BENCH_<n>.json``
  document, ``--compare OLD NEW`` / ``--against-baseline NEW`` gate on
  >20 % wall-time regressions (nonzero exit on failure), ``--trend``
  renders the trajectory across every committed document;
* ``progress`` — tail a live (or crashed) exec checkpoint journal and
  report shards done/total, rolling throughput, and ETA;
* ``chaos`` — the deterministic fault-injection harness
  (:mod:`repro.chaos`): ``--faults SPEC`` runs one seeded faulted
  campaign and asserts byte-identity with the fault-free reference,
  ``--matrix`` runs the full fault-class × ``--jobs`` grid, and
  ``--smoke`` runs the subprocess ``kill -9``/resume end-to-end check.

``attack`` and ``experiment`` accept observability flags: ``--trace
FILE`` streams a JSONL span/event trace, ``--metrics`` reports the
collected physics metrics, and ``--json`` replaces the human-readable
output with one machine-readable JSON document (including the run
manifest).  With none of these flags, output is byte-identical to an
uninstrumented run.

``experiment`` and ``render-figures`` accept ``--jobs N`` to shard
their independent work units over N processes via :mod:`repro.exec`;
results are byte-identical to ``--jobs 1`` by construction (see
``docs/determinism.md``).
"""

from __future__ import annotations

import argparse
import difflib
import inspect
import sys
from collections.abc import Sequence
from contextlib import nullcontext

from . import __version__, experiments, obs
from .chaos import targets as chaos_targets
from .core.coldboot import ColdBootAttack
from .core.report import AttackReport
from .core.voltboot import VoltBootAttack
from .devices import DEVICES, build_device, platform_table, probe_table
from .errors import CampaignInterrupted, ReproError
from .exec import (
    SupervisionPolicy,
    checkpointing,
    clear_incidents,
    incidents,
    supervised,
)
from .soc.bootrom import BootMedia

#: Process exit codes (documented in docs/robustness.md).
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
#: A checkpointed campaign was interrupted (SIGINT); the partial
#: journal was written and the run can be completed with ``--resume``.
EXIT_INTERRUPTED = 3
#: The run *completed*, but around recorded incidents — quarantined
#: work units and/or a degraded (in-memory) checkpoint journal.  The
#: report and manifest were still produced; details went to stderr.
EXIT_DEGRADED = 4

#: Experiment name -> (module, needs-report-arg) registry for the CLI.
EXPERIMENTS = {
    "table1": experiments.table1,
    "figure3": experiments.figure3,
    "table4": experiments.table4,
    "figure7": experiments.figure7,
    "figure8": experiments.figure8,
    "figure9": experiments.figure9,
    "figure10": experiments.figure10,
    "registers": experiments.registers,
    "accessibility": experiments.accessibility,
    "retention-sweep": experiments.retention_sweep,
    "probe-sweep": experiments.probe_sweep,
    "countermeasures": experiments.countermeasures,
    "platforms": experiments.platforms,
    "dram-coldboot": experiments.dram_coldboot,
    "microarch-leak": experiments.microarch_leak,
    "standby-retention": experiments.standby_retention,
    "policy-ablation": experiments.policy_ablation,
    "glitch-campaign": experiments.glitch_campaign,
    "noisy-rig": experiments.noisy_rig,
    "chaos-probe": chaos_targets,
}

#: Targets the attack command accepts per device.
_DEVICE_TARGETS = {
    "rpi4": ("l1-caches", "registers"),
    "rpi3": ("l1-caches", "registers"),
    "imx53": ("iram",),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Volt Boot reproduction toolkit (simulated hardware)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("inventory", help="print paper Tables 2 & 3")

    attack = commands.add_parser("attack", help="attack a simulated device")
    attack.add_argument("--device", choices=sorted(DEVICES), default="rpi4")
    attack.add_argument(
        "--target", default=None,
        help="memory target (default: the device's headline target)",
    )
    attack.add_argument(
        "--method", choices=("voltboot", "coldboot"), default="voltboot"
    )
    attack.add_argument("--seed", type=int, default=2022)
    attack.add_argument(
        "--temperature", type=float, default=-40.0,
        help="chamber temperature for coldboot (degC)",
    )
    _add_observability_flags(attack)

    experiment = commands.add_parser(
        "experiment", help="run one paper experiment"
    )
    experiment.add_argument(
        "name", metavar="NAME",
        help="experiment name (see list-experiments)",
    )
    experiment.add_argument("--seed", type=int, default=2022)
    _add_jobs_flag(experiment)
    experiment.add_argument(
        "--checkpoint", metavar="DIR", default=None,
        help="journal completed work units under DIR so an interrupted "
        "run can be completed with --resume "
        "(default DIR: checkpoints/<name>-seed<seed>)",
    )
    experiment.add_argument(
        "--resume", action="store_true",
        help="resume from an earlier checkpoint journal, running only "
        "the missing work units (implies --checkpoint)",
    )
    experiment.add_argument(
        "--quarantine", action="store_true",
        help="quarantine work units that exhaust their retries instead "
        "of failing the campaign (completed run exits "
        f"{EXIT_DEGRADED} and records a partial-result manifest "
        "section)",
    )
    _add_observability_flags(experiment)

    commands.add_parser("list-experiments", help="list experiment names")

    render = commands.add_parser(
        "render-figures", help="regenerate every figure as PGM images"
    )
    render.add_argument("--out", default="figures", help="output directory")
    render.add_argument("--seed", type=int, default=2022)
    _add_jobs_flag(render)

    bench = commands.add_parser(
        "bench", help="performance-trajectory tooling (BENCH_<n>.json)"
    )
    bench.add_argument(
        "--all", action="store_true", dest="all_benches",
        help="aggregate the quick suite plus every committed benchmark "
        "sidecar into one trajectory document",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="restrict aggregation to the in-process quick workload "
        "suite (what CI re-times on every run)",
    )
    bench.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="gate NEW against OLD: nonzero exit if any benchmark got "
        "slower by more than --threshold",
    )
    bench.add_argument(
        "--against-baseline", metavar="NEW", default=None,
        help="gate NEW against the highest committed BENCH_<n>.json",
    )
    bench.add_argument(
        "--trend", action="store_true",
        help="render the wall-time trend across every committed "
        "BENCH_<n>.json",
    )
    bench.add_argument(
        "--threshold", type=float, default=None, metavar="FRACTION",
        help="regression gate threshold (default 0.20 = 20%%)",
    )
    bench.add_argument(
        "--out", metavar="FILE", default=None,
        help="trajectory output path (default: BENCH_<n>.json at --root)",
    )
    bench.add_argument("--seed", type=int, default=2022)
    bench.add_argument(
        "--sequence", type=int, default=None, metavar="N",
        help="trajectory sequence number (default: next unused)",
    )
    bench.add_argument(
        "--root", default=".",
        help="directory holding the BENCH_<n>.json sequence",
    )
    bench.add_argument(
        "--results", default="benchmarks/results", metavar="DIR",
        help="benchmark sidecar directory ingested by --all",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of text/markdown",
    )

    chaos = commands.add_parser(
        "chaos",
        help="deterministic fault injection against the supervised "
        "runtime (repro.chaos)",
    )
    chaos.add_argument(
        "experiment", nargs="?", default=None, metavar="NAME",
        help="target experiment (default: chaos-probe; noisy-rig for "
        "--smoke)",
    )
    chaos_mode = chaos.add_mutually_exclusive_group(required=True)
    chaos_mode.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="fault spec, e.g. 'kill@unit=3,torn@record=1' "
        "(<kind>@<target>=<index>[:times=K][:s=V], comma-separated)",
    )
    chaos_mode.add_argument(
        "--matrix", action="store_true",
        help="run every fault class at every --jobs grid level and "
        "assert byte-identical (or resume-to-byte-identical) manifests",
    )
    chaos_mode.add_argument(
        "--smoke", action="store_true",
        help="subprocess kill -9 / --resume end-to-end check "
        "(previously tools/chaos_smoke.py)",
    )
    chaos.add_argument("--seed", type=int, default=2022)
    _add_jobs_flag(chaos)
    chaos.add_argument(
        "--workdir", default="chaos-runs", metavar="DIR",
        help="base directory for seeded chaos workdirs (journals, "
        "fault markers); no tempfile entropy",
    )
    chaos.add_argument(
        "--hang-timeout", type=float, default=None, metavar="S",
        help="supervisor hang detection timeout for injected hangs "
        "(default: 5s per run, 2s in the matrix)",
    )
    chaos.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="--smoke only: how long to wait for the victim process "
        "to journal its first unit",
    )
    chaos.add_argument(
        "--keep", action="store_true",
        help="keep the workdir (journals, fault markers) after the run",
    )
    chaos.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of text",
    )

    progress = commands.add_parser(
        "progress",
        help="report done/total, throughput, and ETA from an exec "
        "checkpoint journal (live or crashed)",
    )
    progress.add_argument(
        "path", metavar="JOURNAL",
        help="journal file, or a --checkpoint directory of journals",
    )
    progress.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON instead of text",
    )
    return parser


def _add_jobs_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for shardable work "
        "(results are byte-identical to --jobs 1)",
    )


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="stream a JSONL span/event trace to FILE",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="report collected physics metrics after the run",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one machine-readable JSON document on stdout",
    )


def _wants_observability(args: argparse.Namespace) -> bool:
    return bool(args.trace or args.metrics or args.json)


def _configure_observability(args: argparse.Namespace) -> bool:
    """Enable collection; False (after a one-line error) if the trace
    file cannot be opened."""
    try:
        obs.OBS.configure(trace_path=args.trace)
    except OSError as error:
        print(f"error: cannot open trace file: {error}", file=sys.stderr)
        return False
    return True


def _print_metrics() -> None:
    """Render the metrics snapshot as an aligned text table."""
    report = AttackReport("Observability metrics")
    for name, value in obs.OBS.metrics.snapshot().items():
        if isinstance(value, dict):
            value = (
                f"count={value['count']} mean={value['mean']:.4f} "
                f"min={value['min']:.4f} max={value['max']:.4f}"
            )
        report.add_row(metric=name, value=value)
    print()
    print(report.render())


def _cmd_inventory() -> int:
    report = AttackReport("Evaluated platforms (paper Table 2)")
    for row in platform_table():
        report.add_row(**row)
    print(report.render())
    print()
    pads = AttackReport("Probe points (paper Table 3)")
    for row in probe_table():
        pads.add_row(**row)
    print(pads.render())
    return 0


def _prepare_demo_victim(board, target: str) -> bytes:
    """Park a recognisable secret in the target memory; returns it."""
    secret_line = b"\xaa" * 64
    if target == "iram":
        iram = board.soc.iram
        payload = (b"VOLTBOOT-DEMO-SECRET" * 7)[:128]
        iram.write_block(iram.base_addr + 0x8000, payload)
        return payload
    unit = board.soc.core(0)
    if target == "registers":
        unit.vreg.write_bytes(0, b"\xaa" * 16)
        return b"\xaa" * 16
    unit.l1d.invalidate_all()
    unit.l1d.enabled = True
    unit.l1d.write(0x40000, secret_line)
    return secret_line


def _cmd_attack(args: argparse.Namespace) -> int:
    device = args.device
    target = args.target or _DEVICE_TARGETS[device][0]
    if target not in _DEVICE_TARGETS[device]:
        valid = ", ".join(_DEVICE_TARGETS[device])
        print(
            f"error: unknown target {target!r} for {device}; "
            f"valid targets: {valid}",
            file=sys.stderr,
        )
        return 2
    observed = _wants_observability(args)
    if observed and not _configure_observability(args):
        return 2
    try:
        return _run_attack(args, device, target)
    finally:
        if observed:
            obs.OBS.reset()


def _run_attack(args: argparse.Namespace, device: str, target: str) -> int:
    board = build_device(device, seed=args.seed)
    media = None if device == "imx53" else BootMedia("victim-os")
    board.boot(media)
    secret = _prepare_demo_victim(board, target)
    attacker_media = None if device == "imx53" else BootMedia("attacker-usb")

    doc: dict[str, object] = {
        "command": "attack",
        "device": device,
        "target": target,
        "method": args.method,
        "seed": args.seed,
    }

    if args.method == "coldboot":
        attack = ColdBootAttack(
            board, temperature_c=args.temperature, boot_media=attacker_media
        )
        result = attack.execute()
        recovered = (
            result.cache_images is not None
            and secret in result.cache_images.dcache(0)
        )
        if args.json:
            doc["temperature_c"] = args.temperature
            doc["recovered"] = recovered
            _emit_json(doc, include_metrics=args.metrics)
            return 0
        print(f"cold boot at {args.temperature:g}C: "
              f"secret {'RECOVERED' if recovered else 'NOT recovered'} "
              f"(expected: not recovered — SRAM has no chill)")
        if args.metrics:
            _print_metrics()
        return 0

    attack = VoltBootAttack(board, target=target, boot_media=attacker_media)
    plan = attack.identify()
    if not args.json:
        print(f"plan: {plan.describe()}")
    result = attack.execute()
    if target == "iram":
        recovered = secret in result.iram_image
    elif target == "registers":
        recovered = any(
            secret == value for value in result.vector_registers[0]
        )
    else:
        recovered = secret in result.cache_images.dcache(0)
    if args.json:
        doc["plan"] = plan.describe()
        doc["recovered"] = recovered
        doc["surge_clean"] = result.surge_clean
        doc["cells_lost_in_surge"] = result.cells_lost_in_surge
        _emit_json(doc, include_metrics=args.metrics)
        return 0
    print(f"volt boot on {device}/{target}: "
          f"secret {'RECOVERED' if recovered else 'NOT recovered'} "
          f"(surge {'clean' if result.surge_clean else 'lossy'})")
    if args.metrics:
        _print_metrics()
    return 0


def _emit_json(doc: dict[str, object], include_metrics: bool) -> None:
    """Finish a ``--json`` document with manifest/metrics and print it."""
    manifest = obs.OBS.last_manifest
    doc["manifest"] = manifest.to_dict() if manifest is not None else None
    if include_metrics:
        doc["metrics"] = obs.OBS.metrics.snapshot()
    print(obs.dumps(doc))


def _run_experiment(args: argparse.Namespace, module) -> object:
    """Invoke ``module.run``, passing ``--jobs`` through if supported."""
    if "jobs" in inspect.signature(module.run).parameters:
        return module.run(seed=args.seed, jobs=args.jobs)
    if args.jobs != 1:
        print(
            f"note: experiment {args.name!r} has no shardable axis; "
            f"running serially",
            file=sys.stderr,
        )
    return module.run(seed=args.seed)


def _cmd_experiment(args: argparse.Namespace) -> int:
    args.name = args.name.replace("_", "-")
    if args.name not in EXPERIMENTS:
        close = difflib.get_close_matches(args.name, EXPERIMENTS, n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        print(
            f"error: unknown experiment {args.name!r}{hint}; choose from: "
            f"{', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    module = EXPERIMENTS[args.name]
    observed = _wants_observability(args)
    if observed and not _configure_observability(args):
        return 2
    clear_incidents()
    supervision = (
        supervised(SupervisionPolicy(quarantine=True))
        if args.quarantine
        else nullcontext()
    )
    try:
        with supervision:
            if args.checkpoint or args.resume:
                directory = args.checkpoint or (
                    f"checkpoints/{args.name}-seed{args.seed}"
                )
                with checkpointing(directory, resume=args.resume):
                    result = _run_experiment(args, module)
            else:
                result = _run_experiment(args, module)
        report = module.report(result)
        if args.json:
            doc: dict[str, object] = {
                "command": "experiment",
                "name": args.name,
                "seed": args.seed,
                "report": report.to_dict(),
            }
            _emit_json(doc, include_metrics=args.metrics)
        else:
            print(report.render())
            if args.metrics:
                _print_metrics()
        return _degraded_exit()
    finally:
        if observed:
            obs.OBS.reset()


def _degraded_exit() -> int:
    """0 for a clean run; ``EXIT_DEGRADED`` (with stderr warnings) when
    the run completed *around* incidents — quarantined units or a
    journal that degraded to its in-memory bank."""
    recorded = incidents()
    if not recorded:
        return EXIT_OK
    for incident in recorded:
        detail = ", ".join(
            f"{key}={value}" for key, value in sorted(incident.detail.items())
        )
        print(
            f"warning: {incident.kind} [{incident.failure_class}]: {detail}",
            file=sys.stderr,
        )
    print(
        f"degraded: run completed around {len(recorded)} incident(s); "
        f"results above are partial or were journalled in memory only "
        f"(exit code {EXIT_DEGRADED})",
        file=sys.stderr,
    )
    return EXIT_DEGRADED


def _cmd_bench(args: argparse.Namespace) -> int:
    from . import perf

    modes = [
        bool(args.all_benches or args.quick),
        args.compare is not None,
        args.against_baseline is not None,
        args.trend,
    ]
    if sum(modes) != 1:
        print(
            "error: bench needs exactly one of --all/--quick, --compare, "
            "--against-baseline, or --trend",
            file=sys.stderr,
        )
        return EXIT_USAGE
    threshold = (
        perf.DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    )
    if args.compare is not None:
        old_path, new_path = args.compare
        return _bench_gate(args, old_path, new_path, threshold)
    if args.against_baseline is not None:
        baseline = perf.latest_bench(args.root)
        if baseline is None:
            print(
                f"error: no committed BENCH_<n>.json baseline at "
                f"{args.root}",
                file=sys.stderr,
            )
            return EXIT_FAILURE
        return _bench_gate(
            args, baseline[1], args.against_baseline, threshold
        )
    if args.trend:
        report = perf.trend(args.root)
        if args.json:
            print(obs.dumps(report.to_dict()))
        else:
            print(perf.render_trend(report))
        return EXIT_OK
    return _bench_aggregate(args)


def _bench_aggregate(args: argparse.Namespace) -> int:
    """``bench --all`` / ``--quick``: emit one trajectory document."""
    from . import perf
    from pathlib import Path

    entries = perf.run_quick_suite(args.seed)
    mode = "quick"
    if args.all_benches and not args.quick:
        entries += perf.collect_sidecars(args.results)
        mode = "full"
    sequence = (
        perf.next_sequence(args.root)
        if args.sequence is None
        else args.sequence
    )
    doc = perf.build_trajectory(entries, sequence, mode, jobs=1)
    out = (
        Path(args.out)
        if args.out
        else Path(args.root) / f"BENCH_{sequence}.json"
    )
    perf.write_bench(out, doc)
    if args.json:
        print(obs.dumps(doc))
    else:
        print(
            f"wrote {out}: {len(doc['benchmarks'])} benchmark(s), "
            f"mode {mode}, sequence {sequence}"
        )
    return EXIT_OK


def _bench_gate(
    args: argparse.Namespace, old_path, new_path, threshold: float
) -> int:
    """Compare two trajectory documents; exit nonzero on regressions."""
    from . import perf

    comparison = perf.compare(
        perf.load_bench(old_path), perf.load_bench(new_path), threshold
    )
    if args.json:
        print(obs.dumps(comparison.to_dict()))
    else:
        print(perf.render_comparison(comparison))
    return EXIT_OK if comparison.passed else EXIT_FAILURE


def _cmd_chaos(args: argparse.Namespace) -> int:
    import os
    import shutil

    from . import chaos

    experiment = args.experiment or (
        "noisy-rig" if args.smoke else "chaos-probe"
    )
    if args.smoke:
        result = chaos.run_smoke(
            experiment=experiment,
            seed=args.seed,
            jobs=args.jobs,
            timeout_s=args.timeout,
            workdir_base=args.workdir,
            keep=args.keep,
        )
        if args.json:
            print(obs.dumps(result.to_dict()))
        else:
            print(chaos.render_smoke(result))
        return EXIT_OK if result.passed else EXIT_FAILURE
    if args.matrix:
        workdir = os.path.join(
            args.workdir, f"matrix-{experiment}-seed{args.seed}"
        )
        report = chaos.run_matrix(
            workdir,
            seed=args.seed,
            experiment=experiment,
            hang_timeout_s=(
                2.0 if args.hang_timeout is None else args.hang_timeout
            ),
        )
        if not args.keep:
            shutil.rmtree(workdir, ignore_errors=True)
        if args.json:
            print(obs.dumps(report.to_dict()))
        else:
            print(chaos.render_matrix(report))
        return EXIT_OK if report.passed else EXIT_FAILURE
    workdir = os.path.join(args.workdir, f"{experiment}-seed{args.seed}")
    if os.path.exists(workdir):
        shutil.rmtree(workdir)
    result = chaos.run_chaos(
        experiment,
        args.faults,
        seed=args.seed,
        jobs=args.jobs,
        workdir=workdir,
        hang_timeout_s=(
            5.0 if args.hang_timeout is None else args.hang_timeout
        ),
    )
    if not args.keep:
        shutil.rmtree(workdir, ignore_errors=True)
    if args.json:
        print(obs.dumps(result.to_dict()))
    else:
        classes = ", ".join(result.failure_classes) or "none"
        verdict = (
            "byte-identical to"
            if result.identical
            else "DIVERGES from"
        )
        print(
            f"chaos run: {result.experiment} faults='{result.faults}' "
            f"seed={result.seed} jobs={result.jobs}\n"
            f"  resumes={result.interruptions}  "
            f"failure classes: {classes}\n"
            f"  final manifest {verdict} the fault-free reference"
        )
    return EXIT_OK if result.identical else EXIT_FAILURE


def _cmd_progress(args: argparse.Namespace) -> int:
    from . import perf

    reports = [
        perf.read_progress(journal)
        for journal in perf.find_journals(args.path)
    ]
    if args.json:
        print(
            obs.dumps(
                {"journals": [report.to_dict() for report in reports]}
            )
        )
    else:
        for report in reports:
            print(perf.render_progress(report))
    return EXIT_OK


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "inventory":
            return _cmd_inventory()
        if args.command == "attack":
            return _cmd_attack(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "list-experiments":
            for name in sorted(EXPERIMENTS):
                print(name)
            return 0
        if args.command == "render-figures":
            from .experiments.render import render_all

            for path in render_all(args.out, seed=args.seed, jobs=args.jobs):
                print(path)
            return 0
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "progress":
            return _cmd_progress(args)
    except CampaignInterrupted as error:
        print(f"interrupted: {error}", file=sys.stderr)
        resume_cmd = _resume_hint(args)
        print(
            f"hint: the journal is crash-safe — rerun with {resume_cmd} "
            f"to complete only the missing work units",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_FAILURE
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    return EXIT_USAGE  # pragma: no cover - argparse enforces the choices


def _resume_hint(args: argparse.Namespace) -> str:
    """The exact rerun command to print after an interruption."""
    parts = [f"`repro experiment {getattr(args, 'name', '<name>')}"]
    seed = getattr(args, "seed", None)
    if seed is not None:
        parts.append(f"--seed {seed}")
    checkpoint = getattr(args, "checkpoint", None)
    if checkpoint:
        parts.append(f"--checkpoint {checkpoint}")
    parts.append("--resume`")
    return " ".join(parts)
