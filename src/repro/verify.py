"""Repository health check: ``repro-verify`` / ``python -m repro.verify``.

One command that answers "is this checkout good?":

1. runs the tier-1 pytest suite (``tests/``);
2. smoke-runs ``attack --device rpi4 --trace ... --json`` in-process and
   checks the JSON document parses;
3. validates the emitted run manifest against the schema
   (:func:`repro.obs.validate_manifest`);
4. checks the JSONL trace carries a header record plus one span per
   attack step of paper §6.1;
5. runs the ``repro-lint`` static-analysis suite over ``src/``.

Exit code 0 means every stage passed; the first failing stage is
reported and sets a non-zero exit code.  Pass ``--skip-tests`` to run
only the (fast) smoke + schema + lint stages.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import subprocess
import sys
import tempfile
from collections.abc import Sequence
from pathlib import Path

from .obs import names as _taxonomy

#: Span names the smoke trace must contain — the §6.1 attack steps.
#: Derived from the shared taxonomy; the cold-boot spans are optional
#: because the smoke attack is a Volt Boot run.
REQUIRED_SPANS = tuple(
    name for name in _taxonomy.ATTACK_SPANS
    if name not in ("attack.coldboot", "attack.chill")
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _stage(name: str) -> None:
    print(f"[verify] {name}...", flush=True)


def run_tier1_tests() -> int:
    """Run the repo's tier-1 pytest suite in a subprocess."""
    _stage("tier-1 pytest suite")
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", "tests"],
        cwd=REPO_ROOT,
    )
    return result.returncode


def run_smoke_attack(trace_path: Path) -> dict[str, object] | None:
    """Run ``attack --json`` in-process; returns the parsed document."""
    _stage("smoke attack --json")
    from . import cli

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = cli.main(
            [
                "attack",
                "--device", "rpi4",
                "--trace", str(trace_path),
                "--json",
            ]
        )
    if code != 0:
        print(f"[verify] FAIL: attack exited {code}", file=sys.stderr)
        return None
    try:
        doc = json.loads(stdout.getvalue())
    except json.JSONDecodeError as error:
        print(f"[verify] FAIL: attack stdout is not JSON: {error}",
              file=sys.stderr)
        return None
    if not doc.get("recovered"):
        print("[verify] FAIL: attack did not recover the demo secret",
              file=sys.stderr)
        return None
    return doc


def check_manifest(doc: dict[str, object]) -> bool:
    """Validate the run manifest embedded in the smoke document."""
    _stage("manifest schema")
    from .obs import SchemaError, validate_manifest

    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        print("[verify] FAIL: smoke document carries no manifest",
              file=sys.stderr)
        return False
    try:
        validate_manifest(manifest)
    except SchemaError as error:
        print(f"[verify] FAIL: manifest invalid: {error}", file=sys.stderr)
        return False
    return True


def check_trace(trace_path: Path) -> bool:
    """Check the smoke trace has a header and every §6.1 span."""
    _stage("trace spans")
    from .obs import read_jsonl

    records = read_jsonl(trace_path)
    if not records or records[0].get("type") != "header":
        print("[verify] FAIL: trace missing header record", file=sys.stderr)
        return False
    span_names = {
        r.get("name") for r in records if r.get("type") == "span"
    }
    missing = [name for name in REQUIRED_SPANS if name not in span_names]
    if missing:
        print(f"[verify] FAIL: trace missing spans: {', '.join(missing)}",
              file=sys.stderr)
        return False
    return True


def run_lint() -> bool:
    """Run the repro-lint suite over ``src/``; True if it is clean."""
    _stage("repro-lint src/")
    from .errors import LintError
    from .lint import lint_paths

    src = REPO_ROOT / "src"
    try:
        findings = lint_paths([src])
    except LintError as error:
        print(f"[verify] FAIL: repro-lint: {error}", file=sys.stderr)
        return False
    if findings:
        for finding in findings:
            print(finding.render(), file=sys.stderr)
        print(f"[verify] FAIL: repro-lint found {len(findings)} finding(s)",
              file=sys.stderr)
        return False
    return True


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro-verify``; returns the exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-verify",
        description="tier-1 tests + smoke attack + manifest/trace/lint checks",
    )
    parser.add_argument(
        "--skip-tests", action="store_true",
        help="skip the pytest stage; run only smoke + schema + lint checks",
    )
    args = parser.parse_args(argv)

    if not args.skip_tests:
        code = run_tier1_tests()
        if code != 0:
            print(f"[verify] FAIL: pytest exited {code}", file=sys.stderr)
            return code

    with tempfile.TemporaryDirectory(prefix="repro-verify-") as tmp:
        trace_path = Path(tmp) / "trace.jsonl"
        doc = run_smoke_attack(trace_path)
        if doc is None:
            return 1
        if not check_manifest(doc):
            return 1
        if not check_trace(trace_path):
            return 1

    if not run_lint():
        return 1

    print("[verify] OK: tests, smoke attack, manifest, trace and lint all pass")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
