"""Deterministic random-number plumbing.

Every stochastic element of the simulation (process variation, power-up
fingerprints, kernel noise, trial repetition) draws from a
:class:`numpy.random.Generator` derived from a named seed, so that a whole
board — and a whole experiment — is reproducible from a single integer.

Seeds are derived by hashing a root seed with a string *purpose* label.
This keeps independent subsystems statistically independent while remaining
stable across runs and insertion order.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Root seed used by device builders when the caller does not supply one.
DEFAULT_SEED = 0x5EC12E7


def derive_seed(root: int, *labels: str) -> int:
    """Derive a 63-bit child seed from ``root`` and a label path.

    The derivation is a SHA-256 over the root and labels, so children are
    independent of each other and insensitive to call ordering.
    """
    digest = hashlib.sha256()
    digest.update(str(int(root)).encode("ascii"))
    for label in labels:
        digest.update(b"/")
        digest.update(label.encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> 1


def generator(root: int, *labels: str) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` for ``root`` + label path."""
    return np.random.default_rng(derive_seed(root, *labels))


def from_entropy(entropy: int | tuple[int, ...]) -> np.random.Generator:
    """Build a generator from an explicit entropy value.

    The sanctioned wrapper for call sites whose seed is already a
    deterministic quantity (a session key, a ``(seed, counter)`` pair):
    the stream is exactly ``np.random.default_rng(entropy)``, but RNG
    construction stays greppable and inside this module, which is what
    the RL001 determinism lint enforces.
    """
    return np.random.default_rng(entropy)


def spawn(parent: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``parent``'s stream.

    Draws one 63-bit integer from the parent, so repeated spawns are
    decorrelated yet fully determined by the parent's seed and position.
    """
    return np.random.default_rng(int(parent.integers(0, 2**63)))


class SeedSequenceFactory:
    """Hands out named, reproducible generators below one root seed.

    A board holds one factory; every SRAM array, DRAM array, and noise
    source asks it for a generator by name.  Asking twice for the same name
    yields *fresh* generators with the same stream, which is what trial
    repetition wants — pass a distinct ``trial`` label to decorrelate runs.
    """

    def __init__(self, root: int = DEFAULT_SEED) -> None:
        self._root = int(root)

    @property
    def root(self) -> int:
        """The root seed this factory derives from."""
        return self._root

    def seed(self, *labels: str) -> int:
        """Derive the child seed for a label path."""
        return derive_seed(self._root, *labels)

    def generator(self, *labels: str) -> np.random.Generator:
        """Derive a generator for a label path."""
        return generator(self._root, *labels)

    def child(self, *labels: str) -> "SeedSequenceFactory":
        """Derive a sub-factory rooted at the given label path."""
        return SeedSequenceFactory(self.seed(*labels))
