"""Canned bare-metal victim programs (paper §6.2, §7.1, §7.2).

Each builder returns assembly source; callers assemble, load, and run it
on a :class:`~repro.cpu.core.Core`.  The programs mirror the paper's
victims:

* :func:`nop_fill` — enable caches and execute a NOP sled sized to the
  i-cache, so the attack's i-cache dump can be diffed against known
  machine code (§7.1.1);
* :func:`pattern_array` — fill a data array with distinguishable 8-byte
  elements and stream it through the d-cache (§7.1.2, Table 4);
* :func:`vector_fill` — park recognisable patterns in the 128-bit vector
  registers, TRESOR-style (§7.2);
* :func:`byte_pattern_store` — store a repeated byte (0xAA) over a
  buffer, the Linux demo app of Figure 8;
* :func:`dczva_wipe` — zero a buffer with ``DC ZVA``, the software purge
  from §8;
* :func:`pin_check` — a secure-boot-style PIN comparison, the victim of
  the ``repro.glitch`` fault-injection campaigns.
"""

from __future__ import annotations

from ..errors import AssemblerError

#: Magic prefix marking pattern-array elements; the low bytes carry the
#: element index, so each 8-byte element is globally unique and
#: recognisable in a raw cache image.
ARRAY_ELEMENT_MAGIC = 0x5EC2_E7B0_0000_0000


def element_value(index: int) -> int:
    """The 8-byte value stored at ``index`` by :func:`pattern_array`."""
    if not 0 <= index < (1 << 32):
        raise AssemblerError(f"element index {index} out of range")
    return ARRAY_ELEMENT_MAGIC | index


def nop_fill(code_bytes: int) -> str:
    """A cache-enable prologue followed by ``code_bytes`` worth of NOPs.

    Executing it walks the PC across ``code_bytes`` of straight-line
    code, pulling every line into the i-cache.  ``code_bytes`` counts the
    NOP sled only; prologue and HLT are a handful of extra instructions.
    """
    if code_bytes % 4:
        raise AssemblerError("NOP sled size must be a multiple of 4")
    sled = "\n".join("    nop" for _ in range(code_bytes // 4))
    return f"""
; bare-metal NOP fill ({code_bytes} bytes of sled)
    cacheen
{sled}
    hlt
"""


def pattern_array(base_addr: int, n_elements: int, passes: int = 1) -> str:
    """Fill + re-read an array of unique 8-byte elements through the cache.

    Element ``i`` holds :func:`element_value` ``(i)``.  Each pass writes
    every element then reads it back, mimicking the paper's Linux
    microbenchmark inner loop.  Register use: x0 cursor, x1 value, x2
    element counter, x3 magic, x4 pass counter, x5 scratch.
    """
    if n_elements <= 0 or passes <= 0:
        raise AssemblerError("element and pass counts must be positive")
    return f"""
; pattern-array microbenchmark: {n_elements} elements, {passes} passes
    cacheen
    ldimm x4, #{passes}
pass_loop:
    ldimm x0, #{base_addr:#x}
    ldimm x3, #{ARRAY_ELEMENT_MAGIC:#x}
    ldi   x2, #0
    ldimm x6, #{n_elements}
fill_loop:
    orr   x1, x3, x2        ; value = magic | index
    str   x1, [x0, #0]
    ldr   x5, [x0, #0]      ; read back (load stream)
    addi  x0, x0, #8
    addi  x2, x2, #1
    sub   x5, x6, x2
    cbnz  x5, fill_loop
    subi  x4, x4, #1
    cbnz  x4, pass_loop
    hlt
"""


def vector_fill(patterns: tuple[int, ...] = (0xFF, 0xAA)) -> str:
    """Park alternating byte patterns in all 32 vector registers (§7.2)."""
    lines = [
        f"    vfill v{reg}, #{patterns[reg % len(patterns)]:#04x}"
        for reg in range(32)
    ]
    body = "\n".join(lines)
    return f"""
; TRESOR-style vector register fill
    cacheen
{body}
    hlt
"""


def byte_pattern_store(base_addr: int, size_bytes: int, pattern: int = 0xAA) -> str:
    """Store ``pattern`` over ``size_bytes`` at ``base_addr`` (Figure 8 app).

    Writes 8 bytes at a time; the pattern byte is replicated across the
    word.
    """
    if size_bytes % 8:
        raise AssemblerError("buffer size must be a multiple of 8")
    word = int.from_bytes(bytes([pattern & 0xFF]) * 8, "little")
    return f"""
; store 0x{pattern:02X} over {size_bytes} bytes, then read back
    cacheen
    ldimm x0, #{base_addr:#x}
    ldimm x1, #{word:#x}
    ldimm x2, #{size_bytes // 8}
store_loop:
    str   x1, [x0, #0]
    ldr   x3, [x0, #0]
    addi  x0, x0, #8
    subi  x2, x2, #1
    cbnz  x2, store_loop
    hlt
"""


def pin_check(
    flag_addr: int,
    entered_pin: int,
    stored_pin: int,
    delay_iterations: int = 12,
) -> str:
    """A secure-boot-style PIN comparison — the glitch campaign's victim.

    Clears an unlock flag, spins a calibration delay loop (so the
    comparison sits at a known time for the glitch offset axis), XORs
    the entered PIN against the stored one, and only writes ``flag = 1``
    when they match.  With a wrong PIN the honest outcomes are
    ``flag = 0`` + HLT; a fault that skips or corrupts the ``cbnz``
    guard lets the unlock path run anyway.  Register use: x0 flag
    address, x1 flag value, x2 entered, x3 stored, x4 difference,
    x5 delay counter.
    """
    if delay_iterations <= 0:
        raise AssemblerError("delay iterations must be positive")
    return f"""
; PIN check: entered {entered_pin:#x} vs stored {stored_pin:#x}
    cacheen
    ldimm x0, #{flag_addr:#x}
    ldi   x1, #0
    str   x1, [x0, #0]          ; flag = locked
    ldimm x5, #{delay_iterations}
delay_loop:
    subi  x5, x5, #1
    cbnz  x5, delay_loop
    ldimm x2, #{entered_pin:#x}
    ldimm x3, #{stored_pin:#x}
    eor   x4, x2, x3
    cbnz  x4, locked            ; the guard a glitch wants to break
    ldi   x1, #1
    str   x1, [x0, #0]          ; flag = unlocked
locked:
    hlt
"""


def dczva_wipe(base_addr: int, size_bytes: int, line_bytes: int = 64) -> str:
    """Zero a buffer line-by-line with ``DC ZVA`` (§8 purge loop)."""
    if size_bytes % line_bytes:
        raise AssemblerError("wipe size must be a multiple of the line size")
    return f"""
; DC ZVA purge of {size_bytes} bytes
    cacheen
    ldimm x0, #{base_addr:#x}
    ldimm x2, #{size_bytes // line_bytes}
wipe_loop:
    dczva x0
    addi  x0, x0, #{line_bytes}
    subi  x2, x2, #1
    cbnz  x2, wipe_loop
    hlt
"""
