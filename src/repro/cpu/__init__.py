"""A miniature aarch64-flavoured CPU: ISA, assembler, interpreter.

The paper's victim workloads are small bare-metal aarch64 programs
(NOP-fills, pattern stores, vector-register fills) plus Linux userspace
microbenchmarks.  This package provides a reduced instruction set that is
rich enough to express all of them, an assembler producing real machine
code (so instruction bytes land in the i-cache and can be compared to
ground truth), and an interpreter that drives every fetch and data access
through the SRAM-backed cache hierarchy.
"""

from .assembler import AssembledProgram, assemble
from .core import Core
from .isa import Instruction, Opcode, decode, encode
from . import programs

__all__ = [
    "AssembledProgram",
    "assemble",
    "Core",
    "Instruction",
    "Opcode",
    "decode",
    "encode",
    "programs",
]
