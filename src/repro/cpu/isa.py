"""Instruction set and binary encoding.

Every instruction is 4 bytes — ``[opcode][a][b][c]`` — mirroring the
fixed-width aarch64 encoding closely enough that instruction streams have
realistic density in the i-cache.  Register fields address ``x0..x30``;
register 31 is ``xzr`` (reads as zero, writes vanish), as on real ARM.

The set covers what the paper's victim programs need:

* data movement and ALU ops to build addresses and pattern values;
* 8-byte and 1-byte loads/stores through the d-cache;
* branches for loops;
* ``DC ZVA`` plus barriers (``DSB``/``ISB``) — the maintenance ops the
  paper discusses;
* vector-register fills and lane moves (``v0..v31``) for the §7.2 attack;
* a cache-enable control op standing in for the SCTLR dance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import AssemblerError

#: Encoded index of the zero register.
XZR = 31


class Opcode(enum.IntEnum):
    """Binary opcodes (byte 0 of each instruction)."""

    NOP = 0x00
    HLT = 0x01
    LDI = 0x02     # rd = imm8
    LSLI = 0x03    # rd = rn << imm8
    LSRI = 0x04    # rd = rn >> imm8
    ORRI = 0x05    # rd = rn | imm8
    ADD = 0x06     # rd = rn + rm
    ADDI = 0x07    # rd = rn + imm8
    SUB = 0x08     # rd = rn - rm
    SUBI = 0x09    # rd = rn - imm8
    AND = 0x0A     # rd = rn & rm
    ORR = 0x0B     # rd = rn | rm
    EOR = 0x0C     # rd = rn ^ rm
    MUL = 0x0D     # rd = rn * rm
    LDR = 0x0E     # rd = mem64[rn + imm8*8]
    STR = 0x0F     # mem64[rn + imm8*8] = rd
    LDRB = 0x10    # rd = mem8[rn + imm8]
    STRB = 0x11    # mem8[rn + imm8] = rd
    B = 0x12       # pc += simm16 instructions
    CBZ = 0x13     # if ra == 0: pc += simm16 instructions
    CBNZ = 0x14    # if ra != 0: pc += simm16 instructions
    DCZVA = 0x15   # zero the cache line containing [ra]
    DSB = 0x16     # data synchronisation barrier
    ISB = 0x17     # instruction synchronisation barrier
    VFILL = 0x18   # v[a] = imm8 repeated over 16 bytes
    VINS = 0x19    # v[a].d[b] = x[c]  (64-bit lane insert)
    VEXT = 0x1A    # x[a] = v[b].d[c]  (64-bit lane extract)
    CACHEEN = 0x1B # enable L1 caches (SCTLR.C/I stand-in)
    CACHEDIS = 0x1C  # disable L1 caches


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    opcode: Opcode
    a: int = 0
    b: int = 0
    c: int = 0

    def __post_init__(self) -> None:
        for field_name in ("a", "b", "c"):
            value = getattr(self, field_name)
            if not 0 <= value <= 0xFF:
                raise AssemblerError(
                    f"{self.opcode.name}: field {field_name}={value} "
                    f"out of byte range"
                )

    @property
    def simm16(self) -> int:
        """Fields b:c interpreted as a signed 16-bit branch offset."""
        raw = (self.b << 8) | self.c
        return raw - 0x10000 if raw >= 0x8000 else raw


def encode(instruction: Instruction) -> bytes:
    """Encode an instruction to its 4-byte machine form."""
    return bytes(
        (int(instruction.opcode), instruction.a, instruction.b, instruction.c)
    )


def decode(word: bytes) -> Instruction:
    """Decode 4 machine bytes into an :class:`Instruction`."""
    if len(word) != 4:
        raise AssemblerError(f"instruction words are 4 bytes, got {len(word)}")
    try:
        opcode = Opcode(word[0])
    except ValueError:
        raise AssemblerError(f"unknown opcode byte {word[0]:#04x}") from None
    return Instruction(opcode, word[1], word[2], word[3])


def branch_fields(offset_instructions: int) -> tuple[int, int]:
    """Split a signed instruction-count offset into (b, c) fields."""
    if not -0x8000 <= offset_instructions < 0x8000:
        raise AssemblerError(f"branch offset {offset_instructions} out of range")
    raw = offset_instructions & 0xFFFF
    return raw >> 8, raw & 0xFF
