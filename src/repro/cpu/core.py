"""The CPU interpreter: executes machine code through the cache hierarchy.

Every instruction fetch streams through the core's L1 i-cache and every
load/store through its L1 d-cache (when enabled), so running a program
populates the SRAM macros exactly the way the paper's bare-metal victims
do.  Register reads and writes go to the SRAM-backed register files, so
whatever a program leaves in ``x``/``v`` registers is physically present
for the attack.

A small line-sized fetch buffer models the real front-end: a line is read
through the i-cache once and subsequent sequential fetches decode from
the buffer (flushed by branches landing outside it and by ``ISB``).
"""

from __future__ import annotations

from ..errors import CpuFault
from ..soc.memory_map import MemoryMap
from ..soc.soc import CoreUnit
from .isa import Instruction, Opcode, XZR, decode

_MASK64 = (1 << 64) - 1


class Core:
    """One executing CPU core bound to its :class:`~repro.soc.soc.CoreUnit`."""

    def __init__(
        self, unit: CoreUnit, memory_map: MemoryMap, asid: int = 0
    ) -> None:
        self.unit = unit
        self.memory_map = memory_map
        self.asid = asid
        self.pc = 0
        self.halted = False
        self.instructions_retired = 0
        #: One-shot decoded-instruction override consumed by the next
        #: fetch.  The seam the glitch injector uses to model a
        #: corrupted fetch: the front-end "sees" this instruction
        #: instead of reading the i-cache, for exactly one step.
        self.fetch_override: Instruction | None = None
        self._fetch_line_addr: int | None = None
        self._fetch_line: bytes = b""
        # Host-side micro-TLB / micro-BTB filters: real front-ends keep
        # tiny L0 structures so the big SRAM arrays are only written on
        # genuine misses; here they keep simulation cost linear.
        self._utlb_pages: set[int] = set()
        self._ubtb_branches: set[int] = set()

    # ------------------------------------------------------------------
    # Register access (through the SRAM-backed files)
    # ------------------------------------------------------------------

    def read_x(self, index: int) -> int:
        """Read a general-purpose register (``xzr`` reads zero)."""
        if index == XZR:
            return 0
        return self.unit.gpr.read(index)

    def write_x(self, index: int, value: int) -> None:
        """Write a general-purpose register (writes to ``xzr`` vanish)."""
        if index != XZR:
            self.unit.gpr.write(index, value & _MASK64)

    # ------------------------------------------------------------------
    # Memory access (through the caches when enabled)
    # ------------------------------------------------------------------

    def _tlb_fill(self, addr: int) -> None:
        tlb = self.unit.tlb
        if tlb is None:
            return
        page = addr >> tlb.PAGE_SHIFT
        if page not in self._utlb_pages:
            self._utlb_pages.add(page)
            tlb.touch_address(self.asid, addr)

    def _btb_record(self, branch_pc: int, target_pc: int) -> None:
        btb = self.unit.btb
        if btb is not None and branch_pc not in self._ubtb_branches:
            self._ubtb_branches.add(branch_pc)
            btb.record(branch_pc, target_pc)

    def _dread(self, addr: int, size: int) -> bytes:
        self._tlb_fill(addr)
        if self.unit.l1d.enabled:
            return self.unit.l1d.read(addr, size)
        return self.memory_map.read_block(addr, size)

    def _dwrite(self, addr: int, data: bytes) -> None:
        self._tlb_fill(addr)
        if self.unit.l1d.enabled:
            self.unit.l1d.write(addr, data)
        else:
            self.memory_map.write_block(addr, data)

    def _fetch(self) -> Instruction:
        if self.fetch_override is not None:
            instr = self.fetch_override
            self.fetch_override = None
            return instr
        line_bytes = self.unit.l1i.geometry.line_bytes
        line_addr = self.pc & ~(line_bytes - 1)
        if line_addr != self._fetch_line_addr:
            self._tlb_fill(self.pc)
            if self.unit.l1i.enabled:
                self._fetch_line = self.unit.l1i.read(line_addr, line_bytes)
            else:
                self._fetch_line = self.memory_map.read_block(line_addr, line_bytes)
            self._fetch_line_addr = line_addr
        offset = self.pc - line_addr
        return decode(self._fetch_line[offset : offset + 4])

    def flush_fetch_buffer(self) -> None:
        """Discard the line buffer (ISB, or external code modification)."""
        self._fetch_line_addr = None
        self._fetch_line = b""
        self.fetch_override = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def load_program(self, machine_code: bytes, base_addr: int) -> None:
        """Place machine code in memory and point the PC at it."""
        self.memory_map.write_block(base_addr, machine_code)
        self.pc = base_addr
        self.halted = False
        self.flush_fetch_buffer()

    def step(self) -> None:
        """Fetch, decode, and execute a single instruction."""
        if self.halted:
            raise CpuFault("core is halted")
        instr = self._fetch()
        next_pc = self.pc + 4
        op = instr.opcode

        if op is Opcode.NOP:
            pass
        elif op is Opcode.HLT:
            self.halted = True
        elif op is Opcode.LDI:
            self.write_x(instr.a, instr.b)
        elif op is Opcode.LSLI:
            self.write_x(instr.a, self.read_x(instr.b) << instr.c)
        elif op is Opcode.LSRI:
            self.write_x(instr.a, self.read_x(instr.b) >> instr.c)
        elif op is Opcode.ORRI:
            self.write_x(instr.a, self.read_x(instr.b) | instr.c)
        elif op is Opcode.ADD:
            self.write_x(instr.a, self.read_x(instr.b) + self.read_x(instr.c))
        elif op is Opcode.ADDI:
            self.write_x(instr.a, self.read_x(instr.b) + instr.c)
        elif op is Opcode.SUB:
            self.write_x(instr.a, self.read_x(instr.b) - self.read_x(instr.c))
        elif op is Opcode.SUBI:
            self.write_x(instr.a, self.read_x(instr.b) - instr.c)
        elif op is Opcode.AND:
            self.write_x(instr.a, self.read_x(instr.b) & self.read_x(instr.c))
        elif op is Opcode.ORR:
            self.write_x(instr.a, self.read_x(instr.b) | self.read_x(instr.c))
        elif op is Opcode.EOR:
            self.write_x(instr.a, self.read_x(instr.b) ^ self.read_x(instr.c))
        elif op is Opcode.MUL:
            self.write_x(instr.a, self.read_x(instr.b) * self.read_x(instr.c))
        elif op is Opcode.LDR:
            addr = self.read_x(instr.b) + instr.c * 8
            self.write_x(instr.a, int.from_bytes(self._dread(addr, 8), "little"))
        elif op is Opcode.STR:
            addr = self.read_x(instr.b) + instr.c * 8
            self._dwrite(addr, (self.read_x(instr.a) & _MASK64).to_bytes(8, "little"))
        elif op is Opcode.LDRB:
            addr = self.read_x(instr.b) + instr.c
            self.write_x(instr.a, self._dread(addr, 1)[0])
        elif op is Opcode.STRB:
            addr = self.read_x(instr.b) + instr.c
            self._dwrite(addr, bytes([self.read_x(instr.a) & 0xFF]))
        elif op is Opcode.B:
            next_pc = self.pc + instr.simm16 * 4
            self._btb_record(self.pc, next_pc)
        elif op is Opcode.CBZ:
            if self.read_x(instr.a) == 0:
                next_pc = self.pc + instr.simm16 * 4
                self._btb_record(self.pc, next_pc)
        elif op is Opcode.CBNZ:
            if self.read_x(instr.a) != 0:
                next_pc = self.pc + instr.simm16 * 4
                self._btb_record(self.pc, next_pc)
        elif op is Opcode.DCZVA:
            self.unit.l1d.zero_line(self.read_x(instr.a))
        elif op is Opcode.DSB:
            self.unit.cp15.dsb()
        elif op is Opcode.ISB:
            self.unit.cp15.isb()
            self.flush_fetch_buffer()
        elif op is Opcode.VFILL:
            self.unit.vreg.write_bytes(instr.a, bytes([instr.b]) * 16)
        elif op is Opcode.VINS:
            if instr.b not in (0, 1):
                raise CpuFault(f"VINS: lane {instr.b} out of range")
            current = bytearray(self.unit.vreg.read_bytes(instr.a))
            lane = self.read_x(instr.c).to_bytes(8, "little")
            current[instr.b * 8 : instr.b * 8 + 8] = lane
            self.unit.vreg.write_bytes(instr.a, bytes(current))
        elif op is Opcode.VEXT:
            if instr.c not in (0, 1):
                raise CpuFault(f"VEXT: lane {instr.c} out of range")
            raw = self.unit.vreg.read_bytes(instr.b)
            self.write_x(instr.a, int.from_bytes(raw[instr.c * 8 : instr.c * 8 + 8], "little"))
        elif op is Opcode.CACHEEN:
            # Real enable sequences invalidate first (random power-on
            # tag state would otherwise alias); invalidation only clears
            # valid bits — data RAM contents survive, per paper §5.2.4.
            if not self.unit.l1d.enabled:
                self.unit.l1d.invalidate_all()
                self.unit.l1d.enabled = True
            if not self.unit.l1i.enabled:
                self.unit.l1i.invalidate_all()
                self.unit.l1i.enabled = True
            self.flush_fetch_buffer()
        elif op is Opcode.CACHEDIS:
            self.unit.l1d.enabled = False
            self.unit.l1i.enabled = False
            self.flush_fetch_buffer()
        else:  # pragma: no cover - the decoder rejects unknown opcodes
            raise CpuFault(f"unimplemented opcode {op!r}")

        self.pc = next_pc
        self.instructions_retired += 1

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until HLT or ``max_steps``; returns instructions retired."""
        start = self.instructions_retired
        for _ in range(max_steps):
            if self.halted:
                break
            self.step()
        else:
            raise CpuFault(f"program exceeded {max_steps} steps without HLT")
        return self.instructions_retired - start
