"""Two-pass assembler for the mini ISA.

Source syntax, one instruction per line::

    ; comments run to end of line (also //)
    start:
        ldi   x0, #0x10
        lsli  x0, x0, #8
        ldimm x1, #0xdeadbeefcafef00d   ; pseudo-instruction, expands
    loop:
        str   x1, [x0, #0]
        addi  x0, x0, #8
        subi  x2, x2, #1
        cbnz  x2, loop
        hlt

Registers are ``x0..x30`` plus ``xzr``; vector registers are ``v0..v31``.
Immediates take ``#`` and accept decimal or ``0x`` hex.  The ``ldimm``
pseudo-instruction expands into an LDI/LSLI/ORRI sequence building an
arbitrary 64-bit constant, because the fixed 4-byte encoding only carries
byte immediates (the same game real aarch64 plays with MOVZ/MOVK).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import AssemblerError
from .isa import Instruction, Opcode, XZR, branch_fields, encode

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


@dataclass(frozen=True)
class AssembledProgram:
    """The output of :func:`assemble`."""

    machine_code: bytes
    labels: dict[str, int]  # label -> byte offset from program start
    source: str

    @property
    def n_instructions(self) -> int:
        """Number of 4-byte instructions."""
        return len(self.machine_code) // 4


def _strip(line: str) -> str:
    for marker in (";", "//"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_register(token: str, line: str) -> int:
    token = token.lower().rstrip(",")
    if token == "xzr":
        return XZR
    match = re.fullmatch(r"x(\d+)", token)
    if not match or not 0 <= int(match.group(1)) <= 30:
        raise AssemblerError(f"bad register {token!r} in {line!r}")
    return int(match.group(1))


def _parse_vector(token: str, line: str) -> int:
    match = re.fullmatch(r"v(\d+)", token.lower().rstrip(","))
    if not match or not 0 <= int(match.group(1)) <= 31:
        raise AssemblerError(f"bad vector register {token!r} in {line!r}")
    return int(match.group(1))


def _parse_imm(token: str, line: str) -> int:
    token = token.rstrip(",")
    if not token.startswith("#"):
        raise AssemblerError(f"immediate must start with # in {line!r}")
    try:
        return int(token[1:], 0)
    except ValueError:
        raise AssemblerError(f"bad immediate {token!r} in {line!r}") from None


def _parse_mem(tokens: list[str], line: str) -> tuple[int, int]:
    """Parse ``[xN, #imm]`` or ``[xN]`` into (base register, immediate)."""
    joined = " ".join(tokens)
    match = re.fullmatch(
        r"\[\s*(x\d+|xzr)\s*(?:[,\s]\s*(#[^\]]+?))?\s*\]", joined.strip()
    )
    if not match:
        raise AssemblerError(f"bad memory operand in {line!r}")
    base = _parse_register(match.group(1), line)
    imm = _parse_imm(match.group(2), line) if match.group(2) else 0
    if not 0 <= imm <= 0xFF:
        raise AssemblerError(f"memory offset {imm} out of byte range in {line!r}")
    return base, imm


def _expand_ldimm(rd: int, value: int) -> list[Instruction]:
    """Build a 64-bit constant with LDI/LSLI/ORRI (MSB-first)."""
    value &= (1 << 64) - 1
    data = value.to_bytes(8, "big").lstrip(b"\x00") or b"\x00"
    out = [Instruction(Opcode.LDI, rd, data[0])]
    for byte in data[1:]:
        out.append(Instruction(Opcode.LSLI, rd, rd, 8))
        if byte:
            out.append(Instruction(Opcode.ORRI, rd, rd, byte))
    return out


# Mnemonic -> (opcode, operand shape). Shapes are handled in _parse_line.
_SIMPLE = {
    "nop": Opcode.NOP,
    "hlt": Opcode.HLT,
    "dsb": Opcode.DSB,
    "isb": Opcode.ISB,
    "cacheen": Opcode.CACHEEN,
    "cachedis": Opcode.CACHEDIS,
}
_REG_REG_REG = {
    "add": Opcode.ADD,
    "sub": Opcode.SUB,
    "and": Opcode.AND,
    "orr": Opcode.ORR,
    "eor": Opcode.EOR,
    "mul": Opcode.MUL,
}
_REG_REG_IMM = {
    "addi": Opcode.ADDI,
    "subi": Opcode.SUBI,
    "lsli": Opcode.LSLI,
    "lsri": Opcode.LSRI,
    "orri": Opcode.ORRI,
}
_BRANCHES = {"b": Opcode.B, "cbz": Opcode.CBZ, "cbnz": Opcode.CBNZ}
_MEMOPS = {
    "ldr": Opcode.LDR,
    "str": Opcode.STR,
    "ldrb": Opcode.LDRB,
    "strb": Opcode.STRB,
}


def _parse_line(
    line: str, pending_branches: list[tuple[int, str, Opcode, int]],
    instructions: list[Instruction | None],
) -> None:
    tokens = line.replace(",", " , ").split()
    tokens = [t for t in tokens if t != ","]
    mnemonic = tokens[0].lower()
    args = tokens[1:]

    if mnemonic in _SIMPLE:
        instructions.append(Instruction(_SIMPLE[mnemonic]))
    elif mnemonic == "ldi":
        instructions.append(
            Instruction(Opcode.LDI, _parse_register(args[0], line),
                        _parse_imm(args[1], line))
        )
    elif mnemonic == "ldimm":
        instructions.extend(
            _expand_ldimm(_parse_register(args[0], line), _parse_imm(args[1], line))
        )
    elif mnemonic in _REG_REG_REG:
        instructions.append(
            Instruction(
                _REG_REG_REG[mnemonic],
                _parse_register(args[0], line),
                _parse_register(args[1], line),
                _parse_register(args[2], line),
            )
        )
    elif mnemonic in _REG_REG_IMM:
        imm = _parse_imm(args[2], line)
        if not 0 <= imm <= 0xFF:
            raise AssemblerError(f"immediate {imm} out of range in {line!r}")
        instructions.append(
            Instruction(
                _REG_REG_IMM[mnemonic],
                _parse_register(args[0], line),
                _parse_register(args[1], line),
                imm,
            )
        )
    elif mnemonic in _MEMOPS:
        reg = _parse_register(args[0], line)
        base, imm = _parse_mem(args[1:], line)
        instructions.append(Instruction(_MEMOPS[mnemonic], reg, base, imm))
    elif mnemonic in _BRANCHES:
        opcode = _BRANCHES[mnemonic]
        if opcode is Opcode.B:
            reg, label = 0, args[0]
        else:
            reg, label = _parse_register(args[0], line), args[1]
        # Record a fixup; offset resolved in pass two.
        pending_branches.append((len(instructions), label, opcode, reg))
        instructions.append(None)  # placeholder
    elif mnemonic == "dczva":
        instructions.append(
            Instruction(Opcode.DCZVA, _parse_register(args[0], line))
        )
    elif mnemonic == "vfill":
        instructions.append(
            Instruction(Opcode.VFILL, _parse_vector(args[0], line),
                        _parse_imm(args[1], line))
        )
    elif mnemonic == "vins":
        instructions.append(
            Instruction(
                Opcode.VINS,
                _parse_vector(args[0], line),
                _parse_imm(args[1], line),
                _parse_register(args[2], line),
            )
        )
    elif mnemonic == "vext":
        instructions.append(
            Instruction(
                Opcode.VEXT,
                _parse_register(args[0], line),
                _parse_vector(args[1], line),
                _parse_imm(args[2], line),
            )
        )
    else:
        raise AssemblerError(f"unknown mnemonic {mnemonic!r} in {line!r}")


def assemble(source: str) -> AssembledProgram:
    """Assemble source text into machine code.

    Raises :class:`~repro.errors.AssemblerError` on any syntax problem,
    unknown mnemonic, duplicate label, or out-of-range operand.
    """
    instructions: list[Instruction | None] = []
    labels: dict[str, int] = {}
    pending: list[tuple[int, str, Opcode, int]] = []

    for raw_line in source.splitlines():
        line = _strip(raw_line)
        if not line:
            continue
        while line.split(maxsplit=1) and line.split(maxsplit=1)[0].endswith(":"):
            head, _, rest = line.partition(":")
            head = head.strip()
            if not _LABEL_RE.fullmatch(head):
                raise AssemblerError(f"bad label {head!r}")
            if head in labels:
                raise AssemblerError(f"duplicate label {head!r}")
            labels[head] = len(instructions) * 4
            line = rest.strip()
            if not line:
                break
        if line:
            _parse_line(line, pending, instructions)

    for position, label, opcode, reg in pending:
        if label not in labels:
            raise AssemblerError(f"undefined label {label!r}")
        offset = labels[label] // 4 - position
        b, c = branch_fields(offset)
        instructions[position] = Instruction(opcode, reg, b, c)

    machine_code = b"".join(encode(i) for i in instructions)  # type: ignore[arg-type]
    return AssembledProgram(machine_code=machine_code, labels=labels, source=source)
