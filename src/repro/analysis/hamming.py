"""Bit-error metrics over extracted memory images.

The paper reports its results as Hamming-distance statistics: Table 1's
~50 % cold boot errors, the ~0.10 fractional HD between power-up states,
Figure 10's 512-bit-granularity error profile over the iRAM.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError


def _as_bits(data: bytes | np.ndarray) -> np.ndarray:
    if isinstance(data, np.ndarray):
        return data.astype(np.uint8) & 1
    return np.unpackbits(np.frombuffer(bytes(data), dtype=np.uint8),
                         bitorder="little")


def hamming_distance(a: bytes | np.ndarray, b: bytes | np.ndarray) -> int:
    """Number of differing bits between two equal-length images."""
    bits_a, bits_b = _as_bits(a), _as_bits(b)
    if len(bits_a) != len(bits_b):
        raise ReproError(
            f"image sizes differ: {len(bits_a)} vs {len(bits_b)} bits"
        )
    return int(np.count_nonzero(bits_a != bits_b))


def fractional_hamming_distance(
    a: bytes | np.ndarray, b: bytes | np.ndarray
) -> float:
    """Hamming distance normalised to [0, 1]."""
    bits_a = _as_bits(a)
    if bits_a.size == 0:
        raise ReproError("cannot compare empty images")
    return hamming_distance(a, b) / bits_a.size


def bit_error_percent(
    reference: bytes | np.ndarray, observed: bytes | np.ndarray
) -> float:
    """Error percentage the way the paper's Table 1 quotes it."""
    return 100.0 * fractional_hamming_distance(reference, observed)


def block_hamming_profile(
    reference: bytes | np.ndarray,
    observed: bytes | np.ndarray,
    block_bits: int = 512,
) -> np.ndarray:
    """Per-block Hamming distances (Figure 10's 512-bit granularity).

    Returns an integer array with one entry per ``block_bits`` chunk;
    a trailing partial block is counted as its own entry.
    """
    if block_bits <= 0:
        raise ReproError("block size must be positive")
    bits_a, bits_b = _as_bits(reference), _as_bits(observed)
    if len(bits_a) != len(bits_b):
        raise ReproError("image sizes differ")
    diff = (bits_a != bits_b).astype(np.int64)
    n_blocks = (diff.size + block_bits - 1) // block_bits
    padded = np.zeros(n_blocks * block_bits, dtype=np.int64)
    padded[: diff.size] = diff
    return padded.reshape(n_blocks, block_bits).sum(axis=1)
