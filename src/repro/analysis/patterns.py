"""Byte-pattern scans over raw memory images.

Table 4's accounting rule: an array element counts as extracted only
when its *entire* 8-byte value appears in the dumped cache image.  These
helpers implement that scan plus the repeated-byte line counts used by
the Figure 8 narrative ("the d-cache contains the expected pattern").
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..errors import ReproError


def find_all(haystack: bytes, needle: bytes) -> list[int]:
    """All (possibly overlapping) offsets of ``needle`` in ``haystack``."""
    if not needle:
        raise ReproError("empty needle")
    offsets = []
    position = haystack.find(needle)
    while position >= 0:
        offsets.append(position)
        position = haystack.find(needle, position + 1)
    return offsets


def find_aligned(haystack: bytes, needle: bytes, alignment: int) -> list[int]:
    """Offsets of ``needle`` that fall on ``alignment``-byte boundaries."""
    if alignment <= 0:
        raise ReproError("alignment must be positive")
    return [o for o in find_all(haystack, needle) if o % alignment == 0]


def elements_present(
    image: bytes, elements: Sequence[bytes], alignment: int = 8
) -> set[int]:
    """Indices of ``elements`` whose full value appears in ``image``.

    This is Table 4's per-way scan.  The alignment constraint mirrors
    the natural placement of 8-byte stores inside cache lines.
    """
    present: set[int] = set()
    for index, element in enumerate(elements):
        if find_aligned(image, element, alignment):
            present.add(index)
    return present


def count_pattern_lines(image: bytes, pattern: int, line_bytes: int = 64) -> int:
    """Count whole cache lines filled with one repeated byte value."""
    if not 0 <= pattern <= 0xFF:
        raise ReproError("pattern must be a byte value")
    needle = bytes([pattern]) * line_bytes
    count = 0
    for start in range(0, len(image) - line_bytes + 1, line_bytes):
        if image[start : start + line_bytes] == needle:
            count += 1
    return count


def coverage_fraction(
    image: bytes, elements: Iterable[bytes], alignment: int = 8
) -> float:
    """Fraction of ``elements`` recovered from ``image``."""
    elements = list(elements)
    if not elements:
        raise ReproError("no elements to scan for")
    return len(elements_present(image, elements, alignment)) / len(elements)
