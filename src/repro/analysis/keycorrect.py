"""Error-correcting AES key reconstruction from decayed memory images.

The original cold boot attack recovered keys from DRAM dumps with bit
errors by exploiting the redundancy of the key schedule: the expanded
words are deterministic functions of the 16 key bytes, so a noisy
window over-determines the key massively.  Naive hill climbing over key
bits gets trapped by the expansion's avalanche, so the decoder works
structurally, like the original attack:

Each key word ``w0..w3`` can be derived several independent ways from
the observed window (AES-128 expansion relations)::

    w1 = obs(w1) = obs(w4)^obs(w5)      = obs(w4)^obs(w8)^obs(w9)
    w2 = obs(w2) = obs(w5)^obs(w6)      = obs(w5)^obs(w9)^obs(w10)
    w3 = obs(w3) = obs(w6)^obs(w7)      = obs(w6)^obs(w10)^obs(w11)
    w0 = obs(w0) = obs(w4)^g1(w3)       = obs(w8)^g2(obs(w7))^g1(w3)

(where ``g_r`` is SubWord∘RotWord ⊕ Rcon_r).  A sparse error corrupts
at most one estimate of any given bit, so per-bit majority voting over
the three estimates recovers the true word.  A bounded steepest-descent
pass then mops up any residual coincidences, and the result is accepted
only if the recomputed schedule sits within the expected noise floor of
the window.

:func:`reconstruct_with_decay_model` extends this to the DRAM decay
regime, where the attacker knows each cell's ground state: observed
bits that differ from ground are certainly genuine, and the voting
prefers estimates built purely from such trusted bits.
"""

from __future__ import annotations

import numpy as np

from ..crypto.aes import SBOX, schedule_bytes
from ..errors import ReproError
from .hamming import hamming_distance

#: Full AES-128 schedule length.
SCHEDULE_BYTES = 176

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _words(window: bytes) -> list[bytes]:
    return [window[i : i + 4] for i in range(0, len(window), 4)]


def _xor(*parts: bytes) -> bytes:
    out = bytearray(4)
    for part in parts:
        for i in range(4):
            out[i] ^= part[i]
    return bytes(out)


def _g(word: bytes, round_index: int) -> bytes:
    """SubWord(RotWord(word)) ^ Rcon[round_index] (1-based round)."""
    rotated = word[1:] + word[:1]
    substituted = bytes(SBOX[b] for b in rotated)
    return bytes(
        (substituted[0] ^ _RCON[round_index - 1],) + tuple(substituted[1:])
    )


def _g_inverse_free_w0(words: list[bytes], w3: bytes) -> list[bytes]:
    """The three independent estimates of key word w0."""
    return [
        words[0],
        _xor(words[4], _g(w3, 1)),
        _xor(words[8], _g(words[7], 2), _g(w3, 1)),
    ]


def _bit_majority(estimates: list[bytes]) -> bytes:
    """Per-bit majority over an odd number of 4-byte estimates."""
    stacked = np.stack(
        [
            np.unpackbits(np.frombuffer(e, dtype=np.uint8), bitorder="little")
            for e in estimates
        ]
    )
    voted = (stacked.sum(axis=0) * 2 > len(estimates)).astype(np.uint8)
    return np.packbits(voted, bitorder="little").tobytes()


def _vote_pair(primary: bytes, secondary: bytes, observed: bytes) -> bytes:
    """Two-estimate vote: agreement wins, disagreement keeps observed."""
    p = np.unpackbits(np.frombuffer(primary, dtype=np.uint8), bitorder="little")
    s = np.unpackbits(np.frombuffer(secondary, dtype=np.uint8), bitorder="little")
    o = np.unpackbits(np.frombuffer(observed, dtype=np.uint8), bitorder="little")
    voted = np.where(p == s, p, o)
    return np.packbits(voted, bitorder="little").tobytes()


def _repair_window(window: bytes) -> bytes:
    """One belief-propagation round over the whole schedule.

    Every expanded word is re-estimated from its own backward and
    forward relations and majority-voted against the observed value,
    which scrubs sparse errors out of the words the key vote reads.
    """
    words = _words(window)
    repaired = list(words)
    for i in range(4, 44):
        estimates = [words[i]]
        if i % 4 != 0:
            estimates.append(_xor(words[i - 4], words[i - 1]))
        else:
            estimates.append(_xor(words[i - 4], _g(words[i - 1], i // 4)))
        j = i + 4
        if j <= 43:
            if j % 4 != 0:
                estimates.append(_xor(words[j], words[j - 1]))
            else:
                estimates.append(_xor(words[j], _g(words[j - 1], j // 4)))
        if len(estimates) == 3:
            repaired[i] = _bit_majority(estimates)
        else:
            repaired[i] = _vote_pair(estimates[0], estimates[1], words[i])
    return b"".join(repaired)


def _voted_key(window: bytes) -> bytes:
    """Structural consistency-voting reconstruction of the key words."""
    words = _words(window)
    w1 = _bit_majority(
        [words[1], _xor(words[4], words[5]), _xor(words[4], words[8], words[9])]
    )
    w2 = _bit_majority(
        [words[2], _xor(words[5], words[6]), _xor(words[5], words[9], words[10])]
    )
    w3 = _bit_majority(
        [words[3], _xor(words[6], words[7]), _xor(words[6], words[10], words[11])]
    )
    w0 = _bit_majority(_g_inverse_free_w0(words, w3))
    return w0 + w1 + w2 + w3


def _schedule_distance(key: bytes, window: bytes) -> int:
    return hamming_distance(schedule_bytes(key), window)


def _steepest_descent(
    key: bytes, score, max_passes: int
) -> tuple[bytes, int]:
    """Single-best-flip descent over the 128 key bits."""
    current = bytearray(key)
    best = score(bytes(current))
    for _ in range(max_passes):
        if best == 0:
            break
        best_bit = -1
        best_candidate = best
        for bit in range(128):
            byte_index, bit_index = divmod(bit, 8)
            current[byte_index] ^= 1 << bit_index
            candidate = score(bytes(current))
            current[byte_index] ^= 1 << bit_index
            if candidate < best_candidate:
                best_candidate = candidate
                best_bit = bit
        if best_bit < 0:
            break
        byte_index, bit_index = divmod(best_bit, 8)
        current[byte_index] ^= 1 << bit_index
        best = best_candidate
    return bytes(current), best


def _pair_kick(key: bytes, score, shortlist: int = 12) -> tuple[bytes, int]:
    """Escape a single-flip local minimum with one two-bit move.

    Ranks all single flips, then evaluates every pair among the most
    promising bits — the classic fix for XOR-coupled error pairs that
    no single flip improves.
    """
    current = bytearray(key)
    base = score(bytes(current))
    singles = []
    for bit in range(128):
        byte_index, bit_index = divmod(bit, 8)
        current[byte_index] ^= 1 << bit_index
        singles.append((score(bytes(current)), bit))
        current[byte_index] ^= 1 << bit_index
    singles.sort()
    best = base
    best_pair: tuple[int, int] | None = None
    top = [bit for _score, bit in singles[:shortlist]]
    for first_index in range(len(top)):
        for second_index in range(first_index + 1, len(top)):
            for bit in (top[first_index], top[second_index]):
                byte_index, bit_index = divmod(bit, 8)
                current[byte_index] ^= 1 << bit_index
            candidate = score(bytes(current))
            if candidate < best:
                best = candidate
                best_pair = (top[first_index], top[second_index])
            for bit in (top[first_index], top[second_index]):
                byte_index, bit_index = divmod(bit, 8)
                current[byte_index] ^= 1 << bit_index
    if best_pair is None:
        return key, base
    for bit in best_pair:
        byte_index, bit_index = divmod(bit, 8)
        current[byte_index] ^= 1 << bit_index
    return bytes(current), best


def reconstruct_aes128_key(
    window: bytes,
    max_passes: int = 6,
    accept_threshold_bits: int = 24,
) -> bytes | None:
    """Reconstruct an AES-128 key from a noisy 176-byte schedule window.

    Handles sparse unbiased bit errors anywhere in the window —
    including inside the key bytes themselves.  Returns None when the
    residual distance never drops below ``accept_threshold_bits`` (the
    window is probably not a key schedule at all).
    """
    if len(window) != SCHEDULE_BYTES:
        raise ReproError(f"window must be {SCHEDULE_BYTES} bytes")
    repaired = _repair_window(window)
    twice_repaired = _repair_window(repaired)
    candidates = [
        _voted_key(twice_repaired),
        _voted_key(repaired),
        _voted_key(window),
        twice_repaired[:16],
        repaired[:16],
        window[:16],
    ]
    best_key: bytes | None = None
    best_score = accept_threshold_bits + 1
    scorer = lambda k: _schedule_distance(k, window)  # noqa: E731
    for candidate in candidates:
        refined, score = _steepest_descent(candidate, scorer, max_passes)
        if score > accept_threshold_bits:
            # Stalled above the noise floor: try one two-bit escape,
            # then resume the descent from there.
            kicked, kicked_score = _pair_kick(refined, scorer)
            if kicked_score < score:
                refined, score = _steepest_descent(
                    kicked, scorer, max_passes
                )
        if score < best_score:
            best_score = score
            best_key = refined
        if best_score <= accept_threshold_bits:
            break
    return best_key if best_score <= accept_threshold_bits else None


def reconstruct_with_decay_model(
    window: bytes,
    ground_state: bytes,
    max_peel_iterations: int = 64,
    max_passes: int = 12,
) -> bytes | None:
    """DRAM decoder: exploit the known per-cell decay direction.

    ``ground_state`` gives each bit's fully-decayed value (0 for true
    cells, 1 for anti-cells).  An observed bit that differs from its
    ground state must be genuine data; a bit at ground state is either
    genuine or decayed — an *erasure* with a known fallback value.

    Decoding is iterative peeling over the schedule's relations:

    * within a round (``i % 4 != 0``): ``w[i] = w[i-4] ^ w[i-1]`` is a
      per-bit XOR triple — any bit follows from the other two;
    * at round boundaries (``i % 4 == 0``): per byte ``j``,
      ``w[i][j] = w[i-4][j] ^ SBOX[w[i-1][(j+1)%4]] (^ Rcon)`` — any of
      the three bytes follows from the other two (via INV_SBOX).

    Peeling repeats until fixpoint; unresolved bits fall back to their
    ground value, and a bounded trusted-penalty descent mops up.  Only a
    key whose recomputed schedule matches every trusted bit is returned.
    """
    if len(window) != SCHEDULE_BYTES or len(ground_state) != SCHEDULE_BYTES:
        raise ReproError(
            f"window and ground state must be {SCHEDULE_BYTES} bytes"
        )
    observed = np.unpackbits(
        np.frombuffer(window, dtype=np.uint8), bitorder="little"
    )
    ground = np.unpackbits(
        np.frombuffer(ground_state, dtype=np.uint8), bitorder="little"
    )
    bits = observed.copy()
    known = observed != ground  # trusted bits are exactly the non-ground ones

    def bit_slice(word: int, byte: int | None = None):
        if byte is None:
            start = word * 32
            return slice(start, start + 32)
        start = word * 32 + byte * 8
        return slice(start, start + 8)

    def byte_value(word: int, byte: int) -> int:
        chunk = bits[bit_slice(word, byte)]
        return int(np.packbits(chunk, bitorder="little")[0])

    def set_byte(word: int, byte: int, value: int) -> None:
        chunk = np.unpackbits(np.uint8(value), bitorder="little")
        bits[bit_slice(word, byte)] = chunk
        known[bit_slice(word, byte)] = True

    inv_sbox = [0] * 256
    for source, target in enumerate(SBOX):
        inv_sbox[target] = source

    for _ in range(max_peel_iterations):
        changed = False
        for i in range(4, 44):
            if i % 4 != 0:
                # Linear per-bit triple: w[i] ^ w[i-4] ^ w[i-1] == 0.
                slices = [bit_slice(i), bit_slice(i - 4), bit_slice(i - 1)]
                masks = [known[s] for s in slices]
                values = [bits[s] for s in slices]
                for target in range(3):
                    others = [k for k in range(3) if k != target]
                    derivable = (
                        masks[others[0]] & masks[others[1]] & ~masks[target]
                    )
                    if derivable.any():
                        derived = values[others[0]] ^ values[others[1]]
                        bits[slices[target]] = np.where(
                            derivable, derived, values[target]
                        )
                        known[slices[target]] |= derivable
                        changed = True
            else:
                rcon = _RCON[i // 4 - 1]
                for j in range(4):
                    source_byte = (j + 1) % 4
                    adjust = rcon if j == 0 else 0
                    know_out = known[bit_slice(i, j)].all()
                    know_prev = known[bit_slice(i - 4, j)].all()
                    know_in = known[bit_slice(i - 1, source_byte)].all()
                    if know_prev and know_in and not know_out:
                        set_byte(
                            i, j,
                            byte_value(i - 4, j)
                            ^ SBOX[byte_value(i - 1, source_byte)]
                            ^ adjust,
                        )
                        changed = True
                    elif know_out and know_in and not know_prev:
                        set_byte(
                            i - 4, j,
                            byte_value(i, j)
                            ^ SBOX[byte_value(i - 1, source_byte)]
                            ^ adjust,
                        )
                        changed = True
                    elif know_out and know_prev and not know_in:
                        set_byte(
                            i - 1, source_byte,
                            inv_sbox[
                                byte_value(i, j)
                                ^ byte_value(i - 4, j)
                                ^ adjust
                            ],
                        )
                        changed = True
        if not changed:
            break

    # Phase 2: Gallager-style message passing for the bits hard peeling
    # could not reach.  Every unresolved bit keeps its ground-state
    # fallback as a weak prior and takes votes from the linear triples
    # it participates in, using the current (partially corrected) word
    # values; trusted/peeled bits never move.  A few sweeps resolve the
    # moderate-decay regime the pure erasure peel cannot.
    frozen = known.copy()
    for _ in range(16):
        votes = np.zeros(observed.size, dtype=np.float32)
        counts = np.zeros(observed.size, dtype=np.float32)
        for i in range(4, 44):
            if i % 4 == 0:
                continue
            s_out = bit_slice(i)
            s_a = bit_slice(i - 4)
            s_b = bit_slice(i - 1)
            predictions = (
                (bits[s_a] ^ bits[s_b], s_out),
                (bits[s_out] ^ bits[s_b], s_a),
                (bits[s_out] ^ bits[s_a], s_b),
            )
            for predicted, target in predictions:
                votes[target] += predicted
                counts[target] += 1.0
        # Ground prior: half a vote toward the fallback value.
        votes += ground * 0.5
        counts += 0.5
        updated = (votes * 2 > counts).astype(np.uint8)
        movable = ~frozen
        if (bits[movable] == updated[movable]).all():
            break
        bits[movable] = updated[movable]

    trustworthy = observed != ground

    def penalty(key: bytes) -> int:
        expected = np.unpackbits(
            np.frombuffer(schedule_bytes(key), dtype=np.uint8),
            bitorder="little",
        )
        return int(np.count_nonzero(trustworthy & (expected != observed)))

    peeled_key = np.packbits(bits[:128], bitorder="little").tobytes()
    refined, score = _steepest_descent(peeled_key, penalty, max_passes)
    return refined if score == 0 else None
