"""AES key-schedule search over extracted memory images.

The original cold boot work located AES keys in DRAM dumps by scanning
for regions whose layout is consistent with an AES key expansion, then
correcting bit errors against the expansion's redundancy.  The Volt Boot
paper notes this search becomes *trivial* for its attack because images
come back error-free (§5.1) — but also notes that for noisy SRAM images
the bistable-cell property makes correction harder than on DRAM (§9.2),
because decayed cells don't collapse toward a known ground state.

:func:`search_aes128_schedules` supports both regimes: with
``max_fraction_errors=0`` it is an exact scan; with a tolerance it scores
each candidate window by the Hamming distance between the observed bytes
and the schedule recomputed from the window's first 16 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.aes import schedule_bytes
from ..errors import ReproError
from .hamming import fractional_hamming_distance

#: Bytes in a full AES-128 schedule (11 round keys × 16 bytes).
AES128_SCHEDULE_BYTES = 176


@dataclass(frozen=True)
class KeyScheduleHit:
    """One candidate AES-128 key found in a memory image."""

    offset: int
    key: bytes
    fraction_errors: float

    @property
    def exact(self) -> bool:
        """Whether the observed window matched the expansion perfectly."""
        return self.fraction_errors <= 0.0


def search_aes128_schedules(
    image: bytes,
    alignment: int = 4,
    max_fraction_errors: float = 0.0,
    quick_reject_bytes: int = 32,
) -> list[KeyScheduleHit]:
    """Scan ``image`` for AES-128 key schedules.

    For every ``alignment``-aligned offset, the first 16 bytes of the
    window are treated as a candidate key; the full 176-byte expansion is
    recomputed and compared against the observed window.  Windows within
    ``max_fraction_errors`` (fractional Hamming distance) are reported,
    best first.

    ``quick_reject_bytes`` controls a cheap pre-filter: the second round
    key is recomputed first and candidates whose initial bytes diverge
    wildly are skipped before paying for the full expansion.  Exact
    searches (tolerance 0) use pure byte comparison and are fast.
    """
    if alignment <= 0:
        raise ReproError("alignment must be positive")
    if not 0.0 <= max_fraction_errors < 0.5:
        raise ReproError("error tolerance must be in [0, 0.5)")
    hits: list[KeyScheduleHit] = []
    limit = len(image) - AES128_SCHEDULE_BYTES
    for offset in range(0, max(limit + 1, 0), alignment):
        window = image[offset : offset + AES128_SCHEDULE_BYTES]
        key = window[:16]
        expected = schedule_bytes(key)
        if max_fraction_errors <= 0.0:
            if window == expected:
                hits.append(KeyScheduleHit(offset, key, 0.0))
            continue
        # Quick reject on the first bytes after the key itself.
        head = slice(16, 16 + quick_reject_bytes)
        head_err = fractional_hamming_distance(window[head], expected[head])
        if head_err > max_fraction_errors * 3:
            continue
        errors = fractional_hamming_distance(window, expected)
        if errors <= max_fraction_errors:
            hits.append(KeyScheduleHit(offset, key, errors))
    hits.sort(key=lambda hit: (hit.fraction_errors, hit.offset))
    return hits


def recover_key_from_registers(register_values: list[bytes]) -> KeyScheduleHit | None:
    """Recover an AES-128 key parked TRESOR-style in 128-bit registers.

    Scans consecutive 16-byte register values for a run consistent with
    a key expansion (the first register of the run is the key itself).
    """
    for start in range(0, len(register_values)):
        candidate = register_values[start]
        if len(candidate) != 16:
            raise ReproError("register values must be 16 bytes")
        expected = schedule_bytes(candidate)
        observed = b"".join(
            register_values[start : start + AES128_SCHEDULE_BYTES // 16]
        )
        if len(observed) == AES128_SCHEDULE_BYTES and observed == expected:
            return KeyScheduleHit(start, candidate, 0.0)
    return None
