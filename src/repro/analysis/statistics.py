"""Trial aggregation for repeated experiments.

The paper averages three trials per Table 4 configuration and reports
per-core means; :class:`TrialStats` provides exactly that shape of
summary for any scalar series.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

from ..errors import ReproError


@dataclass(frozen=True)
class TrialStats:
    """Mean / min / max / sample-stddev of one measured series."""

    mean: float
    minimum: float
    maximum: float
    stddev: float
    n: int


def summarize_trials(values: list[float]) -> TrialStats:
    """Aggregate repeated-trial measurements."""
    if not values:
        raise ReproError("no trial values to summarise")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        variance = 0.0
    return TrialStats(
        mean=mean,
        minimum=min(values),
        maximum=max(values),
        stddev=sqrt(variance),
        n=n,
    )
