"""Bit-image rendering — the paper's cache/iRAM snapshot figures.

Figures 3, 7, 8, and 9 visualise raw memory images as black/white bit
matrices.  Headless reproduction renders the same matrices as ASCII art
(for terminals and logs) and binary PGM files (for any image viewer).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import AnalysisError


def bit_matrix(data: bytes | np.ndarray, width: int) -> np.ndarray:
    """Reshape an image's bits into rows of ``width`` bits.

    Trailing bits that do not fill a row are dropped, matching how the
    paper crops its snapshots.
    """
    if width <= 0:
        raise AnalysisError("width must be positive")
    if isinstance(data, np.ndarray):
        bits = data.astype(np.uint8) & 1
    else:
        bits = np.unpackbits(
            np.frombuffer(bytes(data), dtype=np.uint8), bitorder="little"
        )
    rows = bits.size // width
    if rows == 0:
        raise AnalysisError(f"image has fewer than {width} bits")
    return bits[: rows * width].reshape(rows, width)


def ones_fraction(data: bytes | np.ndarray) -> float:
    """Fraction of 1 bits — ~0.5 signals an uninitialised SRAM image."""
    if isinstance(data, np.ndarray):
        bits = data.astype(np.uint8) & 1
    else:
        bits = np.unpackbits(
            np.frombuffer(bytes(data), dtype=np.uint8), bitorder="little"
        )
    if bits.size == 0:
        raise AnalysisError("empty image")
    return float(bits.mean())


def ascii_bit_image(
    data: bytes | np.ndarray,
    width: int = 128,
    max_rows: int = 32,
    downsample: int | None = None,
) -> str:
    """Render a bit image as ASCII art ('#' = 1, '.' = 0).

    ``downsample`` averages square blocks before rendering, using
    ' .:*#' shading — useful for whole-way snapshots that would
    otherwise be thousands of rows.
    """
    matrix = bit_matrix(data, width)
    if downsample and downsample > 1:
        rows = (matrix.shape[0] // downsample) * downsample
        cols = (matrix.shape[1] // downsample) * downsample
        blocks = matrix[:rows, :cols].reshape(
            rows // downsample, downsample, cols // downsample, downsample
        )
        density = blocks.mean(axis=(1, 3))
        shades = " .:*#"
        indices = np.minimum(
            (density * len(shades)).astype(int), len(shades) - 1
        )
        lines = ["".join(shades[i] for i in row) for row in indices[:max_rows]]
    else:
        lines = [
            "".join("#" if bit else "." for bit in row)
            for row in matrix[:max_rows]
        ]
    return "\n".join(lines)


def write_pgm(
    data: bytes | np.ndarray, width: int, path: str | Path
) -> Path:
    """Write a bit image as a binary PGM (P5) file; returns the path."""
    matrix = bit_matrix(data, width)
    pixels = ((1 - matrix) * 255).astype(np.uint8)  # 1-bits render black
    path = Path(path)
    header = f"P5\n{matrix.shape[1]} {matrix.shape[0]}\n255\n".encode("ascii")
    path.write_bytes(header + pixels.tobytes())
    return path


def write_gray_pgm(
    values: np.ndarray, path: str | Path, scale: int = 32
) -> Path:
    """Write a small value matrix (0..1) as an upscaled grayscale PGM.

    Heat-map companion to :func:`write_pgm`: each matrix cell becomes a
    ``scale`` × ``scale`` pixel block, high values rendering dark (so a
    glitch-campaign success map reads like the paper's bit snapshots:
    dark = signal).
    """
    try:
        matrix = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as error:
        # Ragged rows (or non-numeric cells) must surface as the typed
        # taxonomy error, not numpy's conversion failure.
        raise AnalysisError(
            f"value matrix is not a rectangular numeric grid: {error}"
        ) from error
    if matrix.ndim != 2:
        raise AnalysisError(
            f"value matrix must be 2-D, got {matrix.ndim}-D "
            f"shape {matrix.shape}"
        )
    if matrix.size == 0:
        raise AnalysisError(
            f"value matrix is empty (shape {matrix.shape}); nothing to "
            f"render"
        )
    if scale <= 0:
        raise AnalysisError("scale must be positive")
    clipped = np.clip(matrix, 0.0, 1.0)
    pixels = ((1.0 - clipped) * 255.0).astype(np.uint8)
    pixels = np.repeat(np.repeat(pixels, scale, axis=0), scale, axis=1)
    path = Path(path)
    header = (
        f"P5\n{pixels.shape[1]} {pixels.shape[0]}\n255\n".encode("ascii")
    )
    path.write_bytes(header + pixels.tobytes())
    return path
