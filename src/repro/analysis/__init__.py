"""Post-extraction analysis: the attacker's forensics toolbox.

Everything the paper does with a dumped memory image lives here:

* :mod:`~repro.analysis.hamming` — bit-error metrics (fractional Hamming
  distance, per-block error profiles for Figure 10);
* :mod:`~repro.analysis.imaging` — bit-image rendering (the cache
  snapshot figures) as ASCII art and PGM files;
* :mod:`~repro.analysis.patterns` — scans for known byte patterns and
  array elements in raw way images (Table 4's accounting);
* :mod:`~repro.analysis.keysearch` — AES key-schedule search over memory
  images, the Halderman-style payoff step;
* :mod:`~repro.analysis.statistics` — trial aggregation helpers;
* :mod:`~repro.analysis.bitmap` — the deterministic 512×512 test bitmap
  stored into the i.MX53 iRAM (Figures 9/10).
"""

from .bitmap import test_bitmap_bytes, test_bitmap_matrix
from .hamming import (
    bit_error_percent,
    block_hamming_profile,
    fractional_hamming_distance,
    hamming_distance,
)
from .imaging import ascii_bit_image, bit_matrix, ones_fraction, write_pgm
from .keysearch import KeyScheduleHit, search_aes128_schedules
from .patterns import (
    count_pattern_lines,
    elements_present,
    find_aligned,
    find_all,
)
from .statistics import TrialStats, summarize_trials

__all__ = [
    "hamming_distance",
    "fractional_hamming_distance",
    "bit_error_percent",
    "block_hamming_profile",
    "bit_matrix",
    "ascii_bit_image",
    "ones_fraction",
    "write_pgm",
    "find_all",
    "find_aligned",
    "elements_present",
    "count_pattern_lines",
    "KeyScheduleHit",
    "search_aes128_schedules",
    "TrialStats",
    "summarize_trials",
    "test_bitmap_bytes",
    "test_bitmap_matrix",
]
