"""The deterministic 512×512 test bitmap (Figures 9/10 payload).

The paper stores four copies of a 512×512 1-bpp bitmap (128 KB total)
into the i.MX53 iRAM and measures how faithfully Volt Boot recovers it.
Any fixed, visually-structured bit pattern serves; we synthesise one
from geometric primitives so the recovered panels are recognisable at a
glance and the build needs no image assets.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError

#: Bitmap edge length in pixels (paper: 512×512).
BITMAP_SIDE = 512

#: Bytes per bitmap (1 bit per pixel).
BITMAP_BYTES = BITMAP_SIDE * BITMAP_SIDE // 8


def test_bitmap_matrix(side: int = BITMAP_SIDE) -> np.ndarray:
    """A ``side``×``side`` uint8 0/1 matrix with recognisable structure.

    Concentric rings, a diagonal stripe field, and a dark border — high
    spatial structure so clobbered regions stand out in the recovered
    panels.
    """
    if side <= 0 or side % 8:
        raise ReproError("bitmap side must be a positive multiple of 8")
    ys, xs = np.mgrid[0:side, 0:side]
    cx = cy = (side - 1) / 2.0
    radius = np.hypot(xs - cx, ys - cy)
    rings = ((radius // (side / 16)) % 2).astype(np.uint8)
    stripes = (((xs + ys) // (side / 32)) % 2).astype(np.uint8)
    quadrant = ((xs < cx) ^ (ys < cy)).astype(np.uint8)
    image = np.where(quadrant == 1, rings, stripes).astype(np.uint8)
    border = side // 32
    image[:border, :] = 1
    image[-border:, :] = 1
    image[:, :border] = 1
    image[:, -border:] = 1
    return image


def test_bitmap_bytes(side: int = BITMAP_SIDE) -> bytes:
    """The bitmap packed row-major, LSB-first — ready to store in iRAM."""
    matrix = test_bitmap_matrix(side)
    return np.packbits(matrix.reshape(-1), bitorder="little").tobytes()
