"""SRAM power-up PUFs and their exposure to Volt Boot.

An SRAM PUF (paper refs [19], [36]) uses the manufacturing-variation
skew of each cell's power-up state as a device fingerprint: enrollment
majority-votes several power-ups into a reference response; later
authentications accept a fresh power-up whose fractional Hamming
distance stays under a threshold (noisy cells flip, skewed cells don't).

Volt Boot gives an attacker two levers against this scheme:

* **readout** — the "secret" fingerprint can be dumped through the
  debug interface after an ordinary power-up, like any other SRAM
  content; and
* **freezing** — holding the rail prevents a *fresh* power-up entirely,
  so the device re-presents a stale (attacker-chosen) response.
"""

from __future__ import annotations

import numpy as np

from ..circuits.sram import SramArray
from ..errors import ReproError


class SramPuf:
    """Power-up PUF over (a slice of) one SRAM array."""

    def __init__(
        self,
        array: SramArray,
        offset_bits: int = 0,
        length_bits: int = 1024,
        auth_threshold: float = 0.20,
    ) -> None:
        if length_bits <= 0 or offset_bits < 0:
            raise ReproError("PUF window must be non-empty and non-negative")
        if offset_bits + length_bits > array.n_bits:
            raise ReproError("PUF window exceeds the array")
        if not 0.0 < auth_threshold < 0.5:
            raise ReproError("auth threshold must be in (0, 0.5)")
        self.array = array
        self.offset_bits = offset_bits
        self.length_bits = length_bits
        self.auth_threshold = auth_threshold
        self._reference: np.ndarray | None = None

    def _power_cycle(self) -> None:
        if self.array.powered:
            self.array.power_down()
        # A deliberate, long cut: the previous state fully decays.
        self.array.elapse_unpowered(1.0, 298.15)
        self.array.restore_power()

    def read_response(self, fresh_power_up: bool = True) -> np.ndarray:
        """One PUF response: the window's bits after a power-up."""
        if fresh_power_up:
            self._power_cycle()
        elif not self.array.powered:
            raise ReproError("stale readout needs a powered array")
        return self.array.read_bits(self.offset_bits, self.length_bits)

    def enroll(self, votes: int = 7) -> np.ndarray:
        """Majority-vote ``votes`` power-ups into the golden response."""
        if votes < 1 or votes % 2 == 0:
            raise ReproError("enrollment needs an odd, positive vote count")
        total = np.zeros(self.length_bits, dtype=np.int64)
        for _ in range(votes):
            total += self.read_response()
        self._reference = (total * 2 > votes).astype(np.uint8)
        return self._reference.copy()

    @property
    def reference(self) -> np.ndarray:
        """The enrolled golden response."""
        if self._reference is None:
            raise ReproError("PUF not enrolled")
        return self._reference.copy()

    def authenticate(self, response: np.ndarray | None = None) -> tuple[bool, float]:
        """Check a response (fresh power-up by default) against enrollment.

        Returns ``(accepted, fractional_distance)``.
        """
        if self._reference is None:
            raise ReproError("PUF not enrolled")
        if response is None:
            response = self.read_response()
        response = np.asarray(response, dtype=np.uint8) & 1
        if response.size != self.length_bits:
            raise ReproError("response length mismatch")
        distance = float(np.mean(response != self._reference))
        return distance <= self.auth_threshold, distance

    def clone_from_dump(self, dumped_bits: np.ndarray) -> "ClonedPuf":
        """Build an attacker-side clone from a Volt-Boot-dumped response."""
        return ClonedPuf(np.asarray(dumped_bits, dtype=np.uint8) & 1)


class ClonedPuf:
    """An attacker's software replica of a stolen PUF response."""

    def __init__(self, response: np.ndarray) -> None:
        self._response = response.copy()

    def read_response(self) -> np.ndarray:
        """Replay the stolen response (no physical noise at all)."""
        return self._response.copy()
