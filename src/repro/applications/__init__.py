"""Security applications of SRAM physics, and the attacks against them.

Paper §5.2.4 notes that SRAM's uninitialised startup state is left
alone partly because it has security uses — PUFs and TRNGs — and §9.2
surveys the remanence/imprinting attack literature Volt Boot improves
on.  This package implements both sides:

* :mod:`~repro.applications.puf` — an SRAM power-up PUF (enrollment,
  reconstruction, authentication) plus its cloning via Volt Boot;
* :mod:`~repro.applications.trng` — a power-up-noise TRNG with a von
  Neumann extractor;
* :mod:`~repro.applications.imprinting` — the decade-scale NBTI
  data-imprinting attack (the paper's §9.2 baseline);
* :mod:`~repro.applications.drv_fingerprint` — DRV-based chip
  identification (paper ref [20]).
"""

from .drv_fingerprint import DrvFingerprint, identify_chip, measure_drv_fingerprint
from .imprinting import ImprintingAttack, imprint_recovery_accuracy
from .puf import SramPuf
from .trng import PowerUpTrng

__all__ = [
    "SramPuf",
    "PowerUpTrng",
    "ImprintingAttack",
    "imprint_recovery_accuracy",
    "DrvFingerprint",
    "measure_drv_fingerprint",
    "identify_chip",
]
