"""DRV fingerprinting: chip identification from retention voltages.

Holcomb et al. (paper ref [20]) showed that the per-cell *data
retention voltage* is itself a process-variation fingerprint: write a
known pattern, step the supply voltage down, and record at which level
each cell collapses.  The resulting vector identifies the physical chip
even across temperature, and — unlike the power-up PUF — survives
software writes.

An attacker with a Volt Boot probe setup gets this measurement for
free: the probe already controls the rail, so stepping it down between
extractions sweeps out the fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.sram import SramArray
from ..errors import ReproError

#: Default supply-step schedule for the sweep (volts, descending).
DEFAULT_SWEEP_V = tuple(np.linspace(0.40, 0.12, 15).round(4).tolist())


@dataclass(frozen=True)
class DrvFingerprint:
    """The measured collapse-level index of each cell."""

    chip_label: str
    sweep_voltages: tuple[float, ...]
    collapse_level: np.ndarray  # index into sweep_voltages; -1 = survived

    def distance(self, other: "DrvFingerprint") -> float:
        """Mean absolute level difference between two fingerprints."""
        if self.collapse_level.size != other.collapse_level.size:
            raise ReproError("fingerprint sizes differ")
        return float(
            np.mean(np.abs(self.collapse_level - other.collapse_level))
        )


def measure_drv_fingerprint(
    array: SramArray,
    chip_label: str,
    sweep_voltages: tuple[float, ...] = DEFAULT_SWEEP_V,
    pattern: int = 0xAA,
    window_bits: int = 4096,
    arms_per_level: int = 2,
) -> DrvFingerprint:
    """Sweep the supply down and record each cell's collapse level.

    A collapsed cell falls back to its power-up preference, which can
    coincide with the written value, so each level is measured with
    complementary data arms (the pattern and its inverse), repeated
    ``arms_per_level`` times — a cell whose collapse escapes every arm
    is overwhelmingly unlikely.  The array is re-armed (re-powered and
    re-written) before each step so collapse at step *k* isolates the
    DRV band between adjacent voltages.
    """
    if window_bits > array.n_bits:
        raise ReproError("window exceeds the array")
    if list(sweep_voltages) != sorted(sweep_voltages, reverse=True):
        raise ReproError("sweep voltages must strictly descend")
    if arms_per_level < 1:
        raise ReproError("need at least one measurement arm per level")
    collapse = np.full(window_bits, -1, dtype=np.int16)
    base_bits = np.unpackbits(
        np.frombuffer(bytes([pattern]) * (window_bits // 8), dtype=np.uint8),
        bitorder="little",
    )
    arms = [base_bits, base_bits ^ 1] * arms_per_level
    for level, voltage in enumerate(sweep_voltages):
        flipped = np.zeros(window_bits, dtype=bool)
        for arm_bits in arms:
            if not array.powered:
                array.restore_power()
            else:
                array.set_supply_voltage(array.params.nominal_v)
            array.write_bits(0, arm_bits)
            array.set_supply_voltage(voltage)
            flipped |= array.read_bits(0, window_bits) != arm_bits
        fresh = flipped & (collapse == -1)
        collapse[fresh] = level
    return DrvFingerprint(
        chip_label=chip_label,
        sweep_voltages=tuple(sweep_voltages),
        collapse_level=collapse,
    )


def identify_chip(
    probe: DrvFingerprint, enrolled: list[DrvFingerprint]
) -> tuple[str, float]:
    """Match a fresh measurement against an enrolled population.

    Returns ``(best_label, margin)`` where margin is the runner-up
    distance minus the best distance (bigger = more confident).
    """
    if not enrolled:
        raise ReproError("no enrolled fingerprints")
    distances = sorted(
        (probe.distance(candidate), candidate.chip_label)
        for candidate in enrolled
    )
    best_distance, best_label = distances[0]
    runner_up = distances[1][0] if len(distances) > 1 else float("inf")
    return best_label, runner_up - best_distance
