"""The data-imprinting (circuit-aging) attack — paper §9.2's baseline.

If software leaves the same values in the same SRAM cells for years,
bias temperature instability gradually skews each cell's power-up
preference toward its held value.  An attacker who later samples many
power-ups can estimate each cell's wake probability and read the
imprinted ghost of the old data out of the aging shift.

The paper's contrast: these attacks "require data to remain in the same
SRAM cells with the same value for over a decade to have even modest
data recovery", while Volt Boot is instant and exact.  The experiment
built on this module reproduces exactly that trade-off curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.sram import SramArray
from ..errors import ReproError
from ..rng import from_entropy


@dataclass(frozen=True)
class ImprintingResult:
    """Outcome of one imprinting-attack attempt."""

    years_aged: float
    power_up_samples: int
    recovered_bits: np.ndarray
    confident_mask: np.ndarray
    accuracy_on_confident: float
    accuracy_overall: float


class ImprintingAttack:
    """Estimate imprinted data from repeated power-up sampling.

    The attacker power-cycles the device ``samples`` times, averages
    each cell's observed wake value, and compares it against the
    *expected* wake probability of an un-imprinted population (which is
    symmetric): cells whose empirical mean deviates toward 0 or 1 more
    than ``confidence_margin`` beyond the symmetric baseline are called
    as imprinted data.
    """

    def __init__(
        self,
        array: SramArray,
        samples: int = 25,
        confidence_margin: float = 0.12,
    ) -> None:
        if samples < 3:
            raise ReproError("imprinting estimation needs several samples")
        if not 0.0 < confidence_margin < 0.5:
            raise ReproError("confidence margin must be in (0, 0.5)")
        self.array = array
        self.samples = samples
        self.confidence_margin = confidence_margin

    def _power_cycle_image(self) -> np.ndarray:
        if self.array.powered:
            self.array.power_down()
        self.array.elapse_unpowered(1.0, 298.15)
        self.array.restore_power()
        return self.array.image()

    def run(self, reference: np.ndarray, years_aged: float) -> ImprintingResult:
        """Attack and score against the ground-truth ``reference`` bits."""
        reference = np.asarray(reference, dtype=np.uint8) & 1
        if reference.size != self.array.n_bits:
            raise ReproError("reference length must match the array")
        total = np.zeros(self.array.n_bits, dtype=np.float64)
        for _ in range(self.samples):
            total += self._power_cycle_image()
        mean = total / self.samples
        # Noisy cells centre on 0.5; skewed cells on ~0/1 regardless of
        # imprint.  Imprinting shows up as noisy cells drifting off 0.5
        # and weakly-skewed cells crossing over; we call a cell when its
        # mean clears the margin around 0.5.
        recovered = (mean > 0.5).astype(np.uint8)
        confident = np.abs(mean - 0.5) > self.confidence_margin
        overall = float(np.mean(recovered == reference))
        if confident.any():
            on_confident = float(
                np.mean(recovered[confident] == reference[confident])
            )
        else:
            on_confident = 0.5
        return ImprintingResult(
            years_aged=years_aged,
            power_up_samples=self.samples,
            recovered_bits=recovered,
            confident_mask=confident,
            accuracy_on_confident=on_confident,
            accuracy_overall=overall,
        )


def imprint_recovery_accuracy(
    seed: int,
    years: float,
    n_bits: int = 8 * 2048,
    samples: int = 25,
) -> ImprintingResult:
    """Age a fresh array holding random data, then attack it."""
    rng = from_entropy(seed)
    array = SramArray(n_bits, rng=from_entropy(seed + 1))
    array.power_up()
    data = rng.integers(0, 2, n_bits, dtype=np.uint8)
    array.write_bits(0, data)
    array.age(years)
    return ImprintingAttack(array, samples=samples).run(data, years)
