"""True random number generation from SRAM power-up noise.

Metastable SRAM cells flip a fresh coin at every power-up (paper ref
[19]); collecting their values across power cycles yields physical
entropy.  The generator below identifies noisy cells during a
calibration phase (cells that disagreed across calibration power-ups),
then harvests their bits through a von Neumann extractor to remove
residual bias.
"""

from __future__ import annotations

import numpy as np

from ..circuits.sram import SramArray
from ..errors import ReproError


class PowerUpTrng:
    """TRNG harvesting power-up noise from one SRAM array."""

    def __init__(self, array: SramArray, calibration_cycles: int = 5) -> None:
        if calibration_cycles < 2:
            raise ReproError("calibration needs at least two power-ups")
        self.array = array
        self.calibration_cycles = calibration_cycles
        self._noisy_index: np.ndarray | None = None

    def _power_cycle(self) -> np.ndarray:
        if self.array.powered:
            self.array.power_down()
        self.array.elapse_unpowered(1.0, 298.15)
        self.array.restore_power()
        return self.array.image()

    def calibrate(self) -> int:
        """Find the noisy-cell population; returns its size."""
        samples = np.stack(
            [self._power_cycle() for _ in range(self.calibration_cycles)]
        )
        disagree = samples.min(axis=0) != samples.max(axis=0)
        self._noisy_index = np.flatnonzero(disagree)
        return int(self._noisy_index.size)

    def raw_noise_bits(self) -> np.ndarray:
        """One power-up's worth of raw (unwhitened) noisy-cell bits."""
        if self._noisy_index is None:
            raise ReproError("TRNG not calibrated")
        image = self._power_cycle()
        return image[self._noisy_index]

    @staticmethod
    def von_neumann(bits: np.ndarray) -> np.ndarray:
        """Unbias a bit stream: 01 -> 0, 10 -> 1, 00/11 -> discard."""
        bits = np.asarray(bits, dtype=np.uint8) & 1
        pairs = bits[: len(bits) // 2 * 2].reshape(-1, 2)
        keep = pairs[:, 0] != pairs[:, 1]
        return pairs[keep, 0]

    def random_bytes(self, count: int, max_cycles: int = 200) -> bytes:
        """Harvest ``count`` whitened random bytes."""
        if count <= 0:
            raise ReproError("byte count must be positive")
        collected: list[np.ndarray] = []
        harvested = 0
        for _ in range(max_cycles):
            whitened = self.von_neumann(self.raw_noise_bits())
            collected.append(whitened)
            harvested += whitened.size
            if harvested >= count * 8:
                break
        else:
            raise ReproError(
                f"could not harvest {count} bytes in {max_cycles} power cycles"
            )
        stream = np.concatenate(collected)[: count * 8]
        return np.packbits(stream, bitorder="little").tobytes()
