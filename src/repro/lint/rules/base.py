"""Rule framework: per-file context, the rule base class, the registry."""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import ClassVar, Iterator

from ...errors import LintError
from ..findings import Finding


def dotted_name(node: ast.AST) -> str | None:
    """Render a ``Name``/``Attribute`` chain as ``"a.b.c"``, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file."""

    path: str
    source: str
    tree: ast.Module
    #: POSIX-style path used for role matching (exemptions, scoping).
    posix: str = field(init=False)

    def __post_init__(self) -> None:
        self.posix = self.path.replace("\\", "/")

    def matches_module(self, *tails: str) -> bool:
        """Whether this file *is* one of the named library modules.

        Matching is suffix-based so it works from any invocation
        directory: ``repro/rng.py`` matches ``src/repro/rng.py`` and a
        bare ``rng.py`` linted from inside the package.
        """
        for tail in tails:
            if (
                self.posix == tail
                or self.posix.endswith("/" + tail)
                or tail.endswith("/" + self.posix)
            ):
                return True
        return False

    def in_dir(self, name: str) -> bool:
        """Whether the file lives under a directory called ``name``."""
        return f"/{name}/" in f"/{self.posix}"


class Rule(ABC):
    """One lint rule: a stable id plus an AST check.

    Subclasses set the class attributes and implement :meth:`visit`;
    :meth:`exempt` opts whole files out (the quarantine files a rule
    itself sanctions, e.g. ``rng.py`` for the determinism rule).
    """

    id: ClassVar[str]
    name: ClassVar[str]
    severity: ClassVar[str] = "error"
    description: ClassVar[str]

    def exempt(self, ctx: FileContext) -> bool:
        """Whether this rule skips ``ctx``'s file entirely."""
        return False

    @abstractmethod
    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Run the rule unless the file is exempt."""
        if not self.exempt(ctx):
            yield from self.visit(ctx)

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a finding for ``node`` in ``ctx``'s file."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            severity=self.severity,
            message=message,
            hint=hint,
        )


class FlowRule(ABC):
    """One project-wide rule: checks a linked :class:`ProjectModel`.

    Flow rules only run under ``repro-lint --project`` — they need the
    whole module graph, so there is no per-file ``visit``.  Subclasses
    implement :meth:`check_project` and yield findings pinned to the
    file/line of the offending event.
    """

    id: ClassVar[str]
    name: ClassVar[str]
    severity: ClassVar[str] = "error"
    description: ClassVar[str]

    @abstractmethod
    def check_project(self, project) -> Iterator[Finding]:
        """Yield findings for one linked project model."""

    def finding(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Build a finding at an explicit location."""
        return Finding(
            path=path,
            line=line,
            col=col,
            rule=self.id,
            severity=self.severity,
            message=message,
            hint=hint,
        )


_REGISTRY: dict[str, Rule] = {}
_FLOW_REGISTRY: dict[str, FlowRule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by instance) to the registry."""
    _REGISTRY[cls.id] = cls()
    return cls


def register_flow(cls: type[FlowRule]) -> type[FlowRule]:
    """Class decorator adding a flow rule to the project registry."""
    _FLOW_REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered per-file rule, ordered by id."""
    return tuple(rule for _, rule in sorted(_REGISTRY.items()))


def all_flow_rules() -> tuple[FlowRule, ...]:
    """Every registered project-wide flow rule, ordered by id."""
    return tuple(rule for _, rule in sorted(_FLOW_REGISTRY.items()))


def known_rule_ids() -> tuple[str, ...]:
    """Every rule id, per-file and flow, ordered."""
    return tuple(sorted({*_REGISTRY, *_FLOW_REGISTRY}))


def select_rules(ids: tuple[str, ...] | None) -> tuple[Rule, ...]:
    """Resolve rule ids to per-file rules.

    With explicit ids, unknown ones raise :class:`LintError` — unless
    the id names a flow rule, which is simply not a per-file rule and
    resolves to nothing here (the CLI selects flow rules separately).
    """
    if not ids:
        return all_rules()
    rules = []
    for rule_id in ids:
        key = rule_id.upper()
        if key in _FLOW_REGISTRY:
            continue
        if key not in _REGISTRY:
            known = ", ".join(known_rule_ids())
            raise LintError(f"unknown rule {rule_id!r} (known rules: {known})")
        rules.append(_REGISTRY[key])
    return tuple(dict.fromkeys(rules))


def select_flow_rules(ids: tuple[str, ...] | None) -> tuple[FlowRule, ...]:
    """Resolve rule ids to flow rules (unknown ids raise, like above)."""
    if not ids:
        return all_flow_rules()
    rules = []
    for rule_id in ids:
        key = rule_id.upper()
        if key in _REGISTRY:
            continue
        if key not in _FLOW_REGISTRY:
            known = ", ".join(known_rule_ids())
            raise LintError(f"unknown rule {rule_id!r} (known rules: {known})")
        rules.append(_FLOW_REGISTRY[key])
    return tuple(dict.fromkeys(rules))
