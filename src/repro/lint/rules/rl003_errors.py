"""RL003 — error taxonomy: failures surface as :class:`repro.errors.ReproError`.

Callers catch ``ReproError`` to separate library failures from
programming errors (the PR 1 CLI contract), so raising a bare builtin
from library code punches a hole in that contract.  This rule flags

* ``raise Exception/ValueError/RuntimeError(...)`` (called or bare);
* exception swallowing: an ``except`` clause catching ``Exception`` /
  ``BaseException`` / everything whose body is only ``pass``/``...``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import FileContext, Rule, register

_BANNED_RAISES = {"Exception", "ValueError", "RuntimeError"}
_BROAD_CATCHES = {"Exception", "BaseException"}

_HINT = "raise a ReproError subclass from repro.errors instead"


def _exception_name(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_noop_body(body: list[ast.stmt]) -> bool:
    for statement in body:
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(
            statement.value, ast.Constant
        ):
            continue  # docstring or bare `...`
        return False
    return True


@register
class ErrorTaxonomyRule(Rule):
    id = "RL003"
    name = "error-taxonomy"
    description = (
        "library failures must raise ReproError subclasses; broad "
        "except clauses must not swallow silently"
    )

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                name = _exception_name(node.exc)
                if name in _BANNED_RAISES:
                    yield self.finding(
                        ctx, node,
                        f"raise of bare builtin {name}",
                        hint=_HINT,
                    )
            elif isinstance(node, ast.ExceptHandler):
                name = _exception_name(node.type)
                is_broad = node.type is None or name in _BROAD_CATCHES
                if is_broad and _is_noop_body(node.body):
                    caught = name or "everything"
                    yield self.finding(
                        ctx, node,
                        f"except clause catching {caught} swallows the error",
                        hint=(
                            "narrow the exception type or handle/re-raise "
                            "the failure"
                        ),
                    )
