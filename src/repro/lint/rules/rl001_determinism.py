"""RL001 — determinism: all entropy and clocks flow through sanctioned modules.

The paper's figures are only credible if a whole board is reproducible
from one integer, so stochastic state must come from
:mod:`repro.rng` (``derive_seed``/``generator``/``from_entropy``/
``spawn``) and wall-clock readings from :mod:`repro.obs.timing`.  This
rule bans the ambient entropy and clock sources everywhere else:

* ``import random`` / ``import time`` / ``import secrets`` (any form);
* calls to ``os.urandom``, ``uuid.uuid4``;
* ``datetime.now`` / ``utcnow`` / ``today`` calls;
* any ``np.random.*`` / ``numpy.random.*`` call — including
  ``default_rng`` — outside the quarantine modules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import FileContext, Rule, dotted_name, register

#: Files allowed to touch numpy RNG construction and the wall clock.
_EXEMPT = ("repro/rng.py", "repro/obs/timing.py")

#: Modules that must not be imported outside the quarantine files.
_BANNED_MODULES = {"random", "time", "secrets"}

#: Fully-dotted call names that are always nondeterministic.
_BANNED_CALLS = {"os.urandom", "uuid.uuid4", "uuid.uuid1"}

#: ``<something>.now()``-style clock reads on datetime objects.
_CLOCK_ATTRS = {"now", "utcnow", "today"}
_CLOCK_BASES = {"datetime", "date"}

_HINT_RNG = (
    "derive the generator through repro.rng "
    "(derive_seed / generator / from_entropy / spawn)"
)
_HINT_CLOCK = "read the wall clock through repro.obs.timing.wall_clock"


@register
class DeterminismRule(Rule):
    id = "RL001"
    name = "determinism"
    description = (
        "entropy must flow through repro.rng and wall-clock reads "
        "through repro.obs.timing"
    )

    def exempt(self, ctx: FileContext) -> bool:
        return ctx.matches_module(*_EXEMPT)

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_MODULES:
                        yield self._import_finding(ctx, node, root)
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in _BANNED_MODULES and node.level == 0:
                    yield self._import_finding(ctx, node, root)
                if root == "os" and any(
                    alias.name == "urandom" for alias in node.names
                ):
                    yield self.finding(
                        ctx, node,
                        "os.urandom is nondeterministic",
                        hint=_HINT_RNG,
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _import_finding(
        self, ctx: FileContext, node: ast.AST, module: str
    ) -> Finding:
        hint = _HINT_CLOCK if module == "time" else _HINT_RNG
        return self.finding(
            ctx, node,
            f"import of nondeterministic module {module!r}",
            hint=hint,
        )

    def _check_call(
        self, ctx: FileContext, node: ast.Call
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        if name in _BANNED_CALLS:
            yield self.finding(
                ctx, node, f"call to nondeterministic {name}", hint=_HINT_RNG
            )
            return
        parts = name.split(".")
        if (
            len(parts) >= 2
            and parts[-1] in _CLOCK_ATTRS
            and parts[-2] in _CLOCK_BASES
        ):
            yield self.finding(
                ctx, node,
                f"wall-clock read via {name}",
                hint=_HINT_CLOCK,
            )
            return
        if len(parts) >= 3 and parts[-3] in {"np", "numpy"} and parts[-2] == "random":
            yield self.finding(
                ctx, node,
                f"direct numpy RNG construction/use via {name}",
                hint=_HINT_RNG,
            )
