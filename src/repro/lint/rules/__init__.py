"""The rule registry.

Importing this package imports every rule module, which registers its
rule class via the :func:`~repro.lint.rules.base.register` (per-file)
or :func:`~repro.lint.rules.base.register_flow` (project-wide)
decorator.
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for registration side effects)
    rl001_determinism,
    rl002_units,
    rl003_errors,
    rl004_float_eq,
    rl005_obs,
    rl006_timing,
    rl007_shard_race,
    rl008_iter_order,
    rl009_fingerprint_purity,
)
from .base import (
    FileContext,
    FlowRule,
    Rule,
    all_flow_rules,
    all_rules,
    known_rule_ids,
    register,
    register_flow,
    select_flow_rules,
    select_rules,
)

__all__ = [
    "FileContext",
    "FlowRule",
    "Rule",
    "all_flow_rules",
    "all_rules",
    "known_rule_ids",
    "register",
    "register_flow",
    "select_flow_rules",
    "select_rules",
]
