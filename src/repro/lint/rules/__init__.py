"""The rule registry.

Importing this package imports every rule module, which registers its
rule class via the :func:`~repro.lint.rules.base.register` decorator.
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for registration side effects)
    rl001_determinism,
    rl002_units,
    rl003_errors,
    rl004_float_eq,
    rl005_obs,
    rl006_timing,
)
from .base import FileContext, Rule, all_rules, register, select_rules

__all__ = [
    "FileContext",
    "Rule",
    "all_rules",
    "register",
    "select_rules",
]
