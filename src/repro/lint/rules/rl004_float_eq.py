"""RL004 — float equality: no ``==``/``!=`` against float literals.

The physics paths (``circuits/``, ``power/``, ``analysis/``) compute
voltages, durations and fractions with ordinary float arithmetic, where
exact equality silently turns into "never true" the moment a model adds
noise or a term.  This rule flags any ``==`` or ``!=`` comparison with a
float literal operand; use an explicit tolerance (``math.isclose``), an
ordered comparison against a bound, or compare the underlying integer
counts.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import FileContext, Rule, register

_HINT = (
    "compare with an explicit tolerance (math.isclose), an ordered "
    "bound (<=), or the underlying integer counts"
)


def _is_float_literal(node: ast.AST) -> bool:
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
    ):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEqualityRule(Rule):
    id = "RL004"
    name = "float-equality"
    description = "no ==/!= comparisons against float literals"

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_float_literal(left) or _is_float_literal(right):
                    yield self.finding(
                        ctx, node,
                        "exact ==/!= comparison against a float literal",
                        hint=_HINT,
                    )
                    break
