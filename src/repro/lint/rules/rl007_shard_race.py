"""RL007 — shard-race: shard units must not write shared module state.

``repro.exec`` promises that ``--jobs N`` is byte-identical to serial
execution.  That holds only because work units are pure functions of
their arguments: a unit that mutates module-level or class-level state
sees that state *shared* on the serial path but *fork-isolated* on the
``ProcessPoolExecutor`` path, so the two diverge silently — exactly
the class of bug the runtime jobs-equivalence tests exist to catch,
caught here at lint time instead.

The rule walks the project call graph from every shard-unit entry
point — functions passed to ``WorkUnit(fn=...)`` or
``ShardPlan.enumerate(...)``, or marked ``@shard_unit`` — and flags
any reachable function that writes module/class-level state: ``global``
assignments, item/attribute stores through module bindings, or
mutating method calls (``append``/``update``/...) on them.

Two destinations are whitelisted because the engine itself owns their
process semantics: :mod:`repro.exec.runtime` (the checkpoint policy,
installed per-process by design) and the :data:`repro.obs.OBS`
singleton (workers quarantine and re-merge it explicitly).
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from .base import FlowRule, register_flow

#: State the exec/obs layers own and reconcile across processes.
_WHITELIST_PREFIXES = ("repro.exec.runtime", "repro.obs.OBS")

_HINT = (
    "pass state in through the unit's arguments and out through its "
    "return value; only repro.exec.runtime and the repro.obs.OBS "
    "registries may hold cross-unit process state"
)


@register_flow
class ShardRaceRule(FlowRule):
    id = "RL007"
    name = "shard-race"
    description = (
        "functions reachable from shard-unit entry points must not "
        "write module-level or class-level state (serial and --jobs "
        "runs would diverge)"
    )

    def check_project(self, project) -> Iterator[Finding]:
        entries = project.entry_points()
        if not entries:
            return
        origin = project.reachable_from(entries)
        for key in sorted(origin):
            if key not in project.functions:
                continue
            summary, fn = project.functions[key]
            entry = origin[key]
            via = "" if entry == key else f", reachable from {entry}"
            for write in fn.writes:
                if write.target.startswith(_WHITELIST_PREFIXES):
                    continue
                yield self.finding(
                    summary.path, write.line, write.col,
                    f"shard unit {key}{via} writes shared state "
                    f"{write.target} ({write.detail}); serial and "
                    f"pool-sharded runs would diverge",
                    hint=_HINT,
                )
