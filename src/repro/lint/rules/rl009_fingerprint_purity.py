"""RL009 — fingerprint purity: no wall-clock taint in fingerprinted fields.

Run-manifest fingerprints are the repo's reproducibility currency:
``--jobs`` equivalence, kill-9 ``--resume`` identity, and the chaos
harness all compare them.  The fingerprint survives wall-clock jitter
only because the stripping logic in :mod:`repro.obs.manifest` removes
``phases[].wall_s`` and the ``perf.*``/``exec.*`` metric namespaces —
a *runtime* convention.  Any timing value that reaches a field the
fingerprint keeps (``parameters``, ``headline``, ``metrics`` outside
the stripped prefixes) silently breaks every one of those guarantees.

This rule proves the convention statically: values originating in
:mod:`repro.obs.timing` (``wall_clock()``, ``SectionTimer.total_s``)
are tainted; taint propagates through local assignments and across
function returns project-wide (:mod:`repro.lint.flow.taint`); a
tainted value reaching a fingerprinted ``RunManifest`` kwarg, a
``manifest.headline[...] =`` store, or an ``OBS`` metric whose name is
not ``perf.``/``exec.``-prefixed is a finding.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from ..flow import taint
from .base import FlowRule, register_flow

_HINT = (
    "emit timing through perf.*/exec.* metrics or phases[].wall_s "
    "(all stripped from fingerprints); fingerprinted manifest fields "
    "must stay wall-clock-free"
)


def _describe(sink) -> str:
    if sink.kind == "manifest":
        return f"fingerprinted RunManifest field {sink.field!r}"
    if sink.kind == "manifest-item":
        return f"item store into manifest field {sink.field!r}"
    return f"fingerprinted metric {sink.field!r}"


@register_flow
class FingerprintPurityRule(FlowRule):
    id = "RL009"
    name = "fingerprint-purity"
    description = (
        "wall-clock-derived values must not flow into fingerprinted "
        "manifest fields or non-perf./exec. metrics"
    )

    def check_project(self, project) -> Iterator[Finding]:
        for tainted in taint.solve(project):
            sink = tainted.sink
            yield self.finding(
                tainted.path, sink.line, sink.col,
                f"wall-clock taint ({tainted.reason}) reaches "
                f"{_describe(sink)} in {tainted.function}; the "
                f"manifest fingerprint would vary run to run",
                hint=_HINT,
            )
