"""RL008 — iteration order: no unordered collections feed ordered output.

Manifests, checkpoint journals, and experiment result lists are
fingerprinted byte-for-byte, so any iteration whose order the platform
chooses — ``set`` iteration (hash-seed dependent across processes) or
unsorted filesystem scans (``Path.glob``/``iterdir``/``os.listdir``
return directory order) — is a reproducibility bug waiting for a
different machine.  The BENCH trajectory sequence selection shipped
exactly this bug before this rule existed: an unsorted
``Path(root).glob("BENCH_*.json")`` scan feeding sequence numbering.

The rule flags ``for`` loops and comprehensions over set expressions,
set-typed locals, or unsorted scan results, anywhere in the project.
Order-preserving wrappers (``list``/``tuple``/``reversed``) propagate
the verdict; ``sorted(...)`` clears it.  Dict iteration is ordered in
Python and is never flagged; membership tests don't iterate and are
out of scope.
"""

from __future__ import annotations

from typing import Iterator

from ..findings import Finding
from .base import FlowRule, register_flow

_HINT = (
    "wrap the iterable in sorted(...) (with an explicit key if element "
    "order matters), or use an ordered collection"
)


@register_flow
class IterationOrderRule(FlowRule):
    id = "RL008"
    name = "iteration-order"
    description = (
        "iteration over unordered sets or unsorted filesystem scans is "
        "banned: their order leaks into manifests, journals, and "
        "returned experiment data"
    )

    def check_project(self, project) -> Iterator[Finding]:
        for module in sorted(project.modules):
            summary = project.modules[module]
            for qualname in sorted(summary.functions):
                fn = summary.functions[qualname]
                where = (
                    f"module body of {module}"
                    if qualname == "<module>"
                    else f"{module}.{qualname}"
                )
                for event in fn.iters:
                    yield self.finding(
                        summary.path, event.line, event.col,
                        f"{event.detail} in {where}",
                        hint=_HINT,
                    )
