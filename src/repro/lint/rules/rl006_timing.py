"""RL006 — timing: wall-clock reads go through ``repro.obs.timing``.

RL001 already bans ``import time`` inside the library; this rule holds
the narrower, sharper line for *clock reads* specifically — including
in harness code (tools, benchmarks) where importing :mod:`time` is
legitimate for ``time.sleep``.  A direct ``time.time()`` /
``time.perf_counter()`` call scatters untracked timing through the
codebase: the profiling hooks cannot see it, the disabled-observability
zero-overhead guarantee cannot account for it, and manifests cannot
strip it.  Every duration measurement must come from
:func:`repro.obs.timing.wall_clock` (or the hooks built on it), so
there is exactly one clock to audit.

``time.sleep`` stays legal — it spends time rather than reading it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import FileContext, Rule, dotted_name, register

#: The one module allowed to read the process clocks directly.
_EXEMPT = ("repro/obs/timing.py",)

#: ``time``-module clock readers (and their nanosecond variants).
_CLOCK_FNS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "clock_gettime",
    "clock_gettime_ns",
}

_HINT = (
    "measure durations with repro.obs.timing.wall_clock (or the "
    "profiled_phase/observe_rate hooks)"
)


@register
class TimingRule(Rule):
    id = "RL006"
    name = "timing"
    description = (
        "direct time.time()/time.perf_counter()-style clock reads are "
        "banned outside repro.obs.timing"
    )

    def exempt(self, ctx: FileContext) -> bool:
        return ctx.matches_module(*_EXEMPT)

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    for alias in node.names:
                        if alias.name in _CLOCK_FNS:
                            yield self.finding(
                                ctx, node,
                                f"import of clock reader "
                                f"time.{alias.name}",
                                hint=_HINT,
                            )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                parts = name.split(".")
                if (
                    len(parts) == 2
                    and parts[0] == "time"
                    and parts[1] in _CLOCK_FNS
                ):
                    yield self.finding(
                        ctx, node,
                        f"direct clock read via {name}()",
                        hint=_HINT,
                    )
