"""RL002 — unit hygiene: quantities are SI, call sites say their unit.

The simulation stores every quantity in SI base units (``units.py``),
and sub-unit magnitudes written as bare literals are where silent
scaling bugs hide (``0.004`` — milliseconds or millivolts?).  This rule
flags a bare float literal bound to a unit-suffixed name (keyword
argument, parameter default, assignment, or tuple element) when its
magnitude is small enough that a ``units.py`` converter would document
it, plus any inline ``± 273.15`` Celsius/kelvin arithmetic outside
``units.py``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import FileContext, Rule, register

#: suffix -> (magnitude threshold, converter suggestion).  A literal
#: ``0 < |x| < threshold`` bound to a matching name is flagged.
_SUFFIXES: dict[str, tuple[float, str]] = {
    "_s": (0.1, "units.milliseconds() / units.microseconds()"),
    "_v": (0.1, "units.millivolts()"),
    "_a": (0.1, "units.milliamps()"),
    "_ohm": (0.1, "units.milliohms()"),
    "_f": (1e-4, "units.microfarads() / units.nanofarads()"),
}

_ABS_ZERO = 273.15


def _suffix_for(name: str | None) -> tuple[str, float, str] | None:
    if not name:
        return None
    lowered = name.lower()
    for suffix, (threshold, converter) in _SUFFIXES.items():
        if lowered.endswith(suffix):
            return suffix, threshold, converter
    return None


def _bare_floats(node: ast.AST) -> Iterator[ast.Constant]:
    """Float literals in ``node`` (a literal, or a literal tuple/list)."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, float):
            yield node
    elif isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            yield from _bare_floats(element)
    elif (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
    ):
        yield from _bare_floats(node.operand)


@register
class UnitHygieneRule(Rule):
    id = "RL002"
    name = "unit-hygiene"
    description = (
        "sub-unit magnitudes bound to unit-suffixed names must use a "
        "units.py converter; no inline Celsius/kelvin arithmetic"
    )

    def exempt(self, ctx: FileContext) -> bool:
        return ctx.matches_module("repro/units.py")

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    yield from self._check_binding(ctx, keyword.arg, keyword.value)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(ctx, node.args)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    yield from self._check_binding(
                        ctx, node.target.id, node.value
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        yield from self._check_binding(
                            ctx, target.id, node.value
                        )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                for side in (node.left, node.right):
                    if (
                        isinstance(side, ast.Constant)
                        and isinstance(side.value, float)
                        and abs(abs(side.value) - _ABS_ZERO) < 1e-9
                    ):
                        yield self.finding(
                            ctx, node,
                            "inline Celsius/kelvin offset arithmetic",
                            hint=(
                                "use units.celsius_to_kelvin / "
                                "units.kelvin_to_celsius"
                            ),
                        )

    def _check_defaults(
        self, ctx: FileContext, args: ast.arguments
    ) -> Iterator[Finding]:
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional) - len(args.defaults):],
                                args.defaults):
            yield from self._check_binding(ctx, arg.arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                yield from self._check_binding(ctx, arg.arg, default)

    def _check_binding(
        self, ctx: FileContext, name: str | None, value: ast.AST
    ) -> Iterator[Finding]:
        matched = _suffix_for(name)
        if matched is None:
            return
        suffix, threshold, converter = matched
        for literal in _bare_floats(value):
            magnitude = abs(literal.value)
            if 0.0 < magnitude < threshold:
                yield self.finding(
                    ctx, literal,
                    (
                        f"bare literal {literal.value!r} bound to "
                        f"unit-suffixed name {name!r}"
                    ),
                    hint=f"spell the scale out with {converter}",
                )
