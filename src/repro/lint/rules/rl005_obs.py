"""RL005 — observability contract: names come from the taxonomy.

Trace consumers, ``repro-verify``'s span check, and trend tooling all
key off the literal span/event/metric names, so an instrumentation point
whose name is not declared in :mod:`repro.obs.names` is invisible to all
of them.  This rule checks

* the name literal of every ``OBS.span`` / ``OBS.event`` /
  ``OBS.counter_inc`` / ``OBS.gauge_set`` / ``OBS.histogram_record``
  (and ``metrics.counter/gauge/histogram``) call against the taxonomy —
  f-strings must open with a declared dynamic-family prefix;
* that experiment modules register through ``experiments.common``: a
  top-level ``run`` function in ``experiments/`` must carry the
  ``@manifested(...)`` decorator.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ...obs import names as taxonomy
from ..findings import Finding
from .base import FileContext, Rule, dotted_name, register

#: method attr -> (name family checker, family label)
_SPAN_METHODS = {"span"}
_EVENT_METHODS = {"event"}
_METRIC_METHODS = {"counter_inc", "gauge_set", "histogram_record"}
_REGISTRY_METHODS = {"counter", "gauge", "histogram"}

#: Modules under experiments/ that legitimately have no ``run``.
_EXEMPT_EXPERIMENT_MODULES = ("common.py", "render.py", "__init__.py")


def _receiver_tail(func: ast.Attribute) -> str | None:
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


def _literal_prefix(node: ast.AST) -> tuple[str | None, bool]:
    """(name-or-prefix, is_complete) for a string or f-string argument."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, True
    if isinstance(node, ast.JoinedStr):
        if node.values and isinstance(node.values[0], ast.Constant):
            first = node.values[0].value
            if isinstance(first, str):
                return first, False
        return "", False
    return None, False


@register
class ObsContractRule(Rule):
    id = "RL005"
    name = "obs-contract"
    description = (
        "span/event/metric names must come from repro.obs.names; "
        "experiment modules must register via experiments.common"
    )

    def visit(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_names(ctx)
        yield from self._check_experiment_registration(ctx)

    # ------------------------------------------------------------------
    # Name taxonomy
    # ------------------------------------------------------------------

    def _check_names(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.args
            ):
                continue
            attr = node.func.attr
            receiver = _receiver_tail(node.func)
            if attr in _SPAN_METHODS and receiver in {"OBS", "tracer"}:
                family, known = "span", taxonomy.is_known_span
                prefixes = taxonomy.SPAN_PREFIXES
            elif attr in _EVENT_METHODS and receiver in {"OBS", "tracer"}:
                family, known = "event", taxonomy.is_known_event
                prefixes = taxonomy.EVENT_PREFIXES
            elif attr in _METRIC_METHODS or (
                attr in _REGISTRY_METHODS and receiver == "metrics"
            ):
                family, known = "metric", taxonomy.is_known_metric
                prefixes = taxonomy.METRIC_PREFIXES
            else:
                continue
            name, complete = _literal_prefix(node.args[0])
            if name is None:
                continue  # dynamic expression; nothing checkable
            if complete and not known(name):
                yield self.finding(
                    ctx, node.args[0],
                    f"{family} name {name!r} is not in the repro.obs.names "
                    "taxonomy",
                    hint="declare the name (or its family prefix) in "
                    "repro/obs/names.py",
                )
            elif not complete and not any(
                name.startswith(p) for p in prefixes
            ):
                yield self.finding(
                    ctx, node.args[0],
                    f"dynamic {family} name must open with a declared "
                    f"family prefix ({', '.join(prefixes)})",
                    hint="declare the family prefix in repro/obs/names.py",
                )

    # ------------------------------------------------------------------
    # Experiment registration
    # ------------------------------------------------------------------

    def _check_experiment_registration(
        self, ctx: FileContext
    ) -> Iterator[Finding]:
        if not ctx.in_dir("experiments"):
            return
        if any(ctx.posix.endswith("/" + m) for m in _EXEMPT_EXPERIMENT_MODULES):
            return
        for node in ctx.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == "run":
                if not any(
                    self._is_manifested(decorator)
                    for decorator in node.decorator_list
                ):
                    yield self.finding(
                        ctx, node,
                        "experiment run() is not registered through "
                        "experiments.common",
                        hint="decorate run() with "
                        "@manifested(<experiment-name>, ...)",
                    )

    @staticmethod
    def _is_manifested(decorator: ast.AST) -> bool:
        if isinstance(decorator, ast.Call):
            decorator = decorator.func
        name = dotted_name(decorator)
        return name is not None and name.split(".")[-1] == "manifested"
