"""The ``repro-lint`` console script.

Exit codes follow the PR 1 CLI convention: 0 for a clean tree, 1 when
findings are reported, 2 for usage/configuration/IO failures — the
latter always as a one-line error on stderr, never a traceback.

``--project`` adds the whole-program flow rules (RL007 shard-race,
RL008 iteration-order, RL009 fingerprint-purity) on top of the
per-file checks, linking every module into one call graph.  Flow
analysis reuses per-module summaries through an mtime+sha256 cache
(``.repro-lint-cache.json``; ``--no-cache`` disables, ``--cache FILE``
relocates).  ``--write-baseline``/``--baseline`` snapshot and subtract
known findings so a tree can gate on *new* regressions while paying
down recorded debt.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from ..errors import LintError
from .baseline import load_baseline, write_baseline
from .config import LintConfig, load_config
from .engine import flow_findings, iter_python_files, lint_file
from .flow import DEFAULT_CACHE_PATH, SummaryCache
from .rules import all_flow_rules, all_rules, select_rules

#: Version of the ``--format json`` document layout.
JSON_SCHEMA_VERSION = 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based checks for the simulation's physics, determinism "
            "and error contracts"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: [tool.repro-lint] "
        "paths, else src/)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rule", action="append", default=[], metavar="ID",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="GLOB",
        help="skip files matching this glob (repeatable)",
    )
    parser.add_argument(
        "--config", metavar="FILE", default=None,
        help="pyproject.toml to read [tool.repro-lint] from "
        "(default: discovered from the working directory)",
    )
    parser.add_argument(
        "--no-config", action="store_true",
        help="ignore any [tool.repro-lint] configuration",
    )
    parser.add_argument(
        "--project", action="store_true",
        help="also run the project-wide flow rules (RL007+): call-graph "
        "shard-race, iteration-order, and fingerprint-taint analysis",
    )
    parser.add_argument(
        "--cache", metavar="FILE", default=None,
        help=f"flow summary cache location (default: {DEFAULT_CACHE_PATH}; "
        "only used with --project)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="re-summarize every module instead of using the flow cache",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="subtract findings recorded in this baseline JSON "
        "(default: [tool.repro-lint] baseline, if set)",
    )
    parser.add_argument(
        "--write-baseline", metavar="FILE", default=None,
        help="record the current findings to FILE and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.id}  {rule.name}: {rule.description}")
    for flow_rule in all_flow_rules():
        print(
            f"{flow_rule.id}  {flow_rule.name} (project-wide): "
            f"{flow_rule.description}"
        )
    return 0


def _default_paths(config: LintConfig) -> tuple[str, ...]:
    if config.paths:
        return config.paths
    if Path("src").is_dir():
        return ("src",)
    return (".",)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro-lint``; returns the exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        return _list_rules()
    cache: SummaryCache | None = None
    try:
        if args.no_config:
            config = LintConfig()
        else:
            explicit = Path(args.config) if args.config else None
            config = load_config(explicit)
        select = tuple(args.rule) or config.select or None
        exclude = (*args.exclude, *config.exclude)
        rules = select_rules(select)
        files = iter_python_files(args.paths or _default_paths(config), exclude)
        findings = []
        for path in files:
            findings.extend(lint_file(path, rules))
        if args.project:
            if not args.no_cache:
                cache = SummaryCache(Path(args.cache or DEFAULT_CACHE_PATH))
            findings.extend(flow_findings(files, select, cache))
            if cache is not None:
                cache.save()
        findings.sort()
        if args.write_baseline:
            write_baseline(args.write_baseline, findings)
            print(
                f"repro-lint: baseline {args.write_baseline} written "
                f"({len(findings)} finding(s))",
                file=sys.stderr,
            )
            return 0
        baseline_path = args.baseline or config.baseline
        if baseline_path:
            findings = load_baseline(baseline_path).filter(findings)
    except LintError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        document = {
            "schema_version": JSON_SCHEMA_VERSION,
            "checked": len(files),
            "findings": [finding.to_dict() for finding in findings],
        }
        print(json.dumps(document, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        summary = (
            f"repro-lint: {len(findings)} finding(s) in "
            f"{len(files)} file(s) checked"
            if findings
            else f"repro-lint: clean ({len(files)} file(s) checked)"
        )
        print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
