"""``repro.lint`` — AST-based static analysis for the reproduction.

The simulation's credibility rests on invariants Python cannot enforce
at runtime: all entropy derives from one seed (RL001), quantities stay
in SI units (RL002), failures surface through the ``ReproError``
taxonomy (RL003), physics paths never compare floats exactly (RL004),
and observability names come from one taxonomy (RL005).  This package
checks them statically, with a pluggable rule framework, a
``repro-lint`` console script, per-line ``# repro-lint: ignore[RULE]``
suppressions, and ``[tool.repro-lint]`` configuration.

On top of the per-file rules sits a project-wide *flow* layer
(:mod:`repro.lint.flow`): every module is distilled into a
JSON-serializable summary (imports, call sites, shared-state writes,
unordered iterations, timing taint), the summaries are linked into a
:class:`~repro.lint.flow.ProjectModel` with a cross-module call graph,
and interprocedural rules check it — shard-race freedom (RL007),
iteration-order determinism (RL008), and fingerprint purity (RL009).
``repro-lint --project`` runs both families, with a content-addressed
summary cache and optional finding baselines.

Library use::

    from repro.lint import lint_paths, lint_project

    findings = lint_paths(["src"])      # per-file rules, [] when clean
    findings = lint_project(["src"])    # + RL007/RL008/RL009
"""

from __future__ import annotations

from .baseline import Baseline, load_baseline, write_baseline
from .config import LintConfig, load_config
from .engine import (
    PARSE_ERROR_RULE,
    flow_findings,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_project,
    lint_source,
)
from .findings import Finding
from .flow import (
    DEFAULT_CACHE_PATH,
    ProjectModel,
    SummaryCache,
    build_project,
)
from .rules import (
    FileContext,
    FlowRule,
    Rule,
    all_flow_rules,
    all_rules,
    known_rule_ids,
    register,
    register_flow,
    select_flow_rules,
    select_rules,
)

__all__ = [
    "Baseline",
    "DEFAULT_CACHE_PATH",
    "Finding",
    "FileContext",
    "FlowRule",
    "LintConfig",
    "PARSE_ERROR_RULE",
    "ProjectModel",
    "Rule",
    "SummaryCache",
    "all_flow_rules",
    "all_rules",
    "build_project",
    "flow_findings",
    "iter_python_files",
    "known_rule_ids",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_baseline",
    "load_config",
    "register",
    "register_flow",
    "select_flow_rules",
    "select_rules",
    "write_baseline",
]
