"""``repro.lint`` — AST-based static analysis for the reproduction.

The simulation's credibility rests on invariants Python cannot enforce
at runtime: all entropy derives from one seed (RL001), quantities stay
in SI units (RL002), failures surface through the ``ReproError``
taxonomy (RL003), physics paths never compare floats exactly (RL004),
and observability names come from one taxonomy (RL005).  This package
checks them statically, with a pluggable rule framework, a
``repro-lint`` console script, per-line ``# repro-lint: ignore[RULE]``
suppressions, and ``[tool.repro-lint]`` configuration.

Library use::

    from repro.lint import lint_paths

    findings = lint_paths(["src"])   # [] on a clean tree
"""

from __future__ import annotations

from .config import LintConfig, load_config
from .engine import (
    PARSE_ERROR_RULE,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from .findings import Finding
from .rules import FileContext, Rule, all_rules, register, select_rules

__all__ = [
    "Finding",
    "FileContext",
    "LintConfig",
    "PARSE_ERROR_RULE",
    "Rule",
    "all_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "register",
    "select_rules",
]
