"""Project-wide flow analysis for ``repro-lint --project``.

Where the per-file rules (RL001–RL006) police one AST at a time, this
package links every module of the tree into a :class:`ProjectModel` —
module/symbol tables, import resolution, a call graph — and runs
reachability and taint engines over it.  The interprocedural rules
RL007 (shard-race), RL008 (iteration order), and RL009
(fingerprint-purity taint) are built on top, in
:mod:`repro.lint.rules`.

Everything here is ``ast``-plus-stdlib only: the analysed code is
never imported, so linting cannot perturb the simulation it audits.
"""

from __future__ import annotations

from .cache import DEFAULT_CACHE_PATH, SummaryCache
from .project import ProjectModel, build_project, module_name_for
from .summarize import (
    SUMMARY_SCHEMA_VERSION,
    FunctionSummary,
    ModuleSummary,
    summarize_file,
    summarize_source,
)

__all__ = [
    "DEFAULT_CACHE_PATH",
    "SUMMARY_SCHEMA_VERSION",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectModel",
    "SummaryCache",
    "build_project",
    "module_name_for",
    "summarize_file",
    "summarize_source",
]
