"""Interprocedural timing-taint propagation (the RL009 engine).

The extraction pass records, for every function, a flow-insensitive
dataflow skeleton: which locals are assigned from which reads/calls,
what the function returns, and where values land in fingerprinted
manifest fields or metrics.  This module solves the whole-program
fixpoint over those skeletons:

1. a function **returns taint** if any returned expression contains a
   direct timing source (``repro.obs.timing.wall_clock`` and friends),
   reads a tainted local, or calls a taint-returning function;
2. a local is **tainted** if any assignment to it does the same;
3. a **sink is tainted** under the same test — and that is an RL009
   finding.

The analysis is deliberately flow-insensitive (a variable tainted
anywhere in a function is tainted everywhere in it) and silent on
calls it cannot resolve — over-approximate inside a function, but
never guessing across unknown call boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from .project import ProjectModel
from .summarize import Flow, FunctionSummary, Sink


@dataclass(frozen=True)
class TaintedSink:
    """One tainted fingerprint sink, with where and why."""

    function: str  # canonical function key
    path: str
    sink: Sink
    reason: str


def _resolved_calls(
    project: ProjectModel, calls: tuple[str, ...]
) -> list[str]:
    out = []
    for name in calls:
        resolved = project.resolve_function(name)
        if resolved is not None:
            out.append(resolved)
    return out


def _flow_tainted(
    project: ProjectModel,
    flow: Flow | Sink,
    tainted_vars: set[str],
    taint_returning: set[str],
) -> str | None:
    """Why this flow's value is tainted, or None if it is clean."""
    if flow.source:
        return "a direct repro.obs.timing read"
    for read in flow.reads:
        if read in tainted_vars:
            return f"tainted local {read!r}"
    for callee in _resolved_calls(project, flow.calls):
        if callee in taint_returning:
            return f"taint-returning call {callee}()"
    return None


def _local_fixpoint(
    project: ProjectModel,
    fn: FunctionSummary,
    taint_returning: set[str],
) -> tuple[set[str], bool]:
    """(tainted locals, returns-taint) for one function."""
    tainted: set[str] = set()
    changed = True
    while changed:
        changed = False
        for flow in fn.flows:
            if flow.target is None or flow.target in tainted:
                continue
            if _flow_tainted(project, flow, tainted, taint_returning):
                tainted.add(flow.target)
                changed = True
    returns = fn.returns_source or any(
        flow.target is None
        and _flow_tainted(project, flow, tainted, taint_returning)
        for flow in fn.flows
    )
    return tainted, returns


def solve(project: ProjectModel) -> list[TaintedSink]:
    """Run the global fixpoint; returns every tainted sink, sorted."""
    taint_returning: set[str] = set()
    # Phase 1: stabilise the taint-returning set across all functions.
    changed = True
    while changed:
        changed = False
        for key, (_, fn) in project.functions.items():
            if key in taint_returning:
                continue
            _, returns = _local_fixpoint(project, fn, taint_returning)
            if returns:
                taint_returning.add(key)
                changed = True
    # Phase 2: judge every sink against the final taint state.
    findings: list[TaintedSink] = []
    for key in sorted(project.functions):
        summary, fn = project.functions[key]
        if not fn.sinks:
            continue
        tainted_vars, _ = _local_fixpoint(project, fn, taint_returning)
        for sink in fn.sinks:
            reason = _flow_tainted(project, sink, tainted_vars, taint_returning)
            if reason is not None:
                findings.append(TaintedSink(
                    function=key, path=summary.path, sink=sink,
                    reason=reason,
                ))
    return findings
