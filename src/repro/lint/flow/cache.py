"""The mtime+hash summary cache behind ``repro-lint --project``.

Project analysis re-parses every file on every run unless something
remembers the per-file digests.  The cache stores each file's
:class:`~repro.lint.flow.summarize.ModuleSummary` (plain JSON) keyed by
``(mtime_ns, sha256)``: an unchanged mtime short-circuits without even
hashing; a touched-but-identical file re-validates by content hash; a
changed file is re-summarized.  The cache file itself is disposable —
any read problem (missing, corrupt, wrong schema version) silently
degrades to a cold start, and write failures never fail the lint run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .summarize import (
    SUMMARY_SCHEMA_VERSION,
    ModuleSummary,
    module_name_for,
    summarize_source,
)

#: Default cache location, relative to the invocation directory.
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"

#: Version of the cache file layout (independent of the summary schema,
#: which is keyed separately so either can move alone).
CACHE_SCHEMA_VERSION = 1


class SummaryCache:
    """Loads, consults, and persists per-file summary entries."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._entries: dict[str, dict] = {}
        self._dirty = False
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(doc, dict):
            return
        if doc.get("cache_version") != CACHE_SCHEMA_VERSION:
            return
        if doc.get("summary_version") != SUMMARY_SCHEMA_VERSION:
            return
        entries = doc.get("files")
        if isinstance(entries, dict):
            self._entries = entries

    def summarize(self, path: Path) -> ModuleSummary:
        """The file's summary — cached when mtime or content matches."""
        key = str(path.resolve())
        try:
            mtime_ns = path.stat().st_mtime_ns
            source = None
            entry = self._entries.get(key)
            if entry is not None:
                if entry.get("mtime_ns") == mtime_ns:
                    self.hits += 1
                    return ModuleSummary.from_dict(entry["summary"])
                source = path.read_text(encoding="utf-8")
                digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
                if entry.get("sha256") == digest:
                    # Touched but identical: refresh the mtime key only.
                    entry["mtime_ns"] = mtime_ns
                    self._dirty = True
                    self.hits += 1
                    return ModuleSummary.from_dict(entry["summary"])
            if source is None:
                source = path.read_text(encoding="utf-8")
            digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
        except (OSError, UnicodeDecodeError):
            summary = ModuleSummary(
                module=module_name_for(path), path=str(path)
            )
            summary.parse_error = True
            return summary
        self.misses += 1
        summary = summarize_source(source, str(path), module_name_for(path))
        self._entries[key] = {
            "mtime_ns": mtime_ns,
            "sha256": digest,
            "summary": summary.to_dict(),
        }
        self._dirty = True
        return summary

    def save(self) -> None:
        """Persist the cache; IO failures are deliberately swallowed."""
        if not self._dirty:
            return
        doc = {
            "cache_version": CACHE_SCHEMA_VERSION,
            "summary_version": SUMMARY_SCHEMA_VERSION,
            "files": self._entries,
        }
        try:
            self.path.write_text(
                json.dumps(doc, sort_keys=True), encoding="utf-8"
            )
            self._dirty = False
        except OSError:
            pass
