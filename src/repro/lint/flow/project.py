"""The project model: linked module summaries plus the call graph.

:func:`build_project` summarizes every file (through the optional
cache) and returns a :class:`ProjectModel`, which resolves dotted
references across modules — chasing import re-exports like
``repro.exec.ShardPlan`` -> ``repro.exec.plan.ShardPlan`` and method
lookups through base classes — and answers the questions the flow
rules ask: what does each function call, which functions are shard-unit
entry points, and what is reachable from them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from .cache import SummaryCache
from .summarize import (
    FunctionSummary,
    ModuleSummary,
    module_name_for,
    summarize_file,
)

#: Guard against pathological import-alias cycles while chasing
#: re-exports.
_MAX_CHASE = 32


class ProjectModel:
    """Linked view over a set of module summaries."""

    def __init__(self, summaries: dict[str, ModuleSummary]) -> None:
        self.modules = summaries
        #: canonical function name -> (module summary, function summary).
        self.functions: dict[str, tuple[ModuleSummary, FunctionSummary]] = {}
        for module, summary in summaries.items():
            for qualname, fn in summary.functions.items():
                self.functions[f"{module}.{qualname}"] = (summary, fn)
        self._resolve_memo: dict[str, str | None] = {}
        self._call_graph: dict[str, set[str]] | None = None

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------

    def _split_module(self, dotted: str) -> tuple[str, list[str]] | None:
        """Longest module prefix of ``dotted`` plus the symbol tail."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, parts[cut:]
        return None

    def resolve_function(self, dotted: str) -> str | None:
        """Canonical function key for a dotted reference, if resolvable.

        Chases import re-exports (``from .plan import ShardPlan`` in a
        package ``__init__``) and walks base classes for method lookups.
        """
        if dotted in self._resolve_memo:
            return self._resolve_memo[dotted]
        self._resolve_memo[dotted] = None  # cycle guard
        resolved = self._resolve_function_uncached(dotted, _MAX_CHASE)
        self._resolve_memo[dotted] = resolved
        return resolved

    def _resolve_function_uncached(
        self, dotted: str, budget: int
    ) -> str | None:
        if budget <= 0:
            return None
        if dotted in self.functions:
            return dotted
        split = self._split_module(dotted)
        if split is None:
            return None
        module, tail = split
        if not tail:
            return None
        summary = self.modules[module]
        head = tail[0]
        if head in summary.imports:
            rechased = ".".join([summary.imports[head], *tail[1:]])
            return self._resolve_function_uncached(rechased, budget - 1)
        if head in summary.classes and len(tail) == 2:
            return self._resolve_method(module, head, tail[1], budget - 1)
        return None

    def _resolve_method(
        self, module: str, cls: str, method: str, budget: int
    ) -> str | None:
        """Find ``method`` on ``cls`` or (breadth-first) its bases."""
        queue = [(module, cls)]
        seen = set()
        while queue and budget > 0:
            budget -= 1
            mod, name = queue.pop(0)
            if (mod, name) in seen:
                continue
            seen.add((mod, name))
            key = f"{mod}.{name}.{method}"
            if key in self.functions:
                return key
            summary = self.modules.get(mod)
            if summary is None or name not in summary.classes:
                continue
            for base in summary.classes[name].bases:
                located = self._resolve_class(base, budget)
                if located is not None:
                    queue.append(located)
        return None

    def _resolve_class(
        self, dotted: str, budget: int
    ) -> tuple[str, str] | None:
        """Resolve a dotted class reference to ``(module, classname)``."""
        for _ in range(budget):
            split = self._split_module(dotted)
            if split is None:
                return None
            module, tail = split
            if len(tail) != 1:
                return None
            summary = self.modules[module]
            name = tail[0]
            if name in summary.classes:
                return module, name
            if name in summary.imports:
                dotted = summary.imports[name]
                continue
            return None
        return None

    # ------------------------------------------------------------------
    # Call graph and reachability
    # ------------------------------------------------------------------

    def call_graph(self) -> dict[str, set[str]]:
        """Resolved caller -> callees over every summarized function."""
        if self._call_graph is None:
            graph: dict[str, set[str]] = {}
            for key, (_, fn) in self.functions.items():
                callees = set()
                for name, _line, _col in fn.calls:
                    resolved = self.resolve_function(name)
                    if resolved is not None:
                        callees.add(resolved)
                graph[key] = callees
            self._call_graph = graph
        return self._call_graph

    def entry_points(self) -> dict[str, str]:
        """Shard-unit entry points: canonical fn key -> display name."""
        entries: dict[str, str] = {}
        for module in sorted(self.modules):
            for ref in self.modules[module].shard_entries:
                resolved = self.resolve_function(ref)
                if resolved is not None:
                    entries.setdefault(resolved, ref)
        return entries

    def reachable_from(self, roots: Iterable[str]) -> dict[str, str]:
        """Every function reachable from ``roots`` -> the root reaching it.

        Breadth-first over the call graph, so the recorded root is one
        with a shortest call chain (stable across runs: roots and
        neighbours are visited in sorted order).
        """
        graph = self.call_graph()
        origin: dict[str, str] = {}
        queue: list[str] = []
        for root in sorted(set(roots)):
            if root in graph and root not in origin:
                origin[root] = root
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in sorted(graph.get(current, ())):
                if callee not in origin:
                    origin[callee] = origin[current]
                    queue.append(callee)
        return origin


def build_project(
    files: Iterable[str | Path],
    cache: SummaryCache | None = None,
) -> ProjectModel:
    """Summarize ``files`` (via ``cache`` when given) into a model.

    Files that fail to parse contribute an empty summary — the per-file
    engine already reports them as ``RL000`` findings, so the flow
    layer just skips them.
    """
    summaries: dict[str, ModuleSummary] = {}
    for raw in files:
        path = Path(raw)
        summary = cache.summarize(path) if cache else summarize_file(path)
        # Last-one-wins on module-name collisions (e.g. two fixture
        # trees both containing ``conftest``); project rules only ever
        # see one of them, which keeps resolution deterministic.
        summaries[summary.module] = summary
    return ProjectModel(summaries)


__all__ = [
    "ProjectModel",
    "build_project",
    "module_name_for",
]
