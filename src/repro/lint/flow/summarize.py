"""Per-module flow summaries: the unit of project-wide analysis.

The flow layer never imports the code it analyses.  Instead each file
is parsed once (``ast`` only) and reduced to a :class:`ModuleSummary` —
a JSON-serialisable digest of exactly the facts the interprocedural
rules need:

* **bindings** — what every top-level name refers to, with imports
  resolved to absolute dotted targets (``from ..rng import spawn`` in
  ``repro.exec.plan`` becomes ``repro.rng.spawn``);
* **functions** — one :class:`FunctionSummary` per function/method
  (plus a ``<module>`` pseudo-function for module-level code) carrying
  its outgoing calls, its writes to module/class-level state (RL007),
  its unordered-iteration events (RL008), and a compact dataflow
  skeleton (assignments, returns, manifest/metric sinks) that the
  RL009 taint engine solves interprocedurally;
* **shard entry points** — functions registered as shard units, found
  either syntactically (``WorkUnit(fn=...)``,
  ``ShardPlan.enumerate(fn, ...)``) or via the explicit
  :func:`repro.exec.plan.shard_unit` marker decorator.

Because summaries are plain JSON, the project cache
(:mod:`repro.lint.flow.cache`) can persist them keyed on file
mtime+hash and ``repro-lint --project`` re-parses only what changed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from ..suppress import SuppressionMap, parse_suppressions

#: Bump when the summary shape or extraction logic changes; the cache
#: keys on this, so stale summaries are never reused across versions.
SUMMARY_SCHEMA_VERSION = 1

#: Call targets (suffix-matched on the resolved dotted name) whose
#: ``fn`` argument registers a shard-unit entry point.
_UNIT_CTORS = ("WorkUnit",)
_UNIT_ENUMERATORS = ("ShardPlan.enumerate",)

#: The explicit entry-point marker decorator (suffix-matched).
_UNIT_MARKER = "shard_unit"

#: Functions whose return value carries wall-clock taint (RL009
#: sources).  Prefix-matched so everything quarantined inside the
#: timing module counts.
_TIMING_MODULE = "repro.obs.timing"

#: Mutating method names that count as a write when called on a
#: module-level binding (RL007).  Deliberately conservative: read-like
#: or ambiguous names stay off the list.
_MUTATORS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "clear", "remove", "discard",
})

#: Scan calls whose result order is filesystem-dependent (RL008).
_SCAN_METHODS = frozenset({"glob", "rglob", "iterdir"})
_SCAN_FUNCTIONS = frozenset({"os.listdir", "os.scandir"})

#: Set-returning methods (RL008) — only trusted on a set-typed base.
_SET_METHODS = frozenset({
    "intersection", "union", "difference", "symmetric_difference", "copy",
})

#: ``RunManifest`` constructor kwargs that land in the fingerprint
#: (``phases`` is excluded: the fingerprint strips ``wall_s`` keys).
_MANIFEST_FIELDS = ("parameters", "headline", "metrics")

#: OBS metric emitters: a non-``perf.``/``exec.``-prefixed metric name
#: makes the value a fingerprinted sink (RL009).
_METRIC_EMITTERS = frozenset({"gauge_set", "counter_inc", "histogram_record"})
_STRIPPED_METRIC_PREFIXES = ("perf.", "exec.")


@dataclass
class WriteEvent:
    """One write to module- or class-level state (an RL007 candidate)."""

    target: str  # resolved dotted name of the state written
    detail: str  # human description ("global assignment", "dict store", ...)
    line: int
    col: int

    def to_dict(self) -> dict[str, Any]:
        return {"target": self.target, "detail": self.detail,
                "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "WriteEvent":
        return cls(**doc)


@dataclass
class IterEvent:
    """One iteration over an unordered collection (an RL008 candidate)."""

    kind: str  # "set" or "scan"
    detail: str
    line: int
    col: int

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "detail": self.detail,
                "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "IterEvent":
        return cls(**doc)


@dataclass
class Flow:
    """One dataflow step: ``target`` gets a value read from ``reads``
    and the results of ``calls`` (``target=None`` for a ``return``)."""

    target: str | None
    reads: tuple[str, ...]
    calls: tuple[str, ...]
    source: bool  # the expression contains a direct timing source
    line: int
    col: int

    def to_dict(self) -> dict[str, Any]:
        return {"target": self.target, "reads": list(self.reads),
                "calls": list(self.calls), "source": self.source,
                "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Flow":
        return cls(target=doc["target"], reads=tuple(doc["reads"]),
                   calls=tuple(doc["calls"]), source=doc["source"],
                   line=doc["line"], col=doc["col"])


@dataclass
class Sink:
    """A fingerprinted destination (RL009): manifest field or metric."""

    kind: str  # "manifest", "manifest-item", or "metric"
    field: str  # kwarg/attr name or the metric name
    reads: tuple[str, ...]
    calls: tuple[str, ...]
    source: bool
    line: int
    col: int

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "field": self.field,
                "reads": list(self.reads), "calls": list(self.calls),
                "source": self.source, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Sink":
        return cls(kind=doc["kind"], field=doc["field"],
                   reads=tuple(doc["reads"]), calls=tuple(doc["calls"]),
                   source=doc["source"], line=doc["line"], col=doc["col"])


@dataclass
class FunctionSummary:
    """Everything the flow rules need to know about one function."""

    qualname: str  # "fn", "Class.method", or "<module>"
    line: int
    col: int
    calls: list[tuple[str, int, int]] = field(default_factory=list)
    writes: list[WriteEvent] = field(default_factory=list)
    iters: list[IterEvent] = field(default_factory=list)
    flows: list[Flow] = field(default_factory=list)
    sinks: list[Sink] = field(default_factory=list)
    returns_source: bool = False  # a return expr is a direct source

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname, "line": self.line, "col": self.col,
            "calls": [list(c) for c in self.calls],
            "writes": [w.to_dict() for w in self.writes],
            "iters": [i.to_dict() for i in self.iters],
            "flows": [f.to_dict() for f in self.flows],
            "sinks": [s.to_dict() for s in self.sinks],
            "returns_source": self.returns_source,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=doc["qualname"], line=doc["line"], col=doc["col"],
            calls=[tuple(c) for c in doc["calls"]],
            writes=[WriteEvent.from_dict(w) for w in doc["writes"]],
            iters=[IterEvent.from_dict(i) for i in doc["iters"]],
            flows=[Flow.from_dict(f) for f in doc["flows"]],
            sinks=[Sink.from_dict(s) for s in doc["sinks"]],
            returns_source=doc["returns_source"],
        )


@dataclass
class ClassSummary:
    """One class: its (resolved) bases and member names."""

    name: str
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "bases": list(self.bases),
                "methods": list(self.methods)}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ClassSummary":
        return cls(name=doc["name"], bases=list(doc["bases"]),
                   methods=list(doc["methods"]))


@dataclass
class ModuleSummary:
    """The flow digest of one parsed module."""

    module: str
    path: str
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    #: Top-level names bound in this module (defs, classes, assignments).
    toplevel: list[str] = field(default_factory=list)
    #: Resolved references registered as shard-unit entry points.
    shard_entries: list[str] = field(default_factory=list)
    #: The file's suppression-comment lines, so cached flow findings
    #: still honour them without re-reading the file.
    suppressions: dict[int, list[str] | None] = field(default_factory=dict)
    parse_error: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "module": self.module, "path": self.path,
            "imports": dict(self.imports),
            "functions": {k: f.to_dict() for k, f in self.functions.items()},
            "classes": {k: c.to_dict() for k, c in self.classes.items()},
            "toplevel": list(self.toplevel),
            "shard_entries": list(self.shard_entries),
            "suppressions": {
                str(line): (list(rules) if rules is not None else None)
                for line, rules in self.suppressions.items()
            },
            "parse_error": self.parse_error,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "ModuleSummary":
        return cls(
            module=doc["module"], path=doc["path"],
            imports=dict(doc["imports"]),
            functions={
                k: FunctionSummary.from_dict(f)
                for k, f in doc["functions"].items()
            },
            classes={
                k: ClassSummary.from_dict(c)
                for k, c in doc["classes"].items()
            },
            toplevel=list(doc["toplevel"]),
            shard_entries=list(doc["shard_entries"]),
            suppressions={
                int(line): (frozenset(rules) if rules is not None else None)
                for line, rules in doc["suppressions"].items()
            },
            parse_error=doc["parse_error"],
        )

    def suppression_map(self) -> SuppressionMap:
        return {
            line: (frozenset(rules) if rules is not None else None)
            for line, rules in self.suppressions.items()
        }


# ----------------------------------------------------------------------
# Module naming and import resolution
# ----------------------------------------------------------------------


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, walking up through packages."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


def _package_of(module: str, is_package: bool) -> str:
    """The package a module's relative imports resolve against."""
    if is_package:
        return module
    return module.rpartition(".")[0]


def _resolve_import_from(
    node: ast.ImportFrom, package: str
) -> str | None:
    """Absolute dotted base of a ``from X import ...`` statement."""
    if node.level == 0:
        return node.module or None
    base_parts = package.split(".") if package else []
    drop = node.level - 1
    if drop > len(base_parts):
        return None
    if drop:
        base_parts = base_parts[: len(base_parts) - drop]
    if node.module:
        base_parts.extend(node.module.split("."))
    return ".".join(base_parts) if base_parts else None


def _dotted(node: ast.AST) -> str | None:
    """A ``Name``/``Attribute`` chain as ``"a.b.c"``, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


def summarize_source(source: str, path: str, module: str) -> ModuleSummary:
    """Reduce one module's source text to its flow summary."""
    summary = ModuleSummary(module=module, path=path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        summary.parse_error = True
        return summary
    summary.suppressions = {
        line: (list(rules) if rules is not None else None)
        for line, rules in parse_suppressions(source).items()
    }
    _Extractor(summary, tree).run()
    return summary


def summarize_file(path: Path, module: str | None = None) -> ModuleSummary:
    """Parse and summarize one file on disk."""
    if module is None:
        module = module_name_for(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        summary = ModuleSummary(module=module, path=str(path))
        summary.parse_error = True
        return summary
    return summarize_source(source, str(path), module)


class _Extractor:
    """Walks one module tree, filling in its :class:`ModuleSummary`."""

    def __init__(self, summary: ModuleSummary, tree: ast.Module) -> None:
        self.summary = summary
        self.tree = tree
        self.module = summary.module
        self.is_package = summary.path.endswith("__init__.py")
        self.package = _package_of(self.module, self.is_package)
        #: local top-level name -> absolute dotted target.
        self.bindings: dict[str, str] = {}

    # -- pass 1: module-level bindings ---------------------------------

    def run(self) -> None:
        self._collect_bindings()
        body_fn = self._extract_function(
            self.tree, "<module>", class_name=None
        )
        self.summary.functions["<module>"] = body_fn
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(node)

    def _collect_bindings(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.bindings[local] = target
                    self.summary.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = _resolve_import_from(node, self.package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    target = f"{base}.{alias.name}"
                    self.bindings[local] = target
                    self.summary.imports[local] = target
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                self.bindings[node.name] = f"{self.module}.{node.name}"
                self.summary.toplevel.append(node.name)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            self.bindings.setdefault(
                                name_node.id, f"{self.module}.{name_node.id}"
                            )
                            self.summary.toplevel.append(name_node.id)

    def _add_class(self, node: ast.ClassDef) -> None:
        cls = ClassSummary(name=node.name)
        for base in node.bases:
            dotted = _dotted(base)
            if dotted:
                cls.bases.append(self._substitute(dotted))
        for member in node.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods.append(member.name)
                self._add_function(member, class_name=node.name)
        self.summary.classes[node.name] = cls

    def _add_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        qualname = (
            f"{class_name}.{node.name}" if class_name else node.name
        )
        fn = self._extract_function(node, qualname, class_name)
        fn.line, fn.col = node.lineno, node.col_offset + 1
        self.summary.functions[qualname] = fn
        for decorator in node.decorator_list:
            name = _dotted(
                decorator.func if isinstance(decorator, ast.Call) else decorator
            )
            if name and self._substitute(name).split(".")[-1] == _UNIT_MARKER:
                self.summary.shard_entries.append(
                    f"{self.module}.{qualname}"
                )

    # -- name substitution ---------------------------------------------

    def _substitute(self, dotted: str) -> str:
        """Replace the head of a dotted name with its module binding."""
        head, _, rest = dotted.partition(".")
        target = self.bindings.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    # -- pass 2: per-function extraction -------------------------------

    def _extract_function(
        self,
        node: ast.AST,
        qualname: str,
        class_name: str | None,
    ) -> FunctionSummary:
        fn = FunctionSummary(
            qualname=qualname,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
        )
        walker = _FunctionWalker(self, fn, node, class_name)
        walker.run()
        return fn


class _FunctionWalker:
    """Single pass over one function body (nested defs folded in)."""

    def __init__(
        self,
        extractor: _Extractor,
        fn: FunctionSummary,
        node: ast.AST,
        class_name: str | None,
    ) -> None:
        self.x = extractor
        self.fn = fn
        self.node = node
        self.class_name = class_name
        self.is_module_body = fn.qualname == "<module>"
        self.locals: set[str] = set()
        self.globals_declared: set[str] = set()
        #: local var -> resolved constructor dotted name ("...SectionTimer").
        self.ctor_types: dict[str, str] = {}
        #: local var -> "set" | "scan" (RL008 kind tracking).
        self.iter_kinds: dict[str, str] = {}

    # -- driving -------------------------------------------------------

    def run(self) -> None:
        self._collect_locals()
        for child in ast.iter_child_nodes(self.node):
            if isinstance(self.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child in self.node.decorator_list:
                    continue
            if self.is_module_body and isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue  # their bodies are summarized separately
            self._visit(child)

    def _collect_locals(self) -> None:
        if isinstance(self.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = self.node.args
            for arg in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *( [args.vararg] if args.vararg else [] ),
                *( [args.kwarg] if args.kwarg else [] ),
            ):
                self.locals.add(arg.arg)
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Global):
                self.globals_declared.update(sub.names)
            elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for target in targets:
                    for name in ast.walk(target):
                        # Only Store-context names bind: the base of
                        # ``d[k] = v`` is a *read* of d, not a local.
                        if isinstance(name, ast.Name) and isinstance(
                            name.ctx, ast.Store
                        ):
                            self.locals.add(name.id)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                for name in ast.walk(sub.target):
                    if isinstance(name, ast.Name):
                        self.locals.add(name.id)
            elif isinstance(sub, ast.comprehension):
                for name in ast.walk(sub.target):
                    if isinstance(name, ast.Name):
                        self.locals.add(name.id)
            elif isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    if item.optional_vars is not None:
                        for name in ast.walk(item.optional_vars):
                            if isinstance(name, ast.Name):
                                self.locals.add(name.id)
            elif isinstance(sub, ast.ExceptHandler) and sub.name:
                self.locals.add(sub.name)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if sub is not self.node:
                    self.locals.add(sub.name)
        self.locals -= self.globals_declared
        if self.is_module_body:
            # Module-level names are the module's bindings, not locals.
            self.locals = set()

    # -- name resolution inside this function --------------------------

    def _resolve(self, dotted: str) -> str | None:
        """Resolve a dotted reference to an absolute-ish name.

        Locals hide module bindings; constructor-typed locals resolve
        method calls (``timer.section`` -> ``...SectionTimer.section``);
        ``self``/``cls`` resolve into the enclosing class.
        """
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and self.class_name and rest:
            return f"{self.x.module}.{self.class_name}.{rest}"
        if head in self.locals:
            ctor = self.ctor_types.get(head)
            if ctor and rest and "." not in rest:
                return f"{ctor}.{rest}"
            return None
        substituted = self.x._substitute(dotted)
        if substituted == dotted and "." not in dotted:
            # A bare, unbound name: builtins stay as-is; anything else
            # is unknown.
            return dotted
        return substituted

    # -- visiting ------------------------------------------------------

    def _visit(self, node: ast.AST) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._handle_call(sub)
            elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                self._handle_assign(sub)
            elif isinstance(sub, (ast.For, ast.AsyncFor)):
                self._check_iterable(sub.iter)
            elif isinstance(sub, ast.comprehension):
                self._check_iterable(sub.iter)
            elif isinstance(sub, ast.Return) and sub.value is not None:
                reads, calls, source = self._expr_facts(sub.value)
                self.fn.flows.append(Flow(
                    target=None, reads=reads, calls=calls, source=source,
                    line=sub.lineno, col=sub.col_offset + 1,
                ))
                if source:
                    self.fn.returns_source = True

    # -- calls ----------------------------------------------------------

    def _handle_call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        resolved = self._resolve(dotted)
        if resolved is None:
            return
        self.fn.calls.append(
            (resolved, node.lineno, node.col_offset + 1)
        )
        self._check_mutator(node, dotted, resolved)
        self._check_entry_registration(node, resolved)
        self._check_sinks(node, resolved)

    def _check_mutator(
        self, node: ast.Call, dotted: str, resolved: str
    ) -> None:
        """``X.append(...)`` on a module-level binding is a write."""
        parts = dotted.split(".")
        if len(parts) < 2 or parts[-1] not in _MUTATORS:
            return
        base = ".".join(parts[:-1])
        target = self._module_state_target(base)
        if target is not None:
            self.fn.writes.append(WriteEvent(
                target=target,
                detail=f"mutating call {dotted}()",
                line=node.lineno, col=node.col_offset + 1,
            ))

    def _check_entry_registration(
        self, node: ast.Call, resolved: str
    ) -> None:
        """Record ``fn=`` references of WorkUnit/ShardPlan.enumerate."""
        fn_arg: ast.AST | None = None
        if resolved.split(".")[-1] in _UNIT_CTORS:
            for kw in node.keywords:
                if kw.arg == "fn":
                    fn_arg = kw.value
            if fn_arg is None and len(node.args) >= 2:
                fn_arg = node.args[1]
        elif any(resolved.endswith(e) for e in _UNIT_ENUMERATORS):
            for kw in node.keywords:
                if kw.arg == "fn":
                    fn_arg = kw.value
            if fn_arg is None and node.args:
                fn_arg = node.args[0]
        if fn_arg is None:
            return
        dotted = _dotted(fn_arg)
        if dotted is None:
            return
        ref = self._resolve(dotted)
        if ref is None:
            return
        if "." not in ref:
            ref = f"{self.x.module}.{ref}"
        self.summary_entries().append(ref)

    def summary_entries(self) -> list[str]:
        return self.x.summary.shard_entries

    # -- sinks (RL009) ---------------------------------------------------

    def _check_sinks(self, node: ast.Call, resolved: str) -> None:
        last = resolved.split(".")[-1]
        if last == "RunManifest":
            for kw in node.keywords:
                if kw.arg in _MANIFEST_FIELDS:
                    reads, calls, source = self._expr_facts(kw.value)
                    self.fn.sinks.append(Sink(
                        kind="manifest", field=kw.arg,
                        reads=reads, calls=calls, source=source,
                        line=kw.value.lineno, col=kw.value.col_offset + 1,
                    ))
        elif last in _METRIC_EMITTERS and node.args:
            name_arg = node.args[0]
            if not (
                isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
            ):
                return
            metric = name_arg.value
            if metric.startswith(_STRIPPED_METRIC_PREFIXES):
                return
            for value in (*node.args[1:], *[kw.value for kw in node.keywords]):
                reads, calls, source = self._expr_facts(value)
                if reads or calls or source:
                    self.fn.sinks.append(Sink(
                        kind="metric", field=metric,
                        reads=reads, calls=calls, source=source,
                        line=node.lineno, col=node.col_offset + 1,
                    ))

    # -- assignments -----------------------------------------------------

    def _handle_assign(
        self, node: ast.Assign | ast.AnnAssign | ast.AugAssign
    ) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        value = node.value
        for target in targets:
            self._check_state_write(target, node)
            self._check_item_sink(target, value, node)
        if value is None:
            return
        reads, calls, source = self._expr_facts(value)
        for target in targets:
            if isinstance(target, ast.Name):
                extra = (
                    (target.id,) if isinstance(node, ast.AugAssign) else ()
                )
                self.fn.flows.append(Flow(
                    target=target.id, reads=reads + extra, calls=calls,
                    source=source, line=node.lineno,
                    col=node.col_offset + 1,
                ))
                self._track_types(target.id, value)

    def _track_types(self, name: str, value: ast.AST) -> None:
        kind = self._iter_kind(value)
        if kind is not None:
            self.iter_kinds[name] = kind
        else:
            self.iter_kinds.pop(name, None)
        self.ctor_types.pop(name, None)
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted is not None:
                resolved = self._resolve(dotted)
                if resolved and resolved.split(".")[-1][:1].isupper():
                    self.ctor_types[name] = resolved

    def _check_state_write(self, target: ast.AST, node: ast.AST) -> None:
        """Classify stores that hit module- or class-level state."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                self.fn.writes.append(WriteEvent(
                    target=f"{self.x.module}.{target.id}",
                    detail=f"assignment to global {target.id!r}",
                    line=line, col=col,
                ))
            return
        if isinstance(target, ast.Subscript):
            base = _dotted(target.value)
            if base is None:
                return
            state = self._module_state_target(base)
            if state is not None:
                self.fn.writes.append(WriteEvent(
                    target=state,
                    detail=f"item store into {base}[...]",
                    line=line, col=col,
                ))
            return
        if isinstance(target, ast.Attribute):
            state = self._attribute_write_target(target)
            if state is not None:
                self.fn.writes.append(WriteEvent(
                    target=state,
                    detail=f"attribute store {_dotted(target) or target.attr}",
                    line=line, col=col,
                ))

    def _attribute_write_target(self, target: ast.Attribute) -> str | None:
        # type(self).attr = ... / self.__class__.attr = ...
        value = target.value
        if self.class_name is not None:
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "type"
                and len(value.args) == 1
                and isinstance(value.args[0], ast.Name)
                and value.args[0].id == "self"
            ):
                return f"{self.x.module}.{self.class_name}.{target.attr}"
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "__class__"
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
            ):
                return f"{self.x.module}.{self.class_name}.{target.attr}"
        base = _dotted(value)
        if base is None:
            return None
        state = self._module_state_target(base)
        if state is None:
            return None
        return f"{state}.{target.attr}"

    def _module_state_target(self, base: str) -> str | None:
        """Resolve ``base`` if it names module/class-level state.

        Locals (including ``self``) are instance-or-stack state and are
        never flagged; anything that resolves through a module binding
        — this module's or an imported one's — is shared state.
        """
        head = base.split(".")[0]
        if head in ("self", "cls") or head in self.locals:
            return None
        resolved = self.x._substitute(base)
        if resolved == base and "." not in base:
            if base not in self.x.bindings:
                return None  # unknown bare name (builtin, etc.)
            resolved = self.x.bindings[base]
        return resolved

    # -- RL009 subscript sinks ------------------------------------------

    def _check_item_sink(
        self, target: ast.AST, value: ast.AST | None, node: ast.AST
    ) -> None:
        """``m.headline[...] = tainted`` style manifest-field stores."""
        if value is None or not isinstance(target, ast.Subscript):
            return
        if not isinstance(target.value, ast.Attribute):
            return
        if target.value.attr not in _MANIFEST_FIELDS:
            return
        reads, calls, source = self._expr_facts(value)
        if reads or calls or source:
            self.fn.sinks.append(Sink(
                kind="manifest-item", field=target.value.attr,
                reads=reads, calls=calls, source=source,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
            ))

    # -- RL008 iteration ------------------------------------------------

    def _iter_kind(self, expr: ast.AST) -> str | None:
        """Whether an expression yields unordered elements."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(expr, ast.Name):
            return self.iter_kinds.get(expr.id)
        if not isinstance(expr, ast.Call):
            return None
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _SCAN_METHODS
        ):
            # Any ``<expr>.glob/rglob/iterdir(...)`` — including bases
            # that aren't name chains, like ``Path(root).glob(...)``.
            return "scan"
        dotted = _dotted(expr.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        last = parts[-1]
        if last in ("sorted",):
            return None
        if last in ("list", "tuple", "reversed") and expr.args:
            # Order-preserving wrappers propagate the inner kind.
            return self._iter_kind(expr.args[0])
        if last in ("set", "frozenset"):
            return "set"
        resolved = self._resolve(dotted) or dotted
        if resolved in _SCAN_FUNCTIONS:
            return "scan"
        if (
            len(parts) >= 2
            and last in _SET_METHODS
            and self.iter_kinds.get(parts[0]) == "set"
        ):
            return "set"
        return None

    def _check_iterable(self, iterable: ast.AST) -> None:
        kind = self._iter_kind(iterable)
        if kind is None:
            return
        desc = _dotted(iterable if not isinstance(iterable, ast.Call)
                       else iterable.func)
        if (
            desc is None
            and isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
        ):
            desc = iterable.func.attr
        if kind == "set":
            detail = (
                f"iteration over unordered set "
                f"{desc + ' ' if desc else ''}(order is hash-dependent)"
            ).replace("  ", " ")
        else:
            detail = (
                f"iteration over unsorted filesystem scan"
                + (f" {desc}()" if desc else "")
                + " (order is OS-dependent)"
            )
        self.fn.iters.append(IterEvent(
            kind=kind, detail=detail,
            line=getattr(iterable, "lineno", 1),
            col=getattr(iterable, "col_offset", 0) + 1,
        ))

    # -- expression facts for taint -------------------------------------

    def _expr_facts(
        self, expr: ast.AST
    ) -> tuple[tuple[str, ...], tuple[str, ...], bool]:
        """(local reads, resolved calls, direct-source?) of an expression."""
        reads: list[str] = []
        calls: list[str] = []
        source = False
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id in self.locals:
                    reads.append(sub.id)
            elif isinstance(sub, ast.Call):
                dotted = _dotted(sub.func)
                if dotted is None:
                    continue
                resolved = self._resolve(dotted)
                if resolved is None:
                    continue
                calls.append(resolved)
                if is_timing_source(resolved):
                    source = True
            elif isinstance(sub, ast.Attribute) and sub.attr == "total_s":
                base = _dotted(sub.value)
                if base is not None:
                    ctor = self.ctor_types.get(base.split(".")[0], "")
                    if ctor.endswith("SectionTimer"):
                        source = True
        return tuple(dict.fromkeys(reads)), tuple(dict.fromkeys(calls)), source


def is_timing_source(resolved: str) -> bool:
    """Whether a resolved call name originates wall-clock taint."""
    return (
        resolved.startswith(_TIMING_MODULE + ".")
        and resolved.split(".")[-1] not in ("observe_rate", "profiled_phase")
    )


def iter_all_functions(
    summaries: dict[str, ModuleSummary]
) -> Iterator[tuple[str, ModuleSummary, FunctionSummary]]:
    """Yield ``(canonical_name, module_summary, fn_summary)`` triples."""
    for module in sorted(summaries):
        summary = summaries[module]
        for qualname in sorted(summary.functions):
            yield f"{module}.{qualname}", summary, summary.functions[qualname]
