"""Finding baselines: adopt flow analysis on a tree with known debt.

A baseline is a JSON snapshot of the findings a tree currently has.
``repro-lint --write-baseline FILE`` records them; later runs with
``--baseline FILE`` report only findings *not* in the snapshot, so new
regressions fail CI while the recorded debt is paid down separately.

Findings are keyed by ``rule::path::message`` — deliberately excluding
line/column so that unrelated edits shifting a finding up or down the
file do not "un-baseline" it.  Identical findings are counted: if a
file gains a *second* instance of a baselined finding, the extra one
is reported.  The repo's own tree carries an empty baseline — the
acceptance bar is zero findings, and the mechanism exists for forks
and feature branches mid-cleanup.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import LintError
from .findings import Finding

#: Bump when the baseline JSON layout changes incompatibly.
BASELINE_SCHEMA_VERSION = 1


def finding_key(finding: Finding) -> str:
    """Stable identity of a finding across line-number churn."""
    return f"{finding.rule}::{finding.path}::{finding.message}"


@dataclass(frozen=True)
class Baseline:
    """An accepted-findings snapshot: key -> occurrence count."""

    counts: dict[str, int] = field(default_factory=dict)

    def filter(self, findings: Sequence[Finding]) -> list[Finding]:
        """Return the findings not covered by the baseline.

        Each baselined key absorbs up to its recorded count; surplus
        occurrences (and unknown keys) pass through in input order.
        """
        remaining = dict(self.counts)
        fresh: list[Finding] = []
        for finding in findings:
            key = finding_key(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                fresh.append(finding)
        return fresh

    def to_dict(self) -> dict:
        return {
            "schema_version": BASELINE_SCHEMA_VERSION,
            "findings": {key: self.counts[key] for key in sorted(self.counts)},
        }

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: dict[str, int] = {}
        for finding in findings:
            key = finding_key(finding)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts=counts)


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> Baseline:
    """Snapshot ``findings`` to ``path`` as schema-versioned JSON."""
    baseline = Baseline.from_findings(findings)
    target = Path(path)
    try:
        target.write_text(
            json.dumps(baseline.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    except OSError as error:
        raise LintError(f"cannot write baseline {target}: {error}")
    return baseline


def load_baseline(path: str | Path) -> Baseline:
    """Load a baseline; malformed or unreadable files raise LintError."""
    source = Path(path)
    try:
        raw = json.loads(source.read_text(encoding="utf-8"))
    except OSError as error:
        raise LintError(f"cannot read baseline {source}: {error}")
    except json.JSONDecodeError as error:
        raise LintError(f"baseline {source} is not valid JSON: {error}")
    if not isinstance(raw, dict):
        raise LintError(f"baseline {source}: expected a JSON object")
    version = raw.get("schema_version")
    if version != BASELINE_SCHEMA_VERSION:
        raise LintError(
            f"baseline {source}: schema_version {version!r} unsupported "
            f"(expected {BASELINE_SCHEMA_VERSION})"
        )
    findings = raw.get("findings")
    if not isinstance(findings, dict):
        raise LintError(f"baseline {source}: 'findings' must be an object")
    counts: dict[str, int] = {}
    for key, count in findings.items():
        if not isinstance(key, str) or not isinstance(count, int) or count < 1:
            raise LintError(
                f"baseline {source}: entry {key!r} must map a string key "
                f"to a positive count"
            )
        counts[key] = count
    return Baseline(counts=counts)
