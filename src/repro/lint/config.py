"""``[tool.repro-lint]`` configuration in ``pyproject.toml``.

Four keys, all optional:

* ``paths`` — what to lint when the CLI gets no path arguments;
* ``select`` — default rule ids (all rules when empty);
* ``exclude`` — glob patterns for files to skip;
* ``baseline`` — a baseline JSON file applied by ``--project`` runs
  (a string; the CLI ``--baseline`` flag overrides it).

Discovery walks up from the working directory; a malformed table raises
:class:`~repro.errors.LintConfigError`, which the CLI turns into a
one-line error and exit code 2.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass
from pathlib import Path

from ..errors import LintConfigError

_SECTION = ("tool", "repro-lint")
_KEYS = ("paths", "select", "exclude", "baseline")


@dataclass(frozen=True)
class LintConfig:
    """Resolved lint configuration (CLI defaults)."""

    paths: tuple[str, ...] = ()
    select: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    baseline: str | None = None
    source: Path | None = None


def find_pyproject(start: Path | None = None) -> Path | None:
    """The nearest ``pyproject.toml`` at or above ``start`` (cwd)."""
    directory = (start or Path.cwd()).resolve()
    for candidate in (directory, *directory.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _string_tuple(value: object, key: str, source: Path) -> tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    if isinstance(value, list) and all(isinstance(v, str) for v in value):
        return tuple(value)
    raise LintConfigError(
        f"{source}: [tool.repro-lint] key {key!r} must be a string or "
        "list of strings"
    )


def load_config(pyproject: Path | None = None) -> LintConfig:
    """Load the lint configuration from ``pyproject`` (or discover it).

    A missing file or missing table yields the empty defaults; a file
    that cannot be read or parsed, or a table with unknown keys or wrong
    types, raises :class:`LintConfigError`.
    """
    explicit = pyproject is not None
    if pyproject is None:
        pyproject = find_pyproject()
        if pyproject is None:
            return LintConfig()
    try:
        with open(pyproject, "rb") as handle:
            document = tomllib.load(handle)
    except OSError as error:
        raise LintConfigError(f"cannot read config {pyproject}: {error}")
    except tomllib.TOMLDecodeError as error:
        raise LintConfigError(f"{pyproject}: invalid TOML: {error}")
    table: object = document
    for part in _SECTION:
        if not isinstance(table, dict) or part not in table:
            if explicit and part == _SECTION[-1]:
                # An explicitly-passed config without the table is fine;
                # it simply contributes defaults.
                return LintConfig(source=pyproject)
            return LintConfig(source=pyproject if explicit else None)
        table = table[part]
    if not isinstance(table, dict):
        raise LintConfigError(
            f"{pyproject}: [tool.repro-lint] must be a table"
        )
    unknown = sorted(set(table) - set(_KEYS))
    if unknown:
        raise LintConfigError(
            f"{pyproject}: unknown [tool.repro-lint] key(s): "
            f"{', '.join(unknown)}"
        )
    baseline = table.get("baseline")
    if baseline is not None and not isinstance(baseline, str):
        raise LintConfigError(
            f"{pyproject}: [tool.repro-lint] key 'baseline' must be a string"
        )
    return LintConfig(
        paths=_string_tuple(table.get("paths", []), "paths", pyproject),
        select=_string_tuple(table.get("select", []), "select", pyproject),
        exclude=_string_tuple(table.get("exclude", []), "exclude", pyproject),
        baseline=baseline,
        source=pyproject,
    )
