"""``# repro-lint: ignore[...]`` suppression comments.

A finding is suppressed when the physical line it is reported on carries
a suppression comment naming its rule (``# repro-lint: ignore[RL001]``,
multiple rules comma-separated) or a blanket ``# repro-lint: ignore``.
Comments are located with :mod:`tokenize`, so a matching string literal
in code does not suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize

#: ``None`` in the map means "all rules suppressed on this line".
SuppressionMap = dict[int, frozenset[str] | None]

_PATTERN = re.compile(
    r"repro-lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]*)\])?"
)


def parse_suppressions(source: str) -> SuppressionMap:
    """Map line numbers to the rule ids suppressed on that line."""
    suppressed: SuppressionMap = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(token.string)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                suppressed[token.start[0]] = None
            else:
                ids = frozenset(
                    part.strip().upper()
                    for part in rules.split(",")
                    if part.strip()
                )
                suppressed[token.start[0]] = ids or None
    except tokenize.TokenError:
        # A tokenization failure will surface as a parse-error finding;
        # suppressions in the broken tail are moot.
        pass
    return suppressed


def is_suppressed(suppressed: SuppressionMap, line: int, rule: str) -> bool:
    """Whether ``rule`` is suppressed on ``line``."""
    if line not in suppressed:
        return False
    rules = suppressed[line]
    return rules is None or rule.upper() in rules
