"""The lint engine: file discovery, parsing, rule dispatch, suppression.

The engine is deliberately import-light (ast + stdlib only) so the
linter itself never perturbs the simulation it polices.  Parse failures
are reported as rule ``RL000`` findings rather than crashing the run;
unreadable paths raise :class:`~repro.errors.LintError`, which the CLI
maps to exit code 2.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import LintError
from .findings import Finding
from .rules import FileContext, Rule, select_rules
from .suppress import is_suppressed, parse_suppressions

#: Pseudo-rule id for files that do not parse.
PARSE_ERROR_RULE = "RL000"


def _excluded(path: Path, exclude: Sequence[str]) -> bool:
    posix = path.as_posix()
    return any(
        fnmatch(posix, pattern) or fnmatch(path.name, pattern)
        for pattern in exclude
    )


def iter_python_files(
    paths: Iterable[str | Path], exclude: Sequence[str] = ()
) -> list[Path]:
    """Expand files/directories into the ordered list of files to lint.

    Explicitly named files are always included; directories are walked
    for ``*.py`` with ``exclude`` globs applied.  A path that does not
    exist raises :class:`LintError`.
    """
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not _excluded(candidate, exclude)
            )
        elif path.is_file():
            files.append(path)
        else:
            raise LintError(f"path does not exist: {path}")
    seen: set[Path] = set()
    unique = []
    for path in files:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def lint_source(
    source: str, path: str, rules: Sequence[Rule] | None = None
) -> list[Finding]:
    """Lint one in-memory module; returns sorted, unsuppressed findings."""
    if rules is None:
        rules = select_rules(None)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                col=(error.offset or 1),
                rule=PARSE_ERROR_RULE,
                severity="error",
                message=f"file does not parse: {error.msg}",
            )
        ]
    context = FileContext(path=path, source=source, tree=tree)
    suppressions = parse_suppressions(source)
    findings = [
        finding
        for rule in rules
        for finding in rule.check(context)
        if not is_suppressed(suppressions, finding.line, finding.rule)
    ]
    return sorted(findings)


def lint_file(path: Path, rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Lint one file on disk; unreadable files raise :class:`LintError`."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        raise LintError(f"cannot read {path}: {error}")
    except UnicodeDecodeError as error:
        raise LintError(f"cannot decode {path}: {error}")
    return lint_source(source, str(path), rules)


def lint_paths(
    paths: Iterable[str | Path],
    select: tuple[str, ...] | None = None,
    exclude: Sequence[str] = (),
) -> list[Finding]:
    """Lint files and directory trees; the library-level entry point."""
    rules = select_rules(tuple(select) if select else None)
    findings: list[Finding] = []
    for path in iter_python_files(paths, exclude):
        findings.extend(lint_file(path, rules))
    return findings


def flow_findings(
    files: Sequence[Path],
    select: tuple[str, ...] | None = None,
    cache: "SummaryCache | None" = None,
) -> list[Finding]:
    """Run the project-wide flow rules (RL007+) over ``files``.

    Builds one linked :class:`~repro.lint.flow.ProjectModel` (through
    the summary ``cache`` when given) and checks every selected flow
    rule against it.  Suppression comments apply exactly as for
    per-file rules — the summaries carry each file's suppression map,
    so cached files never need re-reading.
    """
    from .flow import build_project
    from .rules import select_flow_rules

    rules = select_flow_rules(tuple(select) if select else None)
    if not rules:
        return []
    project = build_project(files, cache)
    suppressions = {
        summary.path: summary.suppression_map()
        for summary in project.modules.values()
    }
    findings = [
        finding
        for rule in rules
        for finding in rule.check_project(project)
        if not is_suppressed(
            suppressions.get(finding.path, {}), finding.line, finding.rule
        )
    ]
    return sorted(findings)


def lint_project(
    paths: Iterable[str | Path],
    select: tuple[str, ...] | None = None,
    exclude: Sequence[str] = (),
    cache: "SummaryCache | None" = None,
) -> list[Finding]:
    """Per-file rules plus project-wide flow rules over whole trees.

    The library-level equivalent of ``repro-lint --project``: findings
    from both rule families, merged and sorted.
    """
    files = iter_python_files(paths, exclude)
    rules = select_rules(tuple(select) if select else None)
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path, rules))
    findings.extend(flow_findings(files, select, cache))
    return sorted(findings)
