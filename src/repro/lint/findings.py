"""The unit of lint output: one finding at one source location."""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, pinned to a file/line/column.

    ``rule`` is the stable identifier (``RL001``); ``hint`` is the
    how-to-fix guidance shown under the message in text output and
    carried verbatim in JSON output.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str
    hint: str | None = None

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly representation (stable key order)."""
        return asdict(self)

    def render(self) -> str:
        """One-line human-readable rendering, ``path:line:col: RULE msg``."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
