"""Power domains: named supplies owning sets of volatile loads.

A :class:`PowerDomain` is the unit of separation the attack exploits.  It
owns every volatile load (SRAM array, register file, DRAM module) fed by
one board net, and exposes exactly the transitions a rail can make:

* ``apply_power(v)`` — rail comes up (PMIC sequencing or probe hold-over);
* ``cut_power()`` — rail collapses (input disconnect, power gating);
* ``hold_external(v, min_v)`` — the rail *would* collapse but an attacker's
  probe keeps it alive, modulo a transient sag to ``min_v`` during the
  disconnect surge;
* ``elapse_unpowered(t, T)`` — decay while dark.

Loads are duck-typed against the :class:`PowerLoad` protocol, which
:class:`~repro.circuits.sram.SramArray` satisfies directly.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..errors import PowerError
from ..obs import OBS
from .events import PowerEventKind, PowerEventLog


@runtime_checkable
class PowerLoad(Protocol):
    """What a volatile load must support to live inside a domain."""

    name: str

    @property
    def powered(self) -> bool:
        """Whether the load currently has a supply."""

    def restore_power(self, voltage: float | None = None) -> float:
        """Re-apply power; returns the retained-bit fraction."""

    def power_down(self) -> None:
        """Remove the supply."""

    def elapse_unpowered(self, seconds: float, temperature_k: float) -> None:
        """Decay while unpowered."""

    def set_supply_voltage(self, voltage: float) -> int:
        """Move the supply to ``voltage``; returns cells lost."""

    def apply_voltage_transient(self, minimum_v: float) -> int:
        """Sag transiently to ``minimum_v``; returns cells lost."""


class PowerDomain:
    """One independently-powered region of the SoC."""

    def __init__(
        self,
        name: str,
        net_name: str,
        nominal_v: float,
        log: PowerEventLog | None = None,
    ) -> None:
        if nominal_v <= 0.0:
            raise PowerError(f"{name}: nominal voltage must be positive")
        self.name = name
        self.net_name = net_name
        self.nominal_v = nominal_v
        self.log = log or PowerEventLog()
        self._loads: list[PowerLoad] = []
        self._powered = False
        self._held_externally = False
        self._voltage = 0.0

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def attach_load(self, load: PowerLoad) -> PowerLoad:
        """Place a volatile load inside this domain."""
        if any(existing is load for existing in self._loads):
            raise PowerError(f"{self.name}: load {load.name!r} attached twice")
        self._loads.append(load)
        return load

    @property
    def loads(self) -> list[PowerLoad]:
        """The loads in this domain, in attachment order."""
        return list(self._loads)

    @property
    def powered(self) -> bool:
        """Whether the domain currently has a supply (PMIC or probe)."""
        return self._powered

    @property
    def held_externally(self) -> bool:
        """Whether an attacker's probe is the thing keeping this alive."""
        return self._held_externally

    @property
    def voltage(self) -> float:
        """Present domain voltage."""
        return self._voltage if self._powered else 0.0

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def apply_power(self, voltage: float | None = None) -> dict[str, float]:
        """Bring the rail up; returns per-load retained-bit fractions."""
        if self._powered:
            raise PowerError(f"{self.name}: domain already powered")
        voltage = self.nominal_v if voltage is None else voltage
        retained = {
            load.name: load.restore_power(voltage) for load in self._loads
        }
        self._powered = True
        self._held_externally = False
        self._voltage = voltage
        self.log.record(
            PowerEventKind.DOMAIN_POWERED, self.name, f"{voltage:.3f}V"
        )
        if OBS.enabled:
            OBS.gauge_set("power.domain.voltage_v", voltage, domain=self.name)
            for load_name, fraction in retained.items():
                OBS.histogram_record(
                    "power.domain.retained_fraction", fraction,
                    domain=self.name, load=load_name,
                )
        return retained

    def cut_power(self) -> None:
        """Collapse the rail; all loads begin unpowered decay."""
        if not self._powered:
            raise PowerError(f"{self.name}: domain already unpowered")
        for load in self._loads:
            load.power_down()
        self._powered = False
        self._held_externally = False
        self._voltage = 0.0
        self.log.record(PowerEventKind.DOMAIN_UNPOWERED, self.name)
        if OBS.enabled:
            OBS.gauge_set("power.domain.voltage_v", 0.0, domain=self.name)

    def hold_external(self, voltage: float, surge_minimum_v: float) -> int:
        """Keep the rail alive from a probe through a main-supply cut.

        ``surge_minimum_v`` is the lowest voltage reached during the
        disconnect surge (computed from the probe's electrical model);
        cells whose DRV it undercuts are lost.  Returns total cells lost.
        """
        if not self._powered:
            raise PowerError(
                f"{self.name}: cannot hold a rail that is already dark"
            )
        droop_depth_v = self._voltage - surge_minimum_v
        lost = 0
        for load in self._loads:
            lost += load.apply_voltage_transient(surge_minimum_v)
            lost += load.set_supply_voltage(voltage)
        self._held_externally = True
        self._voltage = voltage
        self.log.record(
            PowerEventKind.DOMAIN_HELD,
            self.name,
            f"{voltage:.3f}V, surge floor {surge_minimum_v:.3f}V, {lost} cells lost",
        )
        if OBS.enabled:
            OBS.counter_inc(
                "power.cells_lost_surge", lost, domain=self.name
            )
            OBS.gauge_set(
                "power.domain.surge_floor_v", surge_minimum_v, domain=self.name
            )
            OBS.gauge_set(
                "power.domain.droop_depth_v", droop_depth_v, domain=self.name
            )
            OBS.gauge_set("power.domain.voltage_v", voltage, domain=self.name)
        return lost

    def release_external_hold(self, pmic_voltage: float) -> None:
        """Hand the rail back to the PMIC after the system is repowered."""
        if not self._held_externally:
            raise PowerError(f"{self.name}: domain is not externally held")
        for load in self._loads:
            load.set_supply_voltage(pmic_voltage)
        self._held_externally = False
        self._voltage = pmic_voltage
        self.log.record(
            PowerEventKind.DOMAIN_RELEASED, self.name, f"{pmic_voltage:.3f}V"
        )

    def elapse_unpowered(self, seconds: float, temperature_k: float) -> None:
        """Decay every load for ``seconds`` at ``temperature_k``."""
        if self._powered:
            raise PowerError(f"{self.name}: domain is powered; nothing decays")
        for load in self._loads:
            load.elapse_unpowered(seconds, temperature_k)

    def scale_voltage(self, voltage: float) -> int:
        """DVFS / standby retention move: shift the rail while powered.

        Modern PMUs drop idle RAM domains toward the retention floor to
        cut leakage (paper §2.1).  Cells whose DRV the new level
        undercuts are lost; returns that count so callers can map the
        voltage/retention trade-off.
        """
        if not self._powered:
            raise PowerError(f"{self.name}: cannot scale an unpowered domain")
        if self._held_externally:
            raise PowerError(
                f"{self.name}: rail is externally held; the PMU cannot move it"
            )
        if voltage <= 0.0:
            raise PowerError("scaled voltage must be positive")
        lost = 0
        for load in self._loads:
            lost += load.set_supply_voltage(voltage)
        self._voltage = voltage
        self.log.record(
            PowerEventKind.NOTE,
            self.name,
            f"DVFS to {voltage:.3f}V, {lost} cells lost",
        )
        if OBS.enabled:
            OBS.counter_inc("power.cells_lost_dvfs", lost, domain=self.name)
            OBS.gauge_set("power.domain.voltage_v", voltage, domain=self.name)
        return lost

    def leakage_power_fraction(self) -> float:
        """Relative leakage power vs nominal (quadratic in voltage)."""
        if not self._powered:
            return 0.0
        return (self._voltage / self.nominal_v) ** 2
