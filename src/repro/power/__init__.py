"""Power-domain architecture: domains, gating, sequencing, event logs.

Paper §2.3 divides an SoC's supplies into core, memory, and I/O domains,
each independently gate-able and each surfacing at its own board net.
This package models that separation — the design choice Volt Boot
weaponises:

* :mod:`~repro.power.domain` — a named power domain owning a set of
  volatile loads (SRAM arrays, register files, DRAM modules);
* :mod:`~repro.power.pmu` — the on-chip power management unit that
  sequences and gates domains;
* :mod:`~repro.power.events` — a simulated-time event log so attacks and
  experiments can reconstruct exactly what happened to each rail.
"""

from .domain import PowerDomain, PowerLoad
from .events import PowerEvent, PowerEventKind, PowerEventLog, SimClock
from .pmu import PowerManagementUnit

__all__ = [
    "PowerDomain",
    "PowerLoad",
    "PowerEvent",
    "PowerEventKind",
    "PowerEventLog",
    "SimClock",
    "PowerManagementUnit",
]
