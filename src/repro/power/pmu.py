"""The on-chip Power Management Unit.

The PMU owns the SoC's power domains, sequences them at startup, and
power-gates them at runtime (paper §2.3: domains "allow full power down
at runtime when not needed").  Volt Boot does not subvert the PMU — it
bypasses it entirely by driving a rail from outside — but a faithful PMU
is needed for the boot flows and for the runtime-gating behaviours the
countermeasures section discusses.
"""

from __future__ import annotations

from ..errors import PowerError
from .domain import PowerDomain
from .events import PowerEventLog


class PowerManagementUnit:
    """Sequencer and runtime gate controller for a set of power domains."""

    def __init__(self, log: PowerEventLog) -> None:
        self.log = log
        self._domains: dict[str, PowerDomain] = {}
        self._sequence: list[str] = []

    def add_domain(self, domain: PowerDomain) -> PowerDomain:
        """Register a domain; startup sequence follows registration order."""
        if domain.name in self._domains:
            raise PowerError(f"duplicate power domain {domain.name!r}")
        self._domains[domain.name] = domain
        self._sequence.append(domain.name)
        return domain

    def domain(self, name: str) -> PowerDomain:
        """Look up a domain by name."""
        try:
            return self._domains[name]
        except KeyError:
            raise PowerError(f"unknown power domain {name!r}") from None

    def domains(self) -> list[PowerDomain]:
        """All domains in startup-sequence order."""
        return [self._domains[name] for name in self._sequence]

    # ------------------------------------------------------------------
    # Sequencing
    # ------------------------------------------------------------------

    def power_up_sequence(
        self, rail_voltages: dict[str, float]
    ) -> dict[str, dict[str, float]]:
        """Bring up all domains in order from the given rail voltages.

        ``rail_voltages`` maps domain name -> live rail voltage.  Domains
        that are already powered (e.g. held alive by an attacker's probe)
        are handed back to the PMIC rather than re-powered — this is the
        exact moment Volt Boot's retained state survives a reboot.
        Returns per-domain, per-load retained-bit fractions for the
        domains that actually came up from dark.
        """
        retained: dict[str, dict[str, float]] = {}
        for name in self._sequence:
            domain = self._domains[name]
            voltage = rail_voltages.get(name, domain.nominal_v)
            if domain.powered:
                if domain.held_externally:
                    domain.release_external_hold(voltage)
                continue
            retained[name] = domain.apply_power(voltage)
        return retained

    def power_down_all(self) -> None:
        """Collapse every still-powered, non-held domain (input cut)."""
        for name in reversed(self._sequence):
            domain = self._domains[name]
            if domain.powered and not domain.held_externally:
                domain.cut_power()

    # ------------------------------------------------------------------
    # Runtime gating
    # ------------------------------------------------------------------

    def gate(self, name: str) -> None:
        """Power-gate one domain at runtime (software-initiated)."""
        domain = self.domain(name)
        if not domain.powered:
            raise PowerError(f"{name}: cannot gate an unpowered domain")
        if domain.held_externally:
            raise PowerError(f"{name}: rail is externally held; gating fails")
        domain.cut_power()

    def ungate(self, name: str, voltage: float | None = None) -> dict[str, float]:
        """Re-enable a gated domain; returns retained-bit fractions."""
        domain = self.domain(name)
        if domain.powered:
            raise PowerError(f"{name}: domain is already powered")
        return domain.apply_power(voltage)
