"""Simulated time and the power-event log.

Attacks are sequences of electrical events (probe attached, input cut,
surge, hold, reboot).  Experiments need to reconstruct and assert on that
sequence, so every board keeps a :class:`PowerEventLog` stamped by a
shared :class:`SimClock`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import PowerError
from ..obs import OBS


class SimClock:
    """A monotonically advancing simulated-time counter (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds since board creation."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance time by ``seconds`` and return the new now."""
        if seconds < 0.0:
            raise PowerError("time cannot run backwards")
        self._now += seconds
        return self._now


class PowerEventKind(enum.Enum):
    """Classification of power events, for filtering in reports."""

    INPUT_CONNECTED = "input-connected"
    INPUT_DISCONNECTED = "input-disconnected"
    DOMAIN_POWERED = "domain-powered"
    DOMAIN_UNPOWERED = "domain-unpowered"
    DOMAIN_HELD = "domain-held"
    DOMAIN_RELEASED = "domain-released"
    VOLTAGE_TRANSIENT = "voltage-transient"
    PROBE_ATTACHED = "probe-attached"
    PROBE_DETACHED = "probe-detached"
    BOOT = "boot"
    NOTE = "note"


@dataclass(frozen=True)
class PowerEvent:
    """One timestamped event on the board's power network."""

    time_s: float
    kind: PowerEventKind
    subject: str
    detail: str = ""

    def __str__(self) -> str:
        detail = f" ({self.detail})" if self.detail else ""
        return f"[{self.time_s * 1e3:10.3f}ms] {self.kind.value}: {self.subject}{detail}"


@dataclass
class PowerEventLog:
    """Append-only log of :class:`PowerEvent` records."""

    clock: SimClock = field(default_factory=SimClock)
    events: list[PowerEvent] = field(default_factory=list)

    def record(
        self, kind: PowerEventKind, subject: str, detail: str = ""
    ) -> PowerEvent:
        """Append an event stamped with the current simulated time."""
        event = PowerEvent(self.clock.now, kind, subject, detail)
        self.events.append(event)
        if OBS.enabled:
            OBS.power_event(event)
        return event

    def of_kind(self, kind: PowerEventKind) -> list[PowerEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind is kind]

    def last(self, kind: PowerEventKind) -> PowerEvent:
        """Most recent event of ``kind``."""
        for event in reversed(self.events):
            if event.kind is kind:
                return event
        raise PowerError(f"no event of kind {kind.value!r} recorded")

    def transcript(self) -> str:
        """Human-readable rendering of the whole log."""
        return "\n".join(str(e) for e in self.events)
