"""Attack-step tracing: spans and events.

A :class:`Span` covers one step of a pipeline (e.g. the four §6.1 Volt
Boot steps); an *event* is a point-in-time record (e.g. a power-rail
transition).  Events emitted while a span is open are attached to that
span, so a trace reader can see exactly which power-timeline activity
happened inside, say, ``attack.power-cycle``.

Spans carry both wall-clock duration (profiling) and, where the caller
provides it, simulated time (physics).  Records stream to a JSONL sink
as they close, so a crashed run still leaves a usable trace prefix.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol

from .timing import wall_clock


class TraceSink(Protocol):
    """Where finished span/event records go (see ``export.JsonlWriter``)."""

    def write(self, record: dict[str, Any]) -> None: ...


@dataclass
class Span:
    """One traced step: a named interval with attributes and child events."""

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    events: list[dict[str, Any]] = field(default_factory=list)
    status: str = "ok"
    wall_s: float = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or overwrite one attribute."""
        self.attributes[key] = value

    def set_attributes(self, **attributes: Any) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attributes)

    def add_event(self, name: str, **attributes: Any) -> None:
        """Attach a point-in-time child event to this span."""
        self.events.append({"name": name, **attributes})

    def to_record(self) -> dict[str, Any]:
        """The JSONL representation of the finished span."""
        return {
            "type": "span",
            "name": self.name,
            "status": self.status,
            "wall_s": self.wall_s,
            "attributes": dict(self.attributes),
            "events": list(self.events),
        }


class _NullSpan:
    """Do-nothing span handed out when tracing is disabled."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def set_attributes(self, **attributes: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass


#: Shared null span — zero allocation on the disabled path.
NULL_SPAN = _NullSpan()


class Tracer:
    """Span lifecycle manager writing finished records to a sink.

    The tracer keeps a stack of open spans; :meth:`event` records attach
    to the innermost open span (and stream to the sink immediately,
    stamped with the span they belong to).
    """

    def __init__(self, sink: TraceSink | None = None) -> None:
        self.sink = sink
        self._stack: list[Span] = []
        self.finished: list[Span] = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span for the enclosed block."""
        span = Span(name=name, attributes=dict(attributes))
        self._stack.append(span)
        start = wall_clock()
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.wall_s = wall_clock() - start
            self._stack.pop()
            self.finished.append(span)
            if self.sink is not None:
                self.sink.write(span.to_record())

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time event, attached to the open span."""
        parent = self.current
        if parent is not None:
            parent.add_event(name, **attributes)
        if self.sink is not None:
            self.sink.write(
                {
                    "type": "event",
                    "name": name,
                    "span": parent.name if parent else None,
                    "attributes": dict(attributes),
                }
            )

    def adopt_record(self, record: dict[str, Any]) -> Span:
        """Fold a finished span record from another tracer into this one.

        ``repro.exec`` workers trace their shards in the child process
        and ship the finished records back; adopting them here makes
        per-shard spans visible to the parent's sink and to
        :meth:`spans_named`, so a sharded run leaves one merged trace.
        """
        span = Span(
            name=record["name"],
            attributes=dict(record.get("attributes", {})),
            events=list(record.get("events", [])),
            status=record.get("status", "ok"),
            wall_s=float(record.get("wall_s", 0.0)),
        )
        self.finished.append(span)
        if self.sink is not None:
            self.sink.write(span.to_record())
        return span

    def spans_named(self, name: str) -> list[Span]:
        """Finished spans with the given name (test/report helper)."""
        return [s for s in self.finished if s.name == name]
