"""Structured observability: tracing, metrics, and run manifests.

The package exposes one process-global :data:`OBS` registry.  It starts
*disabled*: every instrumentation hook in the simulator checks
``OBS.enabled`` first (or goes through the no-op-when-disabled helpers
below), so an uninstrumented run does no extra allocation, no wall-clock
reads, and — critically — never touches any RNG.  Enabling
observability must not change a run's physics; the determinism
regression test holds that line.

Typical use::

    from repro import obs

    with obs.capture(trace_path="trace.jsonl") as o:
        attack.execute()
        manifest = o.last_manifest

Instrumented code inside the simulator uses the cheap guarded calls::

    from ..obs import OBS

    if OBS.enabled:
        OBS.counter_inc("cache.evictions", 1, cache=self.name)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from . import names
from .export import (
    SCHEMA_VERSION,
    JsonlWriter,
    SchemaError,
    dumps,
    read_jsonl,
    validate_manifest,
    write_json,
)
from .manifest import RunManifest, manifest_fingerprint
from .metrics import MetricsRegistry
from .timing import SectionTimer
from .trace import NULL_SPAN, Span, Tracer

if TYPE_CHECKING:
    from ..power.events import PowerEvent

__all__ = [
    "OBS",
    "Observability",
    "names",
    "RunManifest",
    "MetricsRegistry",
    "SectionTimer",
    "Tracer",
    "Span",
    "JsonlWriter",
    "SchemaError",
    "SCHEMA_VERSION",
    "capture",
    "dumps",
    "read_jsonl",
    "manifest_fingerprint",
    "validate_manifest",
    "write_json",
]


class _NullSpanContext:
    """Reusable zero-cost context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> Any:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class Observability:
    """The process-global observability state.

    The singleton :data:`OBS` is never rebound — ``configure()`` and
    ``reset()`` mutate it in place, so modules that imported it early
    always see the live state.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.manifests: list[RunManifest] = []
        self._writer: JsonlWriter | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def configure(self, trace_path: str | None = None) -> "Observability":
        """Enable collection, optionally streaming a JSONL trace.

        Reconfiguring an enabled registry resets it first (closing any
        open trace file).
        """
        if self.enabled or self._writer is not None:
            self.reset()
        self._writer = JsonlWriter(trace_path) if trace_path else None
        self.tracer = Tracer(sink=self._writer)
        self.metrics = MetricsRegistry()
        self.manifests = []
        self.enabled = True
        return self

    def reset(self) -> None:
        """Disable collection and drop all collected state."""
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.manifests = []

    def quarantine_fork(self) -> None:
        """Drop state inherited across a ``fork`` without flushing it.

        A forked ``repro.exec`` worker inherits the parent's enabled
        registry — including an open trace sink whose buffered bytes
        belong to the parent.  ``reset()`` would flush-and-close that
        inherited file (duplicating records in the shared file); this
        instead abandons the writer unflushed and starts from a clean,
        disabled registry.  Workers then ``configure()`` their own
        collection and ship dumps back for the parent to merge.
        """
        self._writer = None
        self.enabled = False
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.manifests = []

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """A traced span, or a shared null span when disabled."""
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        return self.tracer.span(name, **attributes)

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time trace event (no-op when disabled)."""
        if self.enabled:
            self.tracer.event(name, **attributes)

    def power_event(self, event: "PowerEvent") -> None:
        """Fold one power-timeline event into the trace and metrics.

        Called by :meth:`~repro.power.events.PowerEventLog.record`; the
        caller guards on ``enabled`` so the unobserved path stays free.
        """
        self.tracer.event(
            f"power.{event.kind.value}",
            subject=event.subject,
            detail=event.detail,
            sim_time_s=event.time_s,
        )
        self.metrics.counter("power.events", kind=event.kind.value).inc()

    # ------------------------------------------------------------------
    # Metrics (guarded convenience wrappers)
    # ------------------------------------------------------------------

    def counter_inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        """Increment a counter (no-op when disabled)."""
        if self.enabled:
            self.metrics.counter(name, **labels).inc(amount)

    def gauge_set(self, name: str, value: float, **labels: Any) -> None:
        """Set a gauge (no-op when disabled)."""
        if self.enabled:
            self.metrics.gauge(name, **labels).set(value)

    def histogram_record(self, name: str, value: float, **labels: Any) -> None:
        """Record a histogram observation (no-op when disabled)."""
        if self.enabled:
            self.metrics.histogram(name, **labels).record(value)

    # ------------------------------------------------------------------
    # Manifests
    # ------------------------------------------------------------------

    def record_manifest(self, manifest: RunManifest) -> RunManifest:
        """Collect a finished run manifest (no-op when disabled)."""
        if self.enabled:
            self.manifests.append(manifest)
        return manifest

    @property
    def last_manifest(self) -> RunManifest | None:
        """The most recently recorded manifest, if any."""
        return self.manifests[-1] if self.manifests else None


#: The process-global registry.  Disabled (null-sink) by default.
OBS = Observability()


@contextmanager
def capture(trace_path: str | None = None) -> Iterator[Observability]:
    """Enable observability for a block, resetting afterwards."""
    OBS.configure(trace_path=trace_path)
    try:
        yield OBS
    finally:
        OBS.reset()
