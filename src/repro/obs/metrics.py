"""Counters, gauges, and histograms for the simulation's physics.

The registry is deliberately simple: metrics are named, optionally
labelled (``counter("cache.evictions", cache="l1d.c0")``), and hold
plain Python numbers.  Nothing here touches any RNG or the simulated
clock, so instrumentation can never perturb a run's physics — the
property the determinism regression test locks in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ObservabilityError

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, key: LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ObservabilityError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A last-value-wins measurement."""

    value: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        """Record the latest observed value."""
        self.value = float(value)
        self.updates += 1


@dataclass
class Histogram:
    """Running summary statistics of a stream of observations."""

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def record(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        """Mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """Snapshot dict (count/mean/min/max)."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }


class MetricsRegistry:
    """Get-or-create store of named, labelled metrics."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``name`` + labels, created on first use."""
        return self._counters.setdefault((name, _label_key(labels)), Counter())

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``name`` + labels, created on first use."""
        return self._gauges.setdefault((name, _label_key(labels)), Gauge())

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram for ``name`` + labels, created on first use."""
        return self._histograms.setdefault(
            (name, _label_key(labels)), Histogram()
        )

    def counter_total(self, name: str) -> int:
        """Sum of one counter name across every label combination."""
        return sum(
            c.value for (n, _), c in self._counters.items() if n == name
        )

    def snapshot(self, prefix: str = "") -> dict[str, Any]:
        """Flattened ``{rendered-name: value}`` view of every metric.

        Counters map to ints, gauges to floats, histograms to summary
        dicts.  ``prefix`` filters by metric-name prefix.
        """
        out: dict[str, Any] = {}
        for (name, key), counter in sorted(self._counters.items()):
            if name.startswith(prefix):
                out[_render_key(name, key)] = counter.value
        for (name, key), gauge in sorted(self._gauges.items()):
            if name.startswith(prefix):
                out[_render_key(name, key)] = gauge.value
        for (name, key), hist in sorted(self._histograms.items()):
            if name.startswith(prefix):
                out[_render_key(name, key)] = hist.summary()
        return out

    def dump(self) -> dict[str, Any]:
        """Lossless, picklable view of the registry's raw state.

        Unlike :meth:`snapshot` (a flattened human/JSON view), a dump
        preserves label structure and histogram totals, so a registry
        collected in a worker process can be folded into the parent's
        with :meth:`merge` — the mechanism ``repro.exec`` uses to merge
        per-shard metrics into one run manifest.
        """
        return {
            "counters": [
                (name, key, c.value)
                for (name, key), c in sorted(self._counters.items())
            ],
            "gauges": [
                (name, key, g.value, g.updates)
                for (name, key), g in sorted(self._gauges.items())
            ],
            "histograms": [
                (name, key, h.count, h.total, h.minimum, h.maximum)
                for (name, key), h in sorted(self._histograms.items())
                if h.count
            ],
        }

    def merge(self, dump: dict[str, Any]) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters add, histograms pool their summaries, and gauges take
        the dumped value (last-writer-wins, matching ``Gauge.set``).
        """
        for name, key, value in dump.get("counters", ()):
            self._counters.setdefault((name, tuple(key)), Counter()).inc(value)
        for name, key, value, updates in dump.get("gauges", ()):
            gauge = self._gauges.setdefault((name, tuple(key)), Gauge())
            gauge.value = float(value)
            gauge.updates += int(updates)
        for name, key, count, total, minimum, maximum in dump.get(
            "histograms", ()
        ):
            hist = self._histograms.setdefault((name, tuple(key)), Histogram())
            hist.count += int(count)
            hist.total += float(total)
            hist.minimum = min(hist.minimum, float(minimum))
            hist.maximum = max(hist.maximum, float(maximum))

    def reset(self) -> None:
        """Drop every metric."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
