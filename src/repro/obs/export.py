"""JSON/JSONL writers and the export schema contract.

Everything the observability layer persists — run manifests, JSONL
traces, metrics snapshots, the CLI's ``--json`` documents — flows
through this module so that every export carries a ``schema_version``
field and downstream tooling (the BENCH trajectory scripts, CI
validators) can evolve against a stable contract.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, IO

#: Version of every JSON document this package emits.  Bump on any
#: backwards-incompatible change to the manifest or trace record shape.
SCHEMA_VERSION = 1

#: Fields every run manifest must carry (see DESIGN.md "Observability").
MANIFEST_REQUIRED_FIELDS = (
    "schema_version",
    "kind",
    "name",
    "seed",
    "parameters",
    "phases",
    "headline",
    "metrics",
)

#: Allowed values of a manifest's ``kind`` field.
MANIFEST_KINDS = ("attack", "experiment", "benchmark")


class SchemaError(ValueError):
    """An exported document does not match the published schema."""


def stamp(payload: dict[str, Any]) -> dict[str, Any]:
    """Return ``payload`` with ``schema_version`` guaranteed present."""
    if "schema_version" not in payload:
        payload = {"schema_version": SCHEMA_VERSION, **payload}
    return payload


def _jsonable(value: Any) -> Any:
    """Coerce a value into something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    if isinstance(value, bytes):
        return value.hex()
    return repr(value)


def dumps(payload: dict[str, Any], indent: int | None = 2) -> str:
    """Serialise a stamped document to a JSON string."""
    return json.dumps(_jsonable(stamp(dict(payload))), indent=indent)


def write_json(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write one stamped JSON document to ``path``; returns the path."""
    path = Path(path)
    path.write_text(dumps(payload) + "\n")
    return path


def validate_manifest(doc: dict[str, Any]) -> dict[str, Any]:
    """Check a manifest dict against the schema; returns it unchanged.

    Raises :class:`SchemaError` naming every violated constraint, so CI
    failures point straight at the offending field.
    """
    problems: list[str] = []
    for field in MANIFEST_REQUIRED_FIELDS:
        if field not in doc:
            problems.append(f"missing required field {field!r}")
    if doc.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version {doc.get('schema_version')!r} != {SCHEMA_VERSION}"
        )
    if "kind" in doc and doc["kind"] not in MANIFEST_KINDS:
        problems.append(f"kind {doc['kind']!r} not in {MANIFEST_KINDS}")
    if "parameters" in doc and not isinstance(doc["parameters"], dict):
        problems.append("parameters must be an object")
    if "headline" in doc and not isinstance(doc["headline"], dict):
        problems.append("headline must be an object")
    if "metrics" in doc and not isinstance(doc["metrics"], dict):
        problems.append("metrics must be an object")
    # "partial" is optional: present only on runs that quarantined
    # work units (docs/robustness.md).
    if "partial" in doc and not isinstance(doc["partial"], dict):
        problems.append("partial must be an object when present")
    phases = doc.get("phases", [])
    if not isinstance(phases, list):
        problems.append("phases must be a list")
    else:
        for i, phase in enumerate(phases):
            if not isinstance(phase, dict) or "name" not in phase:
                problems.append(f"phase[{i}] must be an object with a name")
    if problems:
        raise SchemaError("; ".join(problems))
    return doc


class JsonlWriter:
    """Line-delimited JSON sink for trace records.

    The first line of every file is a header record carrying the schema
    version, so a consumer can reject traces from a different producer
    generation before parsing the body.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = self.path.open("w")
        self.write({"type": "header", "producer": "repro.obs"})

    def write(self, record: dict[str, Any]) -> None:
        """Append one stamped record as a JSON line."""
        if self._fh is None:
            return
        self._fh.write(json.dumps(_jsonable(stamp(dict(record)))) + "\n")

    def close(self) -> None:
        """Flush and close the underlying file."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """Parse every record of a JSONL file (helper for tests/tools)."""
    records = []
    for line in Path(path).read_text().splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records
