"""The span/event/metric name taxonomy.

Every name the simulator emits through :data:`repro.obs.OBS` is declared
here, so that trace consumers, the ``repro-verify`` span check, and the
RL005 lint rule all agree on one vocabulary.  Adding an instrumentation
point means adding its name here first — a literal that is not in the
taxonomy fails ``repro-lint``.

Names are dotted, lowercase, hyphenated within a segment
(``attack.power-cycle``).  Dynamic families (one span per experiment,
one event per power-event kind) are admitted by prefix.
"""

from __future__ import annotations

#: Attack-step spans, in paper §6.1 order (plus the cold boot baseline).
ATTACK_SPANS: tuple[str, ...] = (
    "attack.voltboot",
    "attack.coldboot",
    "attack.identify",
    "attack.attach",
    "attack.power-cycle",
    "attack.chill",
    "attack.reboot",
    "attack.extract",
)

#: Parallel-execution spans (``repro.exec``): the outer engine run and
#: the per-shard unit batches (attributes carry shard index and jobs).
EXEC_SPANS: tuple[str, ...] = (
    "exec.run",
    "exec.shard",
)

#: Fault-injection spans (``repro.glitch``): one per glitch attempt
#: (attributes carry pulse offset/width/depth and the outcome).
GLITCH_SPANS: tuple[str, ...] = (
    "glitch.attempt",
)

#: Resilient-driver spans (``repro.resilience``): the whole recovery
#: (attributes carry the policy and outcome) and each bounded attempt.
RESILIENCE_SPANS: tuple[str, ...] = (
    "resilience.recover",
    "resilience.attempt",
)

#: Every statically-named span the simulator may open.
SPAN_NAMES: frozenset[str] = frozenset(
    ATTACK_SPANS + EXEC_SPANS + GLITCH_SPANS + RESILIENCE_SPANS
)

#: Span families named dynamically (``experiment.<name>``, ...).
SPAN_PREFIXES: tuple[str, ...] = ("experiment.", "benchmark.")

#: Statically-named point-in-time trace events.
EVENT_NAMES: frozenset[str] = frozenset(
    {"bootrom.scratchpad", "glitch.brownout-reset"}
)

#: Event families named dynamically (``power.<event-kind>``,
#: ``exec.<engine-event>`` — fallback/retry/timeout/checkpoint notices,
#: ``resilience.<driver-event>`` — retry/backoff/degraded notices).
EVENT_PREFIXES: tuple[str, ...] = ("power.", "exec.", "resilience.")

#: Every statically-named counter/gauge/histogram.
METRIC_NAMES: frozenset[str] = frozenset(
    {
        # SRAM cell physics.
        "sram.tau_s",
        "sram.retained_fraction",
        "sram.cells_decayed",
        "sram.cells_below_drv",
        # DRAM cell physics.
        "dram.tau_s",
        "dram.retained_fraction",
        "dram.cells_decayed",
        # Cache activity.
        "cache.evictions",
        "cache.line_fills",
        "cache.lines_zeroed",
        # Boot ROM clobbering.
        "bootrom.bytes_clobbered",
        # Power timeline and domain state.
        "power.events",
        "power.cells_lost_surge",
        "power.cells_lost_dvfs",
        "power.domain.voltage_v",
        "power.domain.surge_floor_v",
        "power.domain.droop_depth_v",
        "power.domain.retained_fraction",
        # Parallel execution engine.
        "exec.units",
        "exec.shards",
        "exec.jobs",
        "exec.retries",
        "exec.timeouts",
        "exec.fallbacks",
        "exec.shard_wall_s",
        # Supervised runtime: per-class failure accounting (labelled
        # failure_class=<repro.errors.FAILURE_CLASSES>), hang/crash
        # supervision, simulated backoff, and poison-unit quarantine.
        "exec.failures",
        "exec.hangs",
        "exec.crashes",
        "exec.backoff_s",
        "exec.quarantined_units",
        # Checkpoint/resume journal.
        "exec.checkpointed_units",
        "exec.resumed_units",
        "exec.journal_bytes",
        "exec.journal_failures",
        # Chaos harness: injector firing accounting (exec.* so it is
        # stripped from fingerprints) and the probe target's physics.
        "exec.chaos_faults",
        "chaos.units",
        "chaos.probe_sum",
        "chaos.probe_extreme",
        # Imperfect-rig instrumentation noise.
        "rig.bit_flips",
        "rig.bits_read",
        "rig.contact_resistance_ohm",
        "rig.setpoint_error_v",
        # Resilient attack driver.
        "resilience.attempts",
        "resilience.retries",
        "resilience.reads",
        "resilience.backoff_s",
        "resilience.setpoint_boost_v",
        "resilience.recovered_fraction",
        "resilience.confident_fraction",
        "resilience.mean_confidence",
        "resilience.degraded",
        # Voltage-glitch fault injection.
        "glitch.attempts",
        "glitch.faults",
        "glitch.outcomes",
        "glitch.min_rail_v",
    }
)

#: Metric families named dynamically: benchmark sidecars (``bench.*``)
#: and the fingerprint-stripped profiling hooks (``perf.*`` — scoped
#: phase timers and hot-path throughput gauges, see
#: :mod:`repro.obs.timing`).
METRIC_PREFIXES: tuple[str, ...] = ("bench.", "perf.")


def _known(name: str, names: frozenset[str], prefixes: tuple[str, ...]) -> bool:
    return name in names or any(name.startswith(p) for p in prefixes)


def is_known_span(name: str) -> bool:
    """Whether ``name`` is a declared span name or span-family prefix."""
    return _known(name, SPAN_NAMES, SPAN_PREFIXES)


def is_known_event(name: str) -> bool:
    """Whether ``name`` is a declared event name or event-family prefix."""
    return _known(name, EVENT_NAMES, EVENT_PREFIXES)


def is_known_metric(name: str) -> bool:
    """Whether ``name`` is a declared metric name or metric-family prefix."""
    return _known(name, METRIC_NAMES, METRIC_PREFIXES)
