"""Machine-readable run manifests.

A manifest is the one-document summary of a run — what was attacked or
measured, with which parameters, how long each phase took, and what the
headline numbers were.  The CLI's ``--json`` mode prints it, benchmarks
persist one next to every ``results/*.txt``, and the determinism test
compares :meth:`RunManifest.fingerprint` across repeat runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from .export import SCHEMA_VERSION, _jsonable, validate_manifest

#: Parameters that describe execution topology, not physics.  ``jobs``
#: shards the same work units over more processes; the repro.exec
#: engine guarantees the merged result is byte-identical, so the
#: fingerprint must compare equal across ``--jobs`` settings.
EXECUTION_PARAMETERS = ("jobs",)

#: Metric-name prefixes that carry wall-clock-derived values (engine
#: accounting and the repro.obs.timing profiling hooks).  They vary run
#: to run and with ``--jobs``, so the fingerprint strips them.
TIMING_METRIC_PREFIXES = ("exec.", "perf.")


@dataclass
class RunManifest:
    """One run's machine-readable summary.

    ``kind`` is ``"attack"``, ``"experiment"``, or ``"benchmark"``;
    ``phases`` is a list of ``{"name": ..., "wall_s": ...}`` dicts (see
    :class:`~repro.obs.timing.SectionTimer`); ``headline`` carries the
    few numbers a human would quote; ``metrics`` is a registry snapshot.

    ``partial`` is set only when the run completed *around* quarantined
    work units (see ``docs/robustness.md``): it carries a
    ``{"quarantined": [...]}`` section listing each lost unit's index,
    label, failure class, and error text.  The section is deliberately
    free of timings and attempt counts, so it is part of the
    fingerprint — a partial run must never compare equal to a complete
    one, but the *same* partial run must fingerprint identically
    whatever ``--jobs`` was.
    """

    kind: str
    name: str
    seed: int | None
    device: str | None = None
    parameters: dict[str, Any] = field(default_factory=dict)
    phases: list[dict[str, Any]] = field(default_factory=list)
    headline: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    partial: dict[str, Any] | None = None
    schema_version: int = SCHEMA_VERSION

    def to_dict(self, include_timings: bool = True) -> dict[str, Any]:
        """Manifest as a schema-conformant plain dict.

        With ``include_timings=False``, wall-clock fields are dropped —
        the deterministic view used for run-to-run comparison.
        """
        phases = [dict(p) for p in self.phases]
        if not include_timings:
            phases = [
                {k: v for k, v in p.items() if k != "wall_s"} for p in phases
            ]
        doc = {
            "schema_version": self.schema_version,
            "kind": self.kind,
            "name": self.name,
            "device": self.device,
            "seed": self.seed,
            "parameters": _jsonable(self.parameters),
            "phases": phases,
            "headline": _jsonable(self.headline),
            "metrics": _jsonable(self.metrics),
        }
        if self.partial:
            doc["partial"] = _jsonable(self.partial)
        return doc

    def fingerprint(self) -> str:
        """SHA-256 over the timing-free, topology-free view.

        Two runs with identical seeds and physics must produce equal
        fingerprints; wall-clock jitter and execution topology
        (``--jobs``, see :data:`EXECUTION_PARAMETERS`) are excluded by
        construction, alongside the ``exec.*``/``perf.*`` metrics they
        influence (:data:`TIMING_METRIC_PREFIXES`).
        """
        return manifest_fingerprint(self.to_dict(include_timings=False))

    def validate(self) -> "RunManifest":
        """Schema-check the manifest; returns self for chaining."""
        validate_manifest(self.to_dict())
        return self


def manifest_fingerprint(doc: dict[str, Any]) -> str:
    """Fingerprint a manifest *dict* (e.g. parsed from ``--json``).

    Applies the same normalisation as :meth:`RunManifest.fingerprint`
    — wall-clock timings, :data:`EXECUTION_PARAMETERS`, and the
    wall-clock-derived :data:`TIMING_METRIC_PREFIXES` metrics
    (``exec.*`` engine accounting plus the ``perf.*`` profiling hooks)
    are stripped before hashing — so a manifest hashed from a JSON
    document compares equal to one hashed in-process.  The chaos-smoke
    harness relies on this to check an interrupted-then-resumed campaign
    against an uninterrupted reference run.
    """
    doc = dict(doc)
    doc["phases"] = [
        {k: v for k, v in phase.items() if k != "wall_s"}
        for phase in doc.get("phases", [])
    ]
    doc["parameters"] = {
        k: v
        for k, v in doc.get("parameters", {}).items()
        if k not in EXECUTION_PARAMETERS
    }
    doc["metrics"] = {
        k: v
        for k, v in doc.get("metrics", {}).items()
        if not k.startswith(TIMING_METRIC_PREFIXES)
    }
    canonical = json.dumps(doc, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
