"""Wall-clock section timers and deterministic profiling hooks.

Wall-clock time is the one observability input that is *not*
deterministic, so it is quarantined here: phase durations land in
manifests under ``wall_s`` keys, profiling hooks emit only ``perf.*``
metrics, and both are excluded from
:meth:`~repro.obs.manifest.RunManifest.fingerprint` when comparing runs
— so instrumented hot paths stay byte-equivalent across ``--jobs``.

The profiling hooks (:func:`profiled_phase`, :func:`observe_rate`) are
how the hot paths — the exec engine, the glitch campaign loop, the
circuits decay paths — report throughput without perturbing physics:
they read no RNG, allocate nothing when observability is disabled, and
every metric they emit lives under the fingerprint-stripped ``perf.``
namespace.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


def wall_clock() -> float:
    """Monotonic wall-clock reading, in seconds.

    The one sanctioned clock source: everything outside this module
    (spans, timers) takes its wall-clock readings from here, so the
    RL001 determinism lint can quarantine ``time`` imports to this file.
    """
    return time.perf_counter()


class SectionTimer:
    """Accumulates named, ordered wall-clock sections."""

    def __init__(self) -> None:
        self._sections: list[tuple[str, float]] = []

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block and record it under ``name``."""
        start = wall_clock()
        try:
            yield
        finally:
            self._sections.append((name, wall_clock() - start))

    def add(self, name: str, wall_s: float) -> None:
        """Record an externally measured section."""
        self._sections.append((name, float(wall_s)))

    def phases(self) -> list[dict[str, object]]:
        """The sections in manifest-phase shape."""
        return [
            {"name": name, "wall_s": wall_s} for name, wall_s in self._sections
        ]

    @property
    def total_s(self) -> float:
        """Sum of all recorded section durations."""
        return sum(wall_s for _, wall_s in self._sections)


# ----------------------------------------------------------------------
# Profiling hooks (the repro.perf measurement points)
# ----------------------------------------------------------------------
#
# Imported lazily inside each hook: this module is imported by
# ``repro.obs.__init__`` before ``OBS`` exists, so a module-level import
# would be circular.


@contextmanager
def profiled_phase(name: str, **labels: object) -> Iterator[None]:
    """Time a scoped hot-path phase into ``perf.phase_wall_s``.

    Records one histogram observation labelled ``phase=name`` when
    observability is enabled; with it disabled the manager does not even
    read the clock, so uninstrumented runs stay free.  ``perf.*``
    metrics are stripped from manifest fingerprints, so wrapping a phase
    never breaks ``--jobs`` byte-equivalence.
    """
    from . import OBS

    if not OBS.enabled:
        yield
        return
    start = wall_clock()
    try:
        yield
    finally:
        OBS.histogram_record(
            "perf.phase_wall_s", wall_clock() - start, phase=name, **labels
        )


def observe_rate(
    name: str, units: float, wall_s: float, **labels: object
) -> None:
    """Record a hot-path throughput gauge ``perf.<name>.per_s``.

    ``units`` is whatever the path processes (cells, attempts, work
    units); the gauge holds the latest observed rate and a paired
    ``perf.phase_wall_s`` histogram observation keeps the distribution.
    No-op when observability is disabled or the interval is degenerate.
    """
    from . import OBS

    if not OBS.enabled or wall_s <= 0.0:
        return
    OBS.gauge_set(f"perf.{name}.per_s", units / wall_s, **labels)
    OBS.histogram_record("perf.phase_wall_s", wall_s, phase=name, **labels)
