"""Wall-clock section timers for manifest phase accounting.

Wall-clock time is the one observability input that is *not*
deterministic, so it is quarantined here: phase durations land in
manifests under ``wall_s`` keys, and
:meth:`~repro.obs.manifest.RunManifest.fingerprint` excludes them when
comparing runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


def wall_clock() -> float:
    """Monotonic wall-clock reading, in seconds.

    The one sanctioned clock source: everything outside this module
    (spans, timers) takes its wall-clock readings from here, so the
    RL001 determinism lint can quarantine ``time`` imports to this file.
    """
    return time.perf_counter()


class SectionTimer:
    """Accumulates named, ordered wall-clock sections."""

    def __init__(self) -> None:
        self._sections: list[tuple[str, float]] = []

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time the enclosed block and record it under ``name``."""
        start = wall_clock()
        try:
            yield
        finally:
            self._sections.append((name, wall_clock() - start))

    def add(self, name: str, wall_s: float) -> None:
        """Record an externally measured section."""
        self._sections.append((name, float(wall_s)))

    def phases(self) -> list[dict[str, object]]:
        """The sections in manifest-phase shape."""
        return [
            {"name": name, "wall_s": wall_s} for name, wall_s in self._sections
        ]

    @property
    def total_s(self) -> float:
        """Sum of all recorded section durations."""
        return sum(wall_s for _, wall_s in self._sections)
