"""Supervised worker-process pool with per-shard heartbeats.

The engine's original ``ProcessPoolExecutor`` dispatch had a fatal
coupling: one worker dying (``kill -9``, OOM) broke the *whole* pool,
and a worker stuck in an infinite loop was indistinguishable from a
slow one.  This module replaces it with one ``fork``-context
``multiprocessing.Process`` per shard, supervised by the parent:

* each worker increments a shared **heartbeat** value after every
  completed unit, so the supervisor can tell "busy" from "hung";
* a worker that makes no heartbeat progress within the policy's
  ``hang_timeout_s`` is SIGKILLed and its shard handed back as a
  :class:`~repro.errors.WorkerHang` failure for serial re-attempt;
* a worker that dies without shipping its outcome (after a short
  grace period for results racing the death) becomes a
  :class:`~repro.errors.WorkerCrash` failure — the *other* workers
  keep running, which a shared executor cannot promise;
* the per-shard ``timeout_s`` budget is enforced from spawn time.

Failures are returned sorted by shard index so the engine's serial
re-attempts replay in deterministic plan order regardless of
completion order.  Outcome payloads travel over a ``multiprocessing``
queue exactly as they did over the executor, so the engine's merge
semantics are unchanged.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass, field
from queue import Empty
from typing import Any, Callable

from ..errors import ExecError, PoolUnavailable, WorkerCrash, WorkerHang
from ..obs.timing import wall_clock
from .runtime import SupervisionPolicy

#: How long a dead worker's queued outcome may lag its death before
#: the supervisor declares a crash (multiples of the poll interval).
_DEATH_GRACE_POLLS = 8


def _worker_main(
    worker_fn: Callable[..., Any], task: Any, queue: Any, beat: Any
) -> None:
    """Worker-process entry: run the shard, ship ``(index, payload)``.

    Exceptions ship as ``("err", error)`` payloads; an outcome that
    cannot be pickled onto the queue degrades to a shippable error so
    the parent never waits on a shard that already finished.
    """

    def tick() -> None:
        beat.value += 1

    try:
        payload: tuple[str, Any] = ("ok", worker_fn(task, heartbeat=tick))
    except Exception as error:
        payload = ("err", error)
    try:
        queue.put((task.shard_index, payload))
    except Exception as error:
        queue.put(
            (
                task.shard_index,
                ("err", ExecError(f"shard outcome not shippable: {error!r}")),
            )
        )


def _start_worker(
    ctx: Any, worker_fn: Callable[..., Any], task: Any, queue: Any
) -> tuple[Any, Any]:
    """Spawn one shard worker; returns ``(process, heartbeat)``.

    Module-level so tests can monkeypatch the spawn seam (the old
    tests patched ``engine.ProcessPoolExecutor`` for the same effect).
    """
    beat = ctx.Value("Q", 0, lock=False)
    process = ctx.Process(
        target=_worker_main, args=(worker_fn, task, queue, beat), daemon=True
    )
    process.start()
    return process, beat


@dataclass
class _Worker:
    """Parent-side view of one live shard worker."""

    task: Any
    process: Any
    beat: Any
    started_t: float
    last_beat: int = 0
    last_progress_t: float = 0.0
    died_t: float | None = None


@dataclass
class _Supervisor:
    """One ``run_supervised`` call's state machine."""

    jobs: int
    timeout_s: float | None
    policy: SupervisionPolicy
    worker_fn: Callable[..., Any]
    on_outcome: Callable[[Any], None] | None
    outcomes: dict[int, Any] = field(default_factory=dict)
    failures: dict[int, tuple[Any, BaseException]] = field(
        default_factory=dict
    )
    live: dict[int, _Worker] = field(default_factory=dict)

    def run(
        self, tasks: list[Any]
    ) -> tuple[dict[int, Any], list[tuple[Any, BaseException]]]:
        ctx = mp.get_context("fork")
        queue = ctx.Queue()
        pending = list(tasks)
        try:
            while pending or self.live:
                pending = self._spawn(ctx, queue, pending)
                self._drain(queue, block=bool(self.live))
                self._police()
            self._drain(queue, block=False)
        finally:
            for worker in self.live.values():
                worker.process.kill()
                worker.process.join(timeout=5.0)
            queue.close()
        # A shard whose result raced its kill keeps the result.
        failed = [
            (task, cause)
            for index, (task, cause) in sorted(self.failures.items())
            if index not in self.outcomes
        ]
        return self.outcomes, failed

    # -- spawning --------------------------------------------------------

    def _spawn(self, ctx: Any, queue: Any, pending: list[Any]) -> list[Any]:
        while pending and len(self.live) < self.jobs:
            task = pending[0]
            try:
                process, beat = _start_worker(
                    ctx, self.worker_fn, task, queue
                )
            except (OSError, RuntimeError, ImportError) as error:
                if not (self.live or self.outcomes or self.failures):
                    # Nothing ever started: the engine falls back to
                    # its serial path without charging retry budgets.
                    raise PoolUnavailable(
                        f"cannot spawn shard workers: {error!r}"
                    ) from error
                # Mid-run spawn loss: fail the remainder (classified
                # as pool-loss); the engine re-attempts them serially.
                cause = PoolUnavailable(
                    f"cannot spawn shard workers: {error!r}"
                )
                cause.__cause__ = error
                for task in pending:
                    self.failures[task.shard_index] = (task, cause)
                return []
            pending.pop(0)
            now = wall_clock()
            self.live[task.shard_index] = _Worker(
                task=task,
                process=process,
                beat=beat,
                started_t=now,
                last_progress_t=now,
            )
        return pending

    # -- results ---------------------------------------------------------

    def _drain(self, queue: Any, block: bool) -> None:
        """Collect every queued outcome; optionally block one poll."""
        if block:
            try:
                item = queue.get(timeout=self.policy.poll_interval_s)
            except Empty:
                return
            self._handle(*item)
        while True:
            try:
                item = queue.get_nowait()
            except Empty:
                return
            self._handle(*item)

    def _handle(self, shard_index: int, payload: tuple[str, Any]) -> None:
        worker = self.live.pop(shard_index, None)
        if worker is not None:
            worker.process.join(timeout=5.0)
        kind, value = payload
        if kind == "ok":
            self.outcomes[shard_index] = value
            # A late result beats an earlier kill/crash verdict.
            self.failures.pop(shard_index, None)
            if self.on_outcome is not None:
                self.on_outcome(value)
        else:
            task = worker.task if worker is not None else (
                self.failures[shard_index][0]
            )
            self.failures[shard_index] = (task, value)

    # -- health ----------------------------------------------------------

    def _police(self) -> None:
        """Check every live worker for timeout, hang, or death."""
        now = wall_clock()
        hang_timeout = self.policy.hang_timeout_s
        grace = _DEATH_GRACE_POLLS * self.policy.poll_interval_s
        for index in sorted(self.live):
            worker = self.live[index]
            beat = int(worker.beat.value)
            if beat != worker.last_beat:
                worker.last_beat = beat
                worker.last_progress_t = now
            if not worker.process.is_alive():
                if worker.died_t is None:
                    worker.died_t = now  # grace: its result may be queued
                elif now - worker.died_t >= grace:
                    self._fail(
                        index,
                        WorkerCrash(
                            worker.task.describe(),
                            worker.process.exitcode,
                        ),
                    )
                continue
            if self.timeout_s is not None and (
                now - worker.started_t > self.timeout_s
            ):
                self._kill(
                    index,
                    TimeoutError(
                        f"shard {worker.task.describe()!r} exceeded its "
                        f"{self.timeout_s:g}s timeout"
                    ),
                )
            elif hang_timeout is not None and (
                now - worker.last_progress_t > hang_timeout
            ):
                self._kill(
                    index, WorkerHang(worker.task.describe(), hang_timeout)
                )

    def _kill(self, shard_index: int, cause: BaseException) -> None:
        worker = self.live[shard_index]
        worker.process.kill()
        worker.process.join(timeout=5.0)
        self._fail(shard_index, cause)

    def _fail(self, shard_index: int, cause: BaseException) -> None:
        worker = self.live.pop(shard_index)
        self.failures[shard_index] = (worker.task, cause)


def run_supervised(
    tasks: list[Any],
    jobs: int,
    timeout_s: float | None,
    policy: SupervisionPolicy,
    worker_fn: Callable[..., Any],
    on_outcome: Callable[[Any], None] | None = None,
) -> tuple[dict[int, Any], list[tuple[Any, BaseException]]]:
    """Run every task on supervised workers; returns outcomes/failures.

    ``worker_fn(task, heartbeat=...)`` runs in a forked child and must
    return a picklable outcome; ``on_outcome`` fires in the parent as
    each outcome lands (the checkpoint path journals there — an
    exception it raises kills the remaining workers and propagates).
    Raises :class:`~repro.errors.PoolUnavailable` only when no worker
    could ever be spawned.
    """
    supervisor = _Supervisor(
        jobs=max(1, jobs),
        timeout_s=timeout_s,
        policy=policy,
        worker_fn=worker_fn,
        on_outcome=on_outcome,
    )
    return supervisor.run(tasks)
