"""Crash-safe checkpoint journal for long campaigns.

An append-only JSONL file that records each completed work unit of one
:func:`repro.exec.execute` call — its result, its captured metrics
dump, and its finished trace spans — so a campaign killed mid-run
(``kill -9``, SIGINT, power loss) can be resumed and complete **only
the missing units**, with a final run manifest byte-identical to the
uninterrupted run.

Durability model: each record is one line, written with a single
``write`` call and then ``flush`` + ``fsync`` — a crash can at worst
leave one truncated *final* line, which :meth:`CheckpointJournal.
load_resume` tolerates and discards.  A corrupt line anywhere *before*
the tail means the file was tampered with or the disk lied, and raises
:class:`~repro.errors.CheckpointError` instead of silently resuming
from bad state.

The header pins the journal to a plan via :func:`plan_fingerprint`
(unit count, labels, and function identities — unit *arguments* are
excluded because they carry RNG generator objects whose pickle bytes
are not a stable identity).  Resuming against a different plan is
refused.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from dataclasses import dataclass, field
from typing import Any

from ..errors import CheckpointError, JournalWriteError
from . import runtime
from .plan import ShardPlan

#: Bumped when the journal line format changes incompatibly.
JOURNAL_VERSION = 1


@dataclass
class UnitRecord:
    """One completed unit: its result plus captured observability.

    ``failure`` is set only for *quarantined* units (the unit exhausted
    its bounded retries under a quarantine-enabled supervision policy):
    the result is ``None`` and ``failure`` carries the unit's label,
    failure class, attempt count, and error text — the structured
    partial-result record that lands in the run manifest.
    """

    index: int
    result: Any
    metrics: dict[str, Any] | None = None
    spans: list[dict[str, Any]] = field(default_factory=list)
    wall_s: float = 0.0
    failure: dict[str, Any] | None = None


def plan_fingerprint(plan: ShardPlan) -> str:
    """A stable identity for a plan's shape (not its argument values).

    Covers the unit count, every label, and every unit function's
    ``module.qualname`` — enough to catch resuming the wrong experiment
    or a plan whose enumeration changed size or order.
    """
    identity = [
        [unit.index, unit.describe(), f"{unit.fn.__module__}.{unit.fn.__qualname__}"]
        for unit in plan.units
    ]
    blob = json.dumps(identity, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class CheckpointJournal:
    """Append-only unit journal for one ``execute`` call."""

    def __init__(self, path: str, plan_fp: str, total: int) -> None:
        self.path = path
        self.plan_fp = plan_fp
        self.total = total
        self.units_written = 0
        self.bytes_written = 0
        #: Set when a write failure degraded the journal to a pure
        #: in-memory bank (the engine keeps completing units; only
        #: crash-resume durability is lost for the rest of the call).
        self.degraded_by: JournalWriteError | None = None
        self._valid_bytes = 0
        self._handle = None

    # ------------------------------------------------------------------
    # Resume side
    # ------------------------------------------------------------------

    def load_resume(self) -> dict[int, UnitRecord]:
        """Read completed units from an existing journal, if any.

        A missing file is an empty resume (fresh start).  A truncated
        final line — the ``kill -9`` signature — is discarded; any
        other malformed content raises
        :class:`~repro.errors.CheckpointError`.
        """
        if not os.path.exists(self.path):
            return {}
        with open(self.path, "rb") as handle:
            raw = handle.read()
        if not raw:
            return {}
        lines = raw.split(b"\n")
        # A complete journal ends with a newline, so the final split
        # element is empty; anything else is a torn tail from a crash.
        body, tail = lines[:-1], (lines[-1] or None)
        self._valid_bytes = len(raw) - (len(tail) if tail else 0)
        records: dict[int, UnitRecord] = {}
        header_seen = False
        for position, line in enumerate(body):
            if not line:
                continue
            try:
                doc = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise CheckpointError(
                    f"{self.path}: corrupt journal line {position + 1}: "
                    f"{error}"
                ) from error
            if not header_seen:
                self._check_header(doc)
                header_seen = True
                continue
            records[int(doc["index"])] = self._decode_unit(doc, position)
        if not header_seen:
            # Nothing usable: a torn header (the crash landed mid-first
            # -write), or a file of blank lines.  Either way there is
            # nothing to resume — the caller starts fresh.
            self._valid_bytes = 0
            return {}
        return records

    def _check_header(self, doc: dict[str, Any]) -> None:
        if doc.get("kind") != "header":
            raise CheckpointError(
                f"{self.path}: first journal line is not a header"
            )
        if doc.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"{self.path}: journal version {doc.get('version')!r}, "
                f"expected {JOURNAL_VERSION}"
            )
        if doc.get("plan") != self.plan_fp or doc.get("units") != self.total:
            raise CheckpointError(
                f"{self.path}: journal belongs to a different plan "
                f"(plan {doc.get('plan')!r} with {doc.get('units')!r} "
                f"unit(s); this run has {self.total})"
            )

    def _decode_unit(self, doc: dict[str, Any], position: int) -> UnitRecord:
        if doc.get("kind") != "unit":
            raise CheckpointError(
                f"{self.path}: unexpected journal record kind "
                f"{doc.get('kind')!r} at line {position + 1}"
            )
        index = int(doc["index"])
        if not 0 <= index < self.total:
            raise CheckpointError(
                f"{self.path}: journal unit index {index} out of range "
                f"for a {self.total}-unit plan"
            )
        try:
            payload = pickle.loads(base64.b64decode(doc["blob"]))
        except Exception as error:
            raise CheckpointError(
                f"{self.path}: cannot decode journal unit {index}: {error}"
            ) from error
        return UnitRecord(
            index=index,
            result=payload["result"],
            metrics=payload["metrics"],
            spans=payload["spans"],
            wall_s=float(payload.get("wall_s", 0.0)),
            failure=payload.get("failure"),
        )

    # ------------------------------------------------------------------
    # Append side
    # ------------------------------------------------------------------

    def start(self, fresh: bool) -> None:
        """Open the journal for appending.

        ``fresh`` truncates and writes a new header (a non-resume run,
        or a resume that found nothing usable); otherwise the file is
        first cut back to its last *valid* byte — discarding a torn
        tail line from a crash — and records append after that.
        """
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if fresh or not os.path.exists(self.path):
            self._handle = open(self.path, "wb")
            self._write_line(
                {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "plan": self.plan_fp,
                    "units": self.total,
                }
            )
            return
        self._handle = open(self.path, "r+b")
        self._handle.truncate(self._valid_bytes)
        self._handle.seek(0, os.SEEK_END)

    def append(self, record: UnitRecord) -> None:
        """Durably append one completed unit.

        Raises :class:`~repro.errors.JournalWriteError` when the OS
        write fails (ENOSPC, I/O error) — the engine's cue to
        :meth:`degrade` the journal and keep the campaign going from
        an in-memory bank.
        """
        if self.degraded_by is not None:
            return
        if self._handle is None:
            raise CheckpointError(
                f"{self.path}: journal not started before append"
            )
        payload = {
            "result": record.result,
            "metrics": record.metrics,
            "spans": record.spans,
            "wall_s": record.wall_s,
            "failure": record.failure,
        }
        blob = base64.b64encode(
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        ).decode("ascii")
        # wall_s is duplicated outside the blob so progress tooling
        # (repro.perf.progress) can read timings without unpickling.
        self._write_line(
            {
                "kind": "unit",
                "index": record.index,
                "wall_s": record.wall_s,
                "blob": blob,
            }
        )
        self.units_written += 1

    def _write_line(self, doc: dict[str, Any]) -> None:
        line = (json.dumps(doc, separators=(",", ":")) + "\n").encode("utf-8")
        assert self._handle is not None
        injector = runtime.fault_injector()
        try:
            if injector is not None:
                # May raise OSError (ENOSPC/EIO simulation), tear the
                # line by writing a prefix and raising SimulatedFailure,
                # or wrap the handle in an OSError-raising file proxy.
                injector.on_journal_write(self, line)
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as error:
            raise JournalWriteError(self.path, error) from error
        self.bytes_written += len(line)

    def degrade(self, error: JournalWriteError) -> None:
        """Abandon the on-disk journal after a write failure.

        Subsequent :meth:`append` calls become no-ops; the engine banks
        records in memory instead.  The broken handle is closed
        best-effort (the close itself may fail on a sick filesystem).
        """
        self.degraded_by = error
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                # The filesystem is already failing; nothing is lost —
                # the journal is abandoned either way.
                self.degraded_by = error

    def close(self) -> None:
        """Close the append handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
