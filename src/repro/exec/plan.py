"""Work-unit enumeration and shard planning.

A :class:`ShardPlan` is the deterministic half of the execution engine:
it enumerates an experiment's independent work units (sweep grid
points, trials, per-device runs) in one **stable order**, and chunks
them into shards for dispatch.  Everything that affects the *result* —
which units exist, their arguments, their RNG streams, and the order
results merge back — is fixed at plan-build time in the parent
process, so running the same plan with ``jobs=1`` or ``jobs=N``
produces byte-identical output.

Per-unit RNG streams come from :func:`repro.rng.spawn` drawn in unit
order (:meth:`ShardPlan.with_spawned_streams`), so a trial axis that
consumes a parent generator stays stream-identical however the units
are later sharded.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from ..errors import ExecError
from ..rng import spawn

#: Shards dispatched per worker by default: small enough to amortise
#: process startup, large enough that a slow unit does not serialise
#: the whole campaign behind it.
CHUNKS_PER_JOB = 4


def shard_unit(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Mark ``fn`` as a shard-unit entry point.

    The marker is declarative: it returns ``fn`` unchanged (no wrapper,
    so pool pickling still sees the original module-level function) and
    only tags it for tooling.  ``repro-lint --project`` roots its
    shard-race analysis (RL007) at every marked function in addition to
    those it can discover syntactically from ``WorkUnit(fn=...)`` /
    ``ShardPlan.enumerate(fn, ...)`` call sites — marking closes the
    gap for units registered through indirection the linter cannot
    follow.  Unit functions must be pure in their arguments: state in
    through ``args``/``kwargs``, state out through the return value.
    """
    fn.__shard_unit__ = True
    return fn


@dataclass(frozen=True)
class WorkUnit:
    """One independent unit of experiment work.

    ``fn`` must be a module-level (picklable) callable; ``index`` is
    the unit's position in the merge order; ``label`` names the unit in
    shard errors and trace spans.
    """

    index: int
    fn: Callable[..., Any]
    args: tuple[Any, ...] = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def run(self) -> Any:
        """Execute the unit in the current process."""
        return self.fn(*self.args, **self.kwargs)

    def describe(self) -> str:
        """The unit's label, or a positional fallback."""
        return self.label or f"unit[{self.index}]"


class ShardPlan:
    """An ordered enumeration of work units plus their shard layout.

    The plan is immutable once built; :meth:`shards` never reorders
    units, and the engine merges results by unit index, so dispatch
    order (and completion order) cannot leak into the output.
    """

    def __init__(self, units: Sequence[WorkUnit]) -> None:
        for position, unit in enumerate(units):
            if unit.index != position:
                raise ExecError(
                    f"work unit {unit.describe()!r} has index {unit.index}, "
                    f"expected {position}: plans must be densely ordered"
                )
        self._units: tuple[WorkUnit, ...] = tuple(units)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def enumerate(
        cls,
        fn: Callable[..., Any],
        argument_sets: Iterable[tuple[Any, ...]],
        labels: Iterable[str] | None = None,
    ) -> "ShardPlan":
        """Plan one unit per argument tuple, in iteration order."""
        argument_sets = list(argument_sets)
        label_list = (
            list(labels) if labels is not None else [""] * len(argument_sets)
        )
        if len(label_list) != len(argument_sets):
            raise ExecError(
                f"{len(label_list)} labels for {len(argument_sets)} "
                "argument sets"
            )
        return cls(
            [
                WorkUnit(index=i, fn=fn, args=tuple(args), label=label)
                for i, (args, label) in enumerate(
                    zip(argument_sets, label_list)
                )
            ]
        )

    def with_spawned_streams(
        self, parent: np.random.Generator, kwarg: str = "rng"
    ) -> "ShardPlan":
        """Attach a per-unit child generator drawn via ``rng.spawn``.

        Streams are spawned from ``parent`` in unit-enumeration order —
        *before* any sharding — so the parent's stream position after
        planning, and every child stream, are identical for every
        ``jobs`` setting.  The generators ship to workers inside the
        unit's ``kwargs`` (``numpy`` generators pickle losslessly).
        """
        units = [
            replace(unit, kwargs={**unit.kwargs, kwarg: spawn(parent)})
            for unit in self._units
        ]
        return ShardPlan(units)

    # ------------------------------------------------------------------
    # Introspection and sharding
    # ------------------------------------------------------------------

    @property
    def units(self) -> tuple[WorkUnit, ...]:
        """The units in merge order."""
        return self._units

    def __len__(self) -> int:
        return len(self._units)

    def chunk_size(self, jobs: int, chunk_size: int | None = None) -> int:
        """Units per shard for a worker count (explicit size wins)."""
        if chunk_size is not None:
            if chunk_size < 1:
                raise ExecError(f"chunk_size must be >= 1, got {chunk_size}")
            return chunk_size
        if jobs < 1:
            raise ExecError(f"jobs must be >= 1, got {jobs}")
        return max(1, -(-len(self._units) // (jobs * CHUNKS_PER_JOB)))

    def shards(
        self, jobs: int, chunk_size: int | None = None
    ) -> list[tuple[WorkUnit, ...]]:
        """Contiguous, order-preserving shards of the unit list.

        Chunked dispatch: by default each worker gets several smaller
        shards (:data:`CHUNKS_PER_JOB`) rather than one big one, so a
        slow grid point only delays its own chunk.
        """
        size = self.chunk_size(jobs, chunk_size)
        return [
            self._units[start : start + size]
            for start in range(0, len(self._units), size)
        ]
