"""Deterministic parallel dispatch of a :class:`~repro.exec.plan.ShardPlan`.

:func:`execute` shards a plan's work units over a
``ProcessPoolExecutor`` and merges the results back **in unit order**,
so ``jobs=N`` is byte-identical to ``jobs=1`` for every experiment
(the jobs-equivalence tests assert this).  The engine adds:

* **per-shard timeout** — a shard that exceeds ``timeout_s`` on the
  pool is abandoned there and re-attempted;
* **bounded retry** — a failed or timed-out shard is re-run serially
  in the parent (where a deterministic unit cannot fail differently
  twice for transient reasons such as a broken pool); after
  ``retries`` re-attempts it raises :class:`~repro.errors.ShardError`;
* **graceful serial fallback** — if the pool cannot be created or
  breaks mid-campaign, the remaining units run serially in-process and
  the run still completes (an ``exec.fallback`` trace event records
  the downgrade);
* **per-shard observability** — each worker traces an ``exec.shard``
  span and collects its own metrics registry; the parent adopts the
  span records and merges the metric dumps, so a sharded run still
  produces one schema-versioned run manifest.

Workers quarantine the observability state they inherit across the
process fork (:meth:`~repro.obs.Observability.quarantine_fork`), so a
parent's open trace file is never written from a child.
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..errors import ExecError, ShardError
from ..obs import OBS
from ..obs.timing import wall_clock
from .plan import ShardPlan, WorkUnit


@dataclass
class _ShardTask:
    """What ships to a worker: one shard of units plus capture intent."""

    shard_index: int
    units: tuple[WorkUnit, ...]
    capture: bool

    def describe(self) -> str:
        """Label for errors/events: the shard and its unit labels."""
        inner = ", ".join(unit.describe() for unit in self.units)
        return f"shard[{self.shard_index}]({inner})"


@dataclass
class _ShardOutcome:
    """What a worker ships back: indexed results plus observability."""

    shard_index: int
    results: list[tuple[int, Any]]
    wall_s: float
    metrics: dict[str, Any] | None = None
    spans: list[dict[str, Any]] = field(default_factory=list)


def _shard_worker(task: _ShardTask) -> _ShardOutcome:
    """Run one shard in a worker process (also used for serial retry).

    Module-level so the pool can pickle it by reference.
    """
    OBS.quarantine_fork()
    if task.capture:
        OBS.configure()
    start = wall_clock()
    results: list[tuple[int, Any]] = []
    with OBS.span(
        "exec.shard", shard=task.shard_index, units=len(task.units)
    ) as span:
        span.set_attribute(
            "labels", [unit.describe() for unit in task.units]
        )
        for unit in task.units:
            results.append((unit.index, unit.run()))
    outcome = _ShardOutcome(
        shard_index=task.shard_index,
        results=results,
        wall_s=wall_clock() - start,
        metrics=OBS.metrics.dump() if task.capture else None,
        spans=[s.to_record() for s in OBS.tracer.finished]
        if task.capture
        else [],
    )
    OBS.quarantine_fork()
    return outcome


def execute(
    plan: ShardPlan,
    jobs: int = 1,
    *,
    timeout_s: float | None = None,
    retries: int = 1,
    chunk_size: int | None = None,
) -> list[Any]:
    """Run every unit of ``plan``; returns results in unit order.

    ``jobs=1`` runs serially in-process with no pool at all;
    ``jobs>1`` dispatches chunked shards to a process pool.  Both paths
    return the same bytes.  ``timeout_s`` bounds each shard's wait on
    the pool (serial re-attempts are not timed — the parent cannot
    interrupt itself); ``retries`` bounds re-attempts per shard before
    :class:`~repro.errors.ShardError` is raised.
    """
    jobs = int(jobs)
    if jobs < 1:
        raise ExecError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ExecError(f"retries must be >= 0, got {retries}")
    if not len(plan):
        return []
    capture = OBS.enabled
    with OBS.span("exec.run", jobs=jobs, units=len(plan)):
        if capture:
            OBS.counter_inc("exec.units", len(plan))
            OBS.gauge_set("exec.jobs", jobs)
        if jobs == 1 or len(plan) == 1:
            return _run_serial(plan.units)
        shards = plan.shards(jobs, chunk_size)
        tasks = [
            _ShardTask(shard_index=i, units=shard, capture=capture)
            for i, shard in enumerate(shards)
        ]
        if capture:
            OBS.counter_inc("exec.shards", len(tasks))
        try:
            pool = ProcessPoolExecutor(max_workers=min(jobs, len(tasks)))
        except (OSError, ImportError, RuntimeError, BrokenExecutor) as error:
            # No pool at all: run everything serially in-process.  This
            # is a downgrade, not a shard failure, so it does not count
            # against the retry budget.
            _note_fallback(error)
            return _run_serial(plan.units)
        outcomes, failures = _dispatch(pool, tasks, timeout_s)
        for task, cause in failures:
            outcomes[task.shard_index] = _reattempt(task, retries, cause)
        _merge_observability(outcomes, capture)
        return _merge_results(plan, outcomes)


# ----------------------------------------------------------------------
# Serial path (jobs=1 and the pool-unavailable fallback)
# ----------------------------------------------------------------------


def _run_serial(units: Sequence[WorkUnit]) -> list[Any]:
    """Run units in order in the current process.

    Metrics and spans land directly in the parent registry, so no
    merge step is needed.
    """
    results: dict[int, Any] = {}
    for unit in units:
        results[unit.index] = unit.run()
    return [results[index] for index in range(len(units))]


# ----------------------------------------------------------------------
# Parallel dispatch
# ----------------------------------------------------------------------


def _dispatch(
    pool: ProcessPoolExecutor,
    tasks: list[_ShardTask],
    timeout_s: float | None,
) -> tuple[dict[int, _ShardOutcome], list[tuple[_ShardTask, BaseException]]]:
    """Submit every shard to the pool; collect outcomes and failures.

    A pool that breaks before everything is submitted downgrades the
    unsubmitted remainder to the failure list, which the caller
    re-attempts serially.
    """
    futures: list[tuple[_ShardTask, Future]] = []
    try:
        for task in tasks:
            futures.append((task, pool.submit(_shard_worker, task)))
    except (OSError, BrokenExecutor) as error:
        _note_fallback(error)
        pool.shutdown(wait=False, cancel_futures=True)
        submitted = {task.shard_index for task, _ in futures}
        outcomes, failures = _collect(futures, timeout_s)
        failures.extend(
            (task, error)
            for task in tasks
            if task.shard_index not in submitted
        )
        return outcomes, failures
    outcomes, failures = _collect(futures, timeout_s)
    # Abandon rather than join: a timed-out worker may still be busy,
    # and the serial re-attempt must not wait for it.
    pool.shutdown(wait=not failures, cancel_futures=bool(failures))
    return outcomes, failures


def _collect(
    futures: list[tuple[_ShardTask, Future]], timeout_s: float | None
) -> tuple[dict[int, _ShardOutcome], list[tuple[_ShardTask, BaseException]]]:
    """Wait on each shard's future, applying the per-shard timeout."""
    outcomes: dict[int, _ShardOutcome] = {}
    failures: list[tuple[_ShardTask, BaseException]] = []
    for task, future in futures:
        try:
            outcomes[task.shard_index] = future.result(timeout=timeout_s)
        except TimeoutError as error:
            if OBS.enabled:
                OBS.counter_inc("exec.timeouts")
                OBS.event(
                    "exec.timeout", shard=task.describe(),
                    timeout_s=timeout_s,
                )
            failures.append((task, error))
        except Exception as error:  # unit raised, or the pool broke
            failures.append((task, error))
    return outcomes, failures


def _note_fallback(error: BaseException) -> None:
    """Record the pool-unavailable downgrade in the trace/metrics."""
    if OBS.enabled:
        OBS.counter_inc("exec.fallbacks")
        OBS.event("exec.fallback", reason=repr(error))


def _reattempt(
    task: _ShardTask, retries: int, cause: BaseException
) -> _ShardOutcome:
    """Re-run a failed shard serially, up to ``retries`` more times."""
    attempts = 1  # the pool attempt
    while attempts <= retries:
        attempts += 1
        if OBS.enabled:
            OBS.counter_inc("exec.retries")
            OBS.event(
                "exec.retry", shard=task.describe(), attempt=attempts
            )
        try:
            # Serial re-attempt in the parent: metrics/spans land
            # directly in the live registry, so strip capture.
            start = wall_clock()
            results = [(unit.index, unit.run()) for unit in task.units]
            return _ShardOutcome(
                shard_index=task.shard_index,
                results=results,
                wall_s=wall_clock() - start,
            )
        except Exception as error:
            cause = error
    raise ShardError(task.describe(), attempts, repr(cause)) from cause


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------


def _merge_observability(
    outcomes: dict[int, _ShardOutcome], capture: bool
) -> None:
    """Fold worker-side metrics and spans into the parent registry.

    Outcomes merge in shard order (= unit order), so last-write-wins
    gauges resolve exactly as a serial run would.
    """
    if not capture:
        return
    for shard_index in sorted(outcomes):
        outcome = outcomes[shard_index]
        OBS.histogram_record("exec.shard_wall_s", outcome.wall_s)
        if outcome.metrics is not None:
            OBS.metrics.merge(outcome.metrics)
        for record in outcome.spans:
            OBS.tracer.adopt_record(record)


def _merge_results(
    plan: ShardPlan, outcomes: dict[int, _ShardOutcome]
) -> list[Any]:
    """Reassemble per-unit results into plan order."""
    by_unit: dict[int, Any] = {}
    for outcome in outcomes.values():
        for unit_index, value in outcome.results:
            by_unit[unit_index] = value
    missing = [u.describe() for u in plan.units if u.index not in by_unit]
    if missing:
        raise ExecError(
            f"shard outcomes missing {len(missing)} unit(s): "
            + ", ".join(missing)
        )
    return [by_unit[index] for index in range(len(plan))]
