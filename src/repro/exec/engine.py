"""Deterministic parallel dispatch of a :class:`~repro.exec.plan.ShardPlan`.

:func:`execute` shards a plan's work units over a supervised pool of
worker processes (:mod:`repro.exec.supervise`) and merges the results
back **in unit order**, so ``jobs=N`` is byte-identical to ``jobs=1``
for every experiment (the jobs-equivalence tests assert this).  The
engine adds:

* **per-shard timeout** — a shard that exceeds ``timeout_s`` is
  SIGKILLed on the pool and re-attempted;
* **heartbeat hang detection** — a worker that completes no unit
  within the supervision policy's ``hang_timeout_s`` is killed and
  re-attempted, instead of stalling the campaign forever;
* **crash containment** — one worker dying (``kill -9``, OOM) costs
  only its own shard; the survivors keep running;
* **bounded retry** — a failed, timed-out, hung, or crashed shard is
  re-run serially in the parent (where a deterministic unit cannot
  fail differently twice for transient reasons); each round records a
  *simulated* exponential backoff (``exec.backoff_s`` — nothing
  sleeps), and after ``retries`` re-attempts the shard raises
  :class:`~repro.errors.ShardError` — or, under a quarantine-enabled
  supervision policy, degrades to per-unit quarantine records so the
  campaign completes with a structured partial result;
* **typed failure taxonomy** — every survived failure is classified
  (:func:`repro.errors.failure_class`) and counted under
  ``exec.failures{failure_class=...}``;
* **graceful serial fallback** — if no worker can be spawned at all,
  the plan runs serially in-process and the run still completes (an
  ``exec.fallback`` trace event records the downgrade);
* **per-shard observability** — each worker traces an ``exec.shard``
  span and collects its own metrics registry; the parent adopts the
  span records and merges the metric dumps, so a sharded run still
  produces one schema-versioned run manifest.

Workers quarantine the observability state they inherit across the
process fork (:meth:`~repro.obs.Observability.quarantine_fork`), so a
parent's open trace file is never written from a child.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import (
    CampaignInterrupted,
    ExecError,
    JournalWriteError,
    PoolUnavailable,
    ShardError,
    SimulatedFailure,
    WorkerCrash,
    WorkerHang,
    failure_class,
)
from ..obs import OBS, MetricsRegistry, Tracer
from ..obs.timing import observe_rate, wall_clock
from . import runtime, supervise
from .journal import CheckpointJournal, UnitRecord, plan_fingerprint
from .plan import ShardPlan, WorkUnit
from .runtime import SupervisionPolicy


@dataclass
class _ShardTask:
    """What ships to a worker: one shard of units plus capture intent.

    ``per_unit`` switches the worker to checkpoint-grade capture: one
    metrics dump and span batch *per unit* (instead of per shard), so
    the parent can journal each unit independently.
    """

    shard_index: int
    units: tuple[WorkUnit, ...]
    capture: bool
    per_unit: bool = False

    def describe(self) -> str:
        """Label for errors/events: the shard and its unit labels."""
        inner = ", ".join(unit.describe() for unit in self.units)
        return f"shard[{self.shard_index}]({inner})"


@dataclass
class _ShardOutcome:
    """What a worker ships back: indexed results plus observability."""

    shard_index: int
    results: list[tuple[int, Any]]
    wall_s: float
    metrics: dict[str, Any] | None = None
    spans: list[dict[str, Any]] = field(default_factory=list)
    unit_records: list[UnitRecord] | None = None


def _capture_unit(unit: WorkUnit, capture: bool) -> UnitRecord:
    """Run one unit with its own metrics registry and tracer.

    Used by every checkpoint-mode path — the serial loop, the pool
    workers, and serial re-attempts — so a unit's captured
    observability is identical however it was dispatched.  The live
    registry/tracer are swapped out for the duration (never reset:
    the parent keeps its open trace writer and collected state).
    """
    start = wall_clock()
    if not capture:
        return UnitRecord(index=unit.index, result=runtime.run_unit(unit),
                          wall_s=wall_clock() - start)
    saved_enabled = OBS.enabled
    saved_metrics, saved_tracer = OBS.metrics, OBS.tracer
    OBS.metrics = MetricsRegistry()
    OBS.tracer = Tracer()
    OBS.enabled = True
    try:
        result = runtime.run_unit(unit)
    finally:
        metrics = OBS.metrics.dump()
        spans = [span.to_record() for span in OBS.tracer.finished]
        OBS.metrics, OBS.tracer = saved_metrics, saved_tracer
        OBS.enabled = saved_enabled
    return UnitRecord(
        index=unit.index,
        result=result,
        metrics=metrics,
        spans=spans,
        wall_s=wall_clock() - start,
    )


def _shard_worker(
    task: _ShardTask, heartbeat: Callable[[], None] | None = None
) -> _ShardOutcome:
    """Run one shard in a worker process (also used for serial retry).

    Module-level so the pool can pickle it by reference.  ``heartbeat``
    is the supervisor's per-unit progress tick — called after every
    completed unit so the parent can tell a busy worker from a hung
    one; serial callers leave it unset.
    """
    OBS.quarantine_fork()
    tick = heartbeat if heartbeat is not None else (lambda: None)
    if task.per_unit:
        start = wall_clock()
        records = []
        for unit in task.units:
            records.append(_capture_unit(unit, task.capture))
            tick()
        outcome = _ShardOutcome(
            shard_index=task.shard_index,
            results=[(record.index, record.result) for record in records],
            wall_s=wall_clock() - start,
            unit_records=records,
        )
        OBS.quarantine_fork()
        return outcome
    if task.capture:
        OBS.configure()
    start = wall_clock()
    results: list[tuple[int, Any]] = []
    with OBS.span(
        "exec.shard", shard=task.shard_index, units=len(task.units)
    ) as span:
        span.set_attribute(
            "labels", [unit.describe() for unit in task.units]
        )
        for unit in task.units:
            results.append((unit.index, runtime.run_unit(unit)))
            tick()
    outcome = _ShardOutcome(
        shard_index=task.shard_index,
        results=results,
        wall_s=wall_clock() - start,
        metrics=OBS.metrics.dump() if task.capture else None,
        spans=[s.to_record() for s in OBS.tracer.finished]
        if task.capture
        else [],
    )
    OBS.quarantine_fork()
    return outcome


def execute(
    plan: ShardPlan,
    jobs: int = 1,
    *,
    timeout_s: float | None = None,
    retries: int = 1,
    chunk_size: int | None = None,
) -> list[Any]:
    """Run every unit of ``plan``; returns results in unit order.

    ``jobs=1`` runs serially in-process with no pool at all;
    ``jobs>1`` dispatches chunked shards to supervised worker
    processes.  Both paths return the same bytes.  ``timeout_s``
    bounds each shard's time on the pool (serial re-attempts are not
    timed — the parent cannot interrupt itself); ``retries`` bounds
    re-attempts per shard before :class:`~repro.errors.ShardError` is
    raised — or, when the installed
    :class:`~repro.exec.runtime.SupervisionPolicy` enables
    ``quarantine``, before the failing units are quarantined (result
    ``None`` plus an incident in the runtime ledger) and the campaign
    completes partially.

    When a checkpoint policy is installed
    (:mod:`repro.exec.runtime`), the call journals every completed
    unit to an append-only file and, on resume, runs only the units
    the journal is missing — with a final metrics state identical to
    an uninterrupted run.
    """
    jobs = int(jobs)
    if jobs < 1:
        raise ExecError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ExecError(f"retries must be >= 0, got {retries}")
    if not len(plan):
        return []
    capture = OBS.enabled
    policy = runtime.checkpoint_policy()
    supervision = runtime.supervision_policy()
    with OBS.span("exec.run", jobs=jobs, units=len(plan)):
        if capture:
            OBS.counter_inc("exec.units", len(plan))
            OBS.gauge_set("exec.jobs", jobs)
        # Profiling hook: the engine's end-to-end dispatch throughput
        # (units/s).  Lands under the "perf." prefix, which manifest
        # fingerprints strip, so jobs-equivalence is untouched.  The
        # disabled path reads no clock at all.
        start = wall_clock() if capture else 0.0
        try:
            if policy is not None:
                return _run_checkpointed(
                    plan,
                    jobs,
                    timeout_s=timeout_s,
                    retries=retries,
                    chunk_size=chunk_size,
                    journal_path=runtime.claim_journal_path(),
                    resume=policy.resume,
                    capture=capture,
                    supervision=supervision,
                )
            if jobs == 1 or len(plan) == 1:
                return _run_serial(
                    plan.units, retries=retries, supervision=supervision
                )
            shards = plan.shards(jobs, chunk_size)
            tasks = [
                _ShardTask(shard_index=i, units=shard, capture=capture)
                for i, shard in enumerate(shards)
            ]
            if capture:
                OBS.counter_inc("exec.shards", len(tasks))
            try:
                outcomes, failures = supervise.run_supervised(
                    tasks,
                    jobs=min(jobs, len(tasks)),
                    timeout_s=timeout_s,
                    policy=supervision,
                    worker_fn=_shard_worker,
                )
            except PoolUnavailable as error:
                # No pool at all: run everything serially in-process.
                # The downgrade itself is not a shard failure, so it
                # does not count against the retry budget.
                _note_fallback(error)
                return _run_serial(
                    plan.units, retries=retries, supervision=supervision
                )
            _note_failures(failures, timeout_s)
            for task, cause in failures:
                outcomes[task.shard_index] = _reattempt(
                    task, retries, cause, supervision
                )
            _merge_observability(outcomes, capture)
            return _merge_results(plan, outcomes)
        finally:
            if capture:
                observe_rate("exec.units", len(plan), wall_clock() - start)


# ----------------------------------------------------------------------
# Checkpointed path (a runtime checkpoint policy is installed)
# ----------------------------------------------------------------------


def _run_checkpointed(
    plan: ShardPlan,
    jobs: int,
    *,
    timeout_s: float | None,
    retries: int,
    chunk_size: int | None,
    journal_path: str,
    resume: bool,
    capture: bool,
    supervision: SupervisionPolicy,
) -> list[Any]:
    """Execute with an append-only unit journal and optional resume.

    Every path (serial, pool, serial re-attempt) captures metrics and
    spans *per unit* via :func:`_capture_unit` and merges them back in
    unit-index order — so an interrupted-then-resumed campaign folds
    resumed and freshly-run units into exactly the metrics state an
    uninterrupted run produces, whatever ``jobs`` was either time.

    A journal *write* failure (ENOSPC, I/O error) does not abort the
    campaign: the journal degrades to an in-memory bank, the run
    completes, and the degradation lands in the runtime incident
    ledger so the CLI can exit with its documented degraded code.  A
    :class:`~repro.errors.SimulatedFailure` (chaos hard-crash) is
    treated exactly like SIGINT: the journal is closed and
    :class:`~repro.errors.CampaignInterrupted` points at ``--resume``.
    """
    journal = CheckpointJournal(journal_path, plan_fingerprint(plan), len(plan))
    done = journal.load_resume() if resume else {}
    # Units always journal their captured metrics/spans — even when the
    # parent runs unobserved — so a later *observed* resume can still
    # merge the banked units into a complete manifest.
    capture_units = True
    journal.start(fresh=not resume or not done)
    if capture and done:
        OBS.counter_inc("exec.resumed_units", len(done))
        OBS.event(
            "exec.resume",
            journal=journal_path,
            resumed=len(done),
            total=len(plan),
        )
    records: dict[int, UnitRecord] = dict(done)
    remaining = [unit for unit in plan.units if unit.index not in records]

    def complete(record: UnitRecord) -> None:
        try:
            journal.append(record)
        except JournalWriteError as error:
            journal.degrade(error)
            runtime.note_incident(
                runtime.Incident(
                    kind="journal-degraded",
                    failure_class=error.failure_class,
                    detail={
                        "journal": journal_path,
                        "failure_class": error.failure_class,
                        "error": str(error),
                    },
                )
            )
            if capture:
                OBS.counter_inc(
                    "exec.journal_failures",
                    failure_class=error.failure_class,
                )
                OBS.event(
                    "exec.journal-degraded",
                    journal=journal_path,
                    failure_class=error.failure_class,
                )
        records[record.index] = record

    try:
        if jobs == 1 or len(remaining) <= 1:
            for unit in remaining:
                complete(
                    _attempt_unit(unit, capture_units, retries, supervision)
                )
        elif remaining:
            _dispatch_checkpointed(
                remaining, plan, jobs, timeout_s, retries, chunk_size,
                capture_units, complete, supervision,
            )
    except (KeyboardInterrupt, SimulatedFailure) as error:
        journal.close()
        raise CampaignInterrupted(
            journal_path, len(records), len(plan)
        ) from error
    finally:
        journal.close()
    if capture:
        OBS.counter_inc("exec.checkpointed_units", journal.units_written)
        OBS.gauge_set("exec.journal_bytes", journal.bytes_written)
    missing = [u.describe() for u in plan.units if u.index not in records]
    if missing:
        raise ExecError(
            f"journal outcomes missing {len(missing)} unit(s): "
            + ", ".join(missing)
        )
    if capture:
        for index in sorted(records):
            record = records[index]
            OBS.histogram_record("exec.shard_wall_s", record.wall_s)
            if record.metrics is not None:
                OBS.metrics.merge(record.metrics)
            for span_record in record.spans:
                OBS.tracer.adopt_record(span_record)
    # Quarantined units surface from the *records* (not at quarantine
    # time) so a resume that banked a quarantine record re-reports it.
    for index in sorted(records):
        if records[index].failure is not None:
            _note_quarantine(records[index].failure)
    return [records[index].result for index in range(len(plan))]


def _attempt_unit(
    unit: WorkUnit,
    capture: bool,
    retries: int,
    supervision: SupervisionPolicy,
) -> UnitRecord:
    """Checkpoint-mode serial unit execution with bounded retries.

    Mirrors the pool path's contract: every failure is classified,
    each re-attempt round records its simulated backoff, and retry
    exhaustion either raises :class:`~repro.errors.ShardError` or —
    under a quarantine policy — returns a quarantine record so the
    campaign completes partially.
    """
    attempts = 0
    while True:
        attempts += 1
        try:
            return _capture_unit(unit, capture)
        except Exception as error:
            _note_failures([(unit, error)], None)
            if attempts > retries:
                if supervision.quarantine:
                    return _quarantine_record(unit, error)
                raise ShardError(
                    unit.describe(), attempts, repr(error)
                ) from error
            _note_retry(unit.describe(), attempts, supervision)


def _dispatch_checkpointed(
    remaining: Sequence[WorkUnit],
    plan: ShardPlan,
    jobs: int,
    timeout_s: float | None,
    retries: int,
    chunk_size: int | None,
    capture: bool,
    complete: "Callable[[UnitRecord], None]",
    supervision: SupervisionPolicy,
) -> None:
    """Pool-dispatch the remaining units with per-unit journalling.

    Each shard's unit records are journalled the moment its outcome
    lands, so progress survives a crash at any point of the campaign.
    Failed shards fall back to captured serial re-attempts, like the
    non-checkpointed engine.
    """
    size = plan.chunk_size(jobs, chunk_size)
    shards = [
        tuple(remaining[start : start + size])
        for start in range(0, len(remaining), size)
    ]
    tasks = [
        _ShardTask(shard_index=i, units=shard, capture=capture, per_unit=True)
        for i, shard in enumerate(shards)
    ]
    if OBS.enabled:
        OBS.counter_inc("exec.shards", len(tasks))

    def on_outcome(outcome: _ShardOutcome) -> None:
        for record in outcome.unit_records or []:
            complete(record)

    try:
        _, failures = supervise.run_supervised(
            tasks,
            jobs=min(jobs, len(tasks)),
            timeout_s=timeout_s,
            policy=supervision,
            worker_fn=_shard_worker,
            on_outcome=on_outcome,
        )
    except PoolUnavailable as error:
        _note_fallback(error)
        for shard in shards:
            for unit in shard:
                complete(_attempt_unit(unit, capture, retries, supervision))
        return
    _note_failures(failures, timeout_s)
    for task, cause in failures:
        for record in _reattempt_captured(task, retries, cause, supervision):
            complete(record)


def _reattempt_captured(
    task: _ShardTask,
    retries: int,
    cause: BaseException,
    supervision: SupervisionPolicy,
) -> list[UnitRecord]:
    """Checkpoint-mode serial re-attempt: per-unit captured records."""
    attempts = 1  # the pool attempt
    while attempts <= retries:
        _note_retry(task.describe(), attempts, supervision)
        attempts += 1
        try:
            return [_capture_unit(unit, task.capture) for unit in task.units]
        except Exception as error:
            cause = error
            _note_failures([(task, error)], None)
    if supervision.quarantine:
        records = []
        for unit in task.units:
            try:
                records.append(_capture_unit(unit, task.capture))
            except Exception as error:
                _note_failures([(unit, error)], None)
                records.append(_quarantine_record(unit, error))
        return records
    raise ShardError(task.describe(), attempts, repr(cause)) from cause


# ----------------------------------------------------------------------
# Serial path (jobs=1 and the pool-unavailable fallback)
# ----------------------------------------------------------------------


def _run_serial(
    units: Sequence[WorkUnit],
    retries: int = 0,
    supervision: SupervisionPolicy | None = None,
) -> list[Any]:
    """Run units in order in the current process.

    Metrics and spans land directly in the parent registry, so no
    merge step is needed.  Failures follow the pool contract: each
    failing unit is classified and re-attempted up to ``retries``
    times with the same ``exec.retries`` counter and ``exec.retry``
    events the pool path emits, then raises
    :class:`~repro.errors.ShardError` — or quarantines the unit under
    a quarantine policy — so a ``jobs=1`` run and a ``jobs=N`` run
    produce the same results for the same flaky plan.
    """
    if supervision is None:
        supervision = runtime.supervision_policy()
    results: dict[int, Any] = {}
    for unit in units:
        attempts = 0
        while True:
            attempts += 1
            try:
                results[unit.index] = runtime.run_unit(unit)
                break
            except Exception as error:
                _note_failures([(unit, error)], None)
                if attempts > retries:
                    if supervision.quarantine:
                        results[unit.index] = None
                        _note_quarantine(
                            _quarantine_record(unit, error).failure
                        )
                        break
                    raise ShardError(
                        unit.describe(), attempts, repr(error)
                    ) from error
                _note_retry(unit.describe(), attempts, supervision)
    return [results[index] for index in range(len(units))]


# ----------------------------------------------------------------------
# Failure accounting (the typed taxonomy's metrics surface)
# ----------------------------------------------------------------------


def _note_failures(
    failures: "Sequence[tuple[Any, BaseException]]",
    timeout_s: float | None,
) -> None:
    """Classify and count every failure the engine is about to survive.

    Each failure increments ``exec.failures`` labelled with its
    :func:`repro.errors.failure_class`; timeouts, hangs, and crashes
    additionally keep their dedicated counters and trace events so
    existing dashboards stay meaningful.
    """
    if not OBS.enabled:
        return
    for task, cause in failures:
        OBS.counter_inc("exec.failures", failure_class=failure_class(cause))
        if isinstance(cause, TimeoutError):
            OBS.counter_inc("exec.timeouts")
            OBS.event(
                "exec.timeout", shard=task.describe(), timeout_s=timeout_s
            )
        elif isinstance(cause, WorkerHang):
            OBS.counter_inc("exec.hangs")
            OBS.event("exec.hang", shard=task.describe())
        elif isinstance(cause, WorkerCrash):
            OBS.counter_inc("exec.crashes")
            OBS.event(
                "exec.crash",
                shard=task.describe(),
                exitcode=cause.exitcode,
            )


def _note_retry(
    label: str, failures_so_far: int, supervision: SupervisionPolicy
) -> None:
    """Record one re-attempt round and its *simulated* backoff.

    The backoff value comes from the resilience layer's bounded
    exponential schedule — it is recorded (``exec.backoff_s``), never
    slept, so retry pacing is byte-reproducible and free.
    """
    if not OBS.enabled:
        return
    backoff = supervision.backoff.backoff_s(failures_so_far)
    OBS.counter_inc("exec.retries")
    OBS.histogram_record("exec.backoff_s", backoff)
    OBS.event(
        "exec.retry",
        shard=label,
        attempt=failures_so_far + 1,
        backoff_s=backoff,
    )


def _quarantine_record(unit: WorkUnit, cause: BaseException) -> UnitRecord:
    """The structured partial-result record for one poisoned unit.

    Deliberately free of attempt counts and timings so the record —
    and the manifest partial section built from it — is identical
    whether the unit was quarantined serially, on the pool, or on a
    resumed run.
    """
    cls = failure_class(cause)
    return UnitRecord(
        index=unit.index,
        result=None,
        failure={
            "unit": unit.index,
            "label": unit.describe(),
            "failure_class": cls,
            "error": repr(cause),
        },
    )


def _note_quarantine(failure: dict[str, Any]) -> None:
    """Ledger one quarantined unit (incident + counter + event)."""
    runtime.note_incident(
        runtime.Incident(
            kind="quarantined-unit",
            failure_class=failure["failure_class"],
            detail=dict(failure),
        )
    )
    if OBS.enabled:
        OBS.counter_inc("exec.quarantined_units")
        OBS.event(
            "exec.quarantine",
            unit=failure["label"],
            failure_class=failure["failure_class"],
        )


def _note_fallback(error: BaseException) -> None:
    """Record the pool-unavailable downgrade in the trace/metrics."""
    if OBS.enabled:
        OBS.counter_inc("exec.fallbacks")
        OBS.event("exec.fallback", reason=repr(error))


def _reattempt(
    task: _ShardTask,
    retries: int,
    cause: BaseException,
    supervision: SupervisionPolicy,
) -> _ShardOutcome:
    """Re-run a failed shard serially, up to ``retries`` more times."""
    attempts = 1  # the pool attempt
    while attempts <= retries:
        _note_retry(task.describe(), attempts, supervision)
        attempts += 1
        try:
            # Serial re-attempt in the parent: metrics/spans land
            # directly in the live registry, so strip capture.
            start = wall_clock()
            results = [
                (unit.index, runtime.run_unit(unit)) for unit in task.units
            ]
            return _ShardOutcome(
                shard_index=task.shard_index,
                results=results,
                wall_s=wall_clock() - start,
            )
        except Exception as error:
            cause = error
            _note_failures([(task, error)], None)
    if supervision.quarantine:
        start = wall_clock()
        results = []
        for unit in task.units:
            try:
                results.append((unit.index, runtime.run_unit(unit)))
            except Exception as error:
                _note_failures([(unit, error)], None)
                results.append((unit.index, None))
                _note_quarantine(_quarantine_record(unit, error).failure)
        return _ShardOutcome(
            shard_index=task.shard_index,
            results=results,
            wall_s=wall_clock() - start,
        )
    raise ShardError(task.describe(), attempts, repr(cause)) from cause


# ----------------------------------------------------------------------
# Merging
# ----------------------------------------------------------------------


def _merge_observability(
    outcomes: dict[int, _ShardOutcome], capture: bool
) -> None:
    """Fold worker-side metrics and spans into the parent registry.

    Outcomes merge in shard order (= unit order), so last-write-wins
    gauges resolve exactly as a serial run would.
    """
    if not capture:
        return
    for shard_index in sorted(outcomes):
        outcome = outcomes[shard_index]
        OBS.histogram_record("exec.shard_wall_s", outcome.wall_s)
        if outcome.metrics is not None:
            OBS.metrics.merge(outcome.metrics)
        for record in outcome.spans:
            OBS.tracer.adopt_record(record)


def _merge_results(
    plan: ShardPlan, outcomes: dict[int, _ShardOutcome]
) -> list[Any]:
    """Reassemble per-unit results into plan order."""
    by_unit: dict[int, Any] = {}
    for outcome in outcomes.values():
        for unit_index, value in outcome.results:
            by_unit[unit_index] = value
    missing = [u.describe() for u in plan.units if u.index not in by_unit]
    if missing:
        raise ExecError(
            f"shard outcomes missing {len(missing)} unit(s): "
            + ", ".join(missing)
        )
    return [by_unit[index] for index in range(len(plan))]
