"""Deterministic parallel experiment execution.

The scaling substrate for the benchmark suite: experiments enumerate
their independent work units (sweep grid points, trials, per-device
runs) into a :class:`ShardPlan`, and :func:`execute` fans the shards
out over a process pool — with the hard guarantee that ``jobs=N``
produces **byte-identical** results to ``jobs=1``.

The guarantee rests on three rules, enforced by this package's API:

1. unit enumeration, arguments, and RNG streams are fixed at
   plan-build time in the parent (``ShardPlan.with_spawned_streams``
   draws per-unit streams via :func:`repro.rng.spawn` in unit order);
2. units are pure functions of their arguments — no shared mutable
   state, no ambient entropy (the RL001 lint holds the entropy line;
   the project-wide RL007 shard-race lint walks the call graph from
   every unit — syntactically discovered or marked with
   :func:`shard_unit` — and flags shared-state writes);
3. results merge by unit index, never by completion order.

See ``docs/determinism.md`` for the full contract and
``docs/architecture.md`` for how the layer fits the system.
"""

from __future__ import annotations

from ..errors import CampaignInterrupted, CheckpointError, ExecError, ShardError
from .engine import execute
from .journal import CheckpointJournal, UnitRecord, plan_fingerprint
from .plan import CHUNKS_PER_JOB, ShardPlan, WorkUnit, shard_unit
from .runtime import (
    CheckpointPolicy,
    Incident,
    SupervisionPolicy,
    checkpoint_policy,
    checkpointing,
    clear_incidents,
    incidents,
    injected,
    install_fault_injector,
    set_checkpoint_policy,
    set_supervision_policy,
    supervised,
    supervision_policy,
)

__all__ = [
    "CHUNKS_PER_JOB",
    "CampaignInterrupted",
    "CheckpointError",
    "CheckpointJournal",
    "CheckpointPolicy",
    "ExecError",
    "Incident",
    "ShardError",
    "ShardPlan",
    "SupervisionPolicy",
    "UnitRecord",
    "WorkUnit",
    "checkpoint_policy",
    "checkpointing",
    "clear_incidents",
    "execute",
    "incidents",
    "injected",
    "install_fault_injector",
    "plan_fingerprint",
    "set_checkpoint_policy",
    "set_supervision_policy",
    "shard_unit",
    "supervised",
    "supervision_policy",
]
