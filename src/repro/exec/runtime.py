"""Process-global checkpoint policy for :func:`repro.exec.execute`.

Checkpointing is an *operational* concern — the CLI (or a test
harness) decides it, not the experiment code.  Experiments call
``execute(plan, jobs=jobs)`` exactly as before; when a policy is
installed here, every ``execute`` call transparently journals its
units under the policy's directory and, on ``resume``, completes only
the missing ones.

Each ``execute`` call in a run claims the next journal path in a
deterministic sequence (``journal-000.jsonl``, ``journal-001.jsonl``,
…), so an experiment that executes several plans (e.g. a sweep plus a
baseline) checkpoints each independently, and a resumed process —
which replays the same ``execute`` calls in the same order — pairs
every call back up with its own journal.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..errors import CheckpointError


@dataclass(frozen=True)
class CheckpointPolicy:
    """Where journals live and whether to resume from them."""

    directory: str
    resume: bool = False

    def __post_init__(self) -> None:
        if not self.directory:
            raise CheckpointError("checkpoint policy needs a directory")


_policy: CheckpointPolicy | None = None
_claims: int = 0


def set_checkpoint_policy(policy: CheckpointPolicy | None) -> None:
    """Install (or clear) the policy; resets the journal sequence."""
    global _policy, _claims
    _policy = policy
    _claims = 0


def checkpoint_policy() -> CheckpointPolicy | None:
    """The installed policy, if any."""
    return _policy


def claim_journal_path() -> str:
    """The next ``execute`` call's journal path (creates the dir)."""
    global _claims
    if _policy is None:
        raise CheckpointError("no checkpoint policy installed")
    os.makedirs(_policy.directory, exist_ok=True)
    path = os.path.join(_policy.directory, f"journal-{_claims:03d}.jsonl")
    _claims += 1
    return path


@contextmanager
def checkpointing(directory: str, resume: bool = False) -> Iterator[None]:
    """Install a checkpoint policy for a block, restoring the old one."""
    previous = _policy
    set_checkpoint_policy(CheckpointPolicy(directory, resume=resume))
    try:
        yield
    finally:
        set_checkpoint_policy(previous)
