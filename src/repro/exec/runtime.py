"""Process-global runtime policies for :func:`repro.exec.execute`.

Checkpointing, supervision, and fault injection are *operational*
concerns — the CLI (or a test harness) decides them, not the
experiment code.  Experiments call ``execute(plan, jobs=jobs)``
exactly as before; when policies are installed here, every ``execute``
call transparently picks them up:

* a :class:`CheckpointPolicy` journals completed units under a
  directory and, on ``resume``, completes only the missing ones;
* a :class:`SupervisionPolicy` tunes the supervised worker pool
  (heartbeat hang detection, simulated backoff pacing, poison-unit
  quarantine);
* a fault injector (:mod:`repro.chaos`) intercepts the unit and
  journal choke points to inject deterministic failures.

Each ``execute`` call in a run claims the next journal path in a
deterministic sequence (``journal-000.jsonl``, ``journal-001.jsonl``,
…), so an experiment that executes several plans (e.g. a sweep plus a
baseline) checkpoints each independently, and a resumed process —
which replays the same ``execute`` calls in the same order — pairs
every call back up with its own journal.

This module is also the engine's **incident ledger**: quarantined
units and journal degradations are recorded here so the manifest
layer can attach a structured partial-result section and the CLI can
honour its ``EXIT_DEGRADED`` exit-code contract.  (This module and the
``repro.obs.OBS`` singleton are the only whitelisted holders of
cross-unit process state — see the RL007 lint rule.)
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import CheckpointError
from ..resilience.retry import RetryPolicy
from ..units import milliseconds


@dataclass(frozen=True)
class CheckpointPolicy:
    """Where journals live and whether to resume from them."""

    directory: str
    resume: bool = False

    def __post_init__(self) -> None:
        if not self.directory:
            raise CheckpointError("checkpoint policy needs a directory")


_policy: CheckpointPolicy | None = None
_claims: int = 0


def set_checkpoint_policy(policy: CheckpointPolicy | None) -> None:
    """Install (or clear) the policy; resets the journal sequence."""
    global _policy, _claims
    _policy = policy
    _claims = 0


def checkpoint_policy() -> CheckpointPolicy | None:
    """The installed policy, if any."""
    return _policy


def claim_journal_path() -> str:
    """The next ``execute`` call's journal path (creates the dir)."""
    global _claims
    if _policy is None:
        raise CheckpointError("no checkpoint policy installed")
    os.makedirs(_policy.directory, exist_ok=True)
    path = os.path.join(_policy.directory, f"journal-{_claims:03d}.jsonl")
    _claims += 1
    return path


@contextmanager
def checkpointing(directory: str, resume: bool = False) -> Iterator[None]:
    """Install a checkpoint policy for a block, restoring the old one."""
    previous = _policy
    set_checkpoint_policy(CheckpointPolicy(directory, resume=resume))
    try:
        yield
    finally:
        set_checkpoint_policy(previous)


# ----------------------------------------------------------------------
# Supervision policy (heartbeats, backoff pacing, quarantine)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the supervised pool polices its workers.

    ``hang_timeout_s`` is how long a worker may go without a heartbeat
    tick (one per completed unit) before it is killed and its shard
    re-attempted; ``None`` disables hang detection.  ``poll_interval_s``
    paces the supervisor's result/health loop.  ``backoff`` is the
    *simulated* exponential-backoff schedule recorded per re-attempt
    (reusing the resilience layer's bounded-exponential contract —
    nothing sleeps).  ``quarantine`` turns exhausted-retry failures
    into per-unit quarantine records instead of a fatal
    :class:`~repro.errors.ShardError`.
    """

    hang_timeout_s: float | None = 120.0
    poll_interval_s: float = milliseconds(20)
    backoff: RetryPolicy = field(default_factory=RetryPolicy)
    quarantine: bool = False

    def __post_init__(self) -> None:
        if self.hang_timeout_s is not None and self.hang_timeout_s <= 0.0:
            raise CheckpointError("hang_timeout_s must be positive or None")
        if self.poll_interval_s <= 0.0:
            raise CheckpointError("poll_interval_s must be positive")


#: The default when nothing is installed: supervision on, quarantine off.
DEFAULT_SUPERVISION = SupervisionPolicy()

_supervision: SupervisionPolicy | None = None


def set_supervision_policy(policy: SupervisionPolicy | None) -> None:
    """Install (or clear) the supervision policy."""
    global _supervision
    _supervision = policy


def supervision_policy() -> SupervisionPolicy:
    """The installed policy, or :data:`DEFAULT_SUPERVISION`."""
    return _supervision if _supervision is not None else DEFAULT_SUPERVISION


@contextmanager
def supervised(policy: SupervisionPolicy) -> Iterator[None]:
    """Install a supervision policy for a block, restoring the old one."""
    previous = _supervision
    set_supervision_policy(policy)
    try:
        yield
    finally:
        set_supervision_policy(previous)


# ----------------------------------------------------------------------
# Fault injection (the repro.chaos hook points)
# ----------------------------------------------------------------------

_injector: Any = None


def install_fault_injector(injector: Any) -> None:
    """Install (or clear, with ``None``) the process-global injector.

    The injector is duck-typed — ``on_unit(unit)`` fires before every
    work unit runs (in the parent *and*, via fork inheritance, in
    every worker), and ``on_journal_write(journal, line)`` fires
    before every journal line hits the disk — so the exec layer never
    imports :mod:`repro.chaos`.
    """
    global _injector
    _injector = injector


def fault_injector() -> Any:
    """The installed fault injector, if any."""
    return _injector


@contextmanager
def injected(injector: Any) -> Iterator[None]:
    """Install a fault injector for a block, restoring the old one."""
    previous = _injector
    install_fault_injector(injector)
    try:
        yield
    finally:
        install_fault_injector(previous)


def run_unit(unit: Any) -> Any:
    """The single unit-execution choke point.

    Every engine path — serial, pool worker, re-attempt — runs units
    through here, so an installed fault injector sees each execution
    exactly once however the unit was dispatched.
    """
    if _injector is not None:
        _injector.on_unit(unit)
    return unit.run()


# ----------------------------------------------------------------------
# Incident ledger (quarantine + journal degradation)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Incident:
    """One survivable runtime incident the run completed *around*.

    ``kind`` is ``"quarantined-unit"`` or ``"journal-degraded"``;
    ``failure_class`` is the :data:`repro.errors.FAILURE_CLASSES`
    entry; ``detail`` carries kind-specific fields (unit index/label,
    journal path, attempt counts).
    """

    kind: str
    failure_class: str
    detail: dict[str, Any]


_incidents: list[Incident] = []


def note_incident(incident: Incident) -> None:
    """Append one incident to the ledger."""
    _incidents.append(incident)


def incidents() -> tuple[Incident, ...]:
    """Every incident recorded since the last :func:`clear_incidents`."""
    return tuple(_incidents)


def clear_incidents() -> None:
    """Reset the ledger (the CLI does this per invocation)."""
    _incidents.clear()
