"""Live campaign progress from exec checkpoint journals.

``repro progress <journal>`` answers the operator's question during a
multi-hour parameter search: *how far along is it and when will it
finish?* — without touching the running process.  The checkpoint
journal (:mod:`repro.exec.journal`) is an append-only JSONL file whose
header carries the plan's total unit count and whose unit lines carry
per-unit wall times, so progress, rolling throughput, and an ETA can
all be read straight off the file — live mid-run, or post-mortem from
the journal a ``kill -9`` left behind (the torn final line a crash
writes is recognised and discarded, exactly as ``--resume`` does).

ETA model: remaining units x the rolling mean unit wall time over the
most recent :data:`ROLLING_WINDOW` completions.  Unit wall times are
measured inside the worker, so on a ``--jobs N`` pool the ETA is the
serial-equivalent bound; the report says so rather than guessing the
pool's effective parallelism.
"""

from __future__ import annotations

import base64
import json
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..errors import PerfError
from ..exec.journal import JOURNAL_VERSION

#: Completions pooled into the rolling throughput/ETA estimate.
ROLLING_WINDOW = 16


@dataclass
class ProgressReport:
    """What one checkpoint journal says about its campaign."""

    path: str
    total: int
    done: int
    torn_tail: bool
    wall_s_total: float
    rolling_units: int
    rolling_wall_s: float

    @property
    def remaining(self) -> int:
        """Units the journal has not yet banked."""
        return max(0, self.total - self.done)

    @property
    def fraction(self) -> float:
        """Completed fraction in [0, 1]."""
        return self.done / self.total if self.total else 0.0

    @property
    def complete(self) -> bool:
        """Whether every unit is banked."""
        return self.total > 0 and self.done >= self.total

    @property
    def throughput_units_per_s(self) -> float | None:
        """Rolling completion rate (None before any timed unit lands)."""
        if self.rolling_units and self.rolling_wall_s > 0.0:
            return self.rolling_units / self.rolling_wall_s
        return None

    @property
    def eta_s(self) -> float | None:
        """Serial-equivalent seconds to completion (None when unknown)."""
        rate = self.throughput_units_per_s
        if rate is None or self.complete:
            return 0.0 if self.complete else None
        return self.remaining / rate

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "total": self.total,
            "done": self.done,
            "remaining": self.remaining,
            "fraction": self.fraction,
            "complete": self.complete,
            "torn_tail": self.torn_tail,
            "wall_s_total": self.wall_s_total,
            "throughput_units_per_s": self.throughput_units_per_s,
            "eta_s": self.eta_s,
        }


def _unit_wall_s(doc: dict[str, Any]) -> float:
    """One unit line's wall time.

    Journals written since the perf subsystem carry ``wall_s`` in the
    outer JSON line; older journals only carry it inside the pickled
    blob, so fall back to decoding that.
    """
    wall = doc.get("wall_s")
    if isinstance(wall, (int, float)):
        return float(wall)
    try:
        payload = pickle.loads(base64.b64decode(doc["blob"]))
        return float(payload.get("wall_s", 0.0))
    except Exception:
        return 0.0  # unreadable blob: count the unit, skip its timing


def read_progress(path: str | Path) -> ProgressReport:
    """Parse one checkpoint journal into a progress report.

    Tolerates exactly what the journal's durability model permits: a
    torn *final* line (the ``kill -9`` signature).  Anything else
    malformed raises :class:`~repro.errors.PerfError` — a journal that
    lies about progress is worse than no report.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise PerfError(f"{path}: cannot read journal: {error}") from error
    if not raw:
        raise PerfError(f"{path}: journal is empty")
    lines = raw.split(b"\n")
    body, tail = lines[:-1], (lines[-1] or None)
    total: int | None = None
    walls: list[float] = []
    for position, line in enumerate(body):
        if not line:
            continue
        try:
            doc = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise PerfError(
                f"{path}: corrupt journal line {position + 1}: {error}"
            ) from error
        if total is None:
            if doc.get("kind") != "header":
                raise PerfError(f"{path}: first journal line is not a header")
            if doc.get("version") != JOURNAL_VERSION:
                raise PerfError(
                    f"{path}: journal version {doc.get('version')!r}, "
                    f"expected {JOURNAL_VERSION}"
                )
            total = int(doc.get("units", 0))
            continue
        if doc.get("kind") == "unit":
            walls.append(_unit_wall_s(doc))
    if total is None:
        raise PerfError(
            f"{path}: journal holds no complete header (crash landed "
            f"before the first fsync) — nothing to report"
        )
    rolling = walls[-ROLLING_WINDOW:]
    return ProgressReport(
        path=str(path),
        total=total,
        done=len(walls),
        torn_tail=tail is not None,
        wall_s_total=sum(walls),
        rolling_units=len(rolling),
        rolling_wall_s=sum(rolling),
    )


def find_journals(path: str | Path) -> list[Path]:
    """Resolve a journal file or a checkpoint directory to journals.

    A directory is how the CLI's ``--checkpoint DIR`` lays runs out
    (``journal-000.jsonl``, ``journal-001.jsonl``, ...); report each.
    """
    path = Path(path)
    if path.is_dir():
        journals = sorted(path.glob("*.jsonl"))
        if not journals:
            raise PerfError(f"{path}: no *.jsonl journals in directory")
        return journals
    return [path]


def _format_eta(eta_s: float | None) -> str:
    if eta_s is None:
        return "ETA unknown"
    if eta_s >= 3600:
        return f"ETA {eta_s / 3600:.1f}h"
    if eta_s >= 60:
        return f"ETA {eta_s / 60:.1f}m"
    return f"ETA {eta_s:.1f}s"


def render_progress(report: ProgressReport) -> str:
    """One human-readable progress line per journal."""
    rate = report.throughput_units_per_s
    rate_text = f"{rate:.2f} units/s" if rate is not None else "rate unknown"
    state = "complete" if report.complete else _format_eta(report.eta_s)
    line = (
        f"{report.path}: {report.done}/{report.total} units "
        f"({report.fraction:.1%}), {rate_text} "
        f"(rolling {report.rolling_units}), {state}"
    )
    if report.torn_tail:
        line += " [torn tail discarded — crash artefact]"
    return line
