"""The quick-workload suite: small, seeded hot-path timings.

The full bench suite regenerates whole paper tables and takes minutes;
CI needs a trajectory data point in seconds.  Each quick workload here
drives exactly one hot path the ROADMAP targets for optimisation — the
SRAM/DRAM bulk decay kernels, the glitch campaign loop, the exec
engine's dispatch overhead — on a deliberately small, fixed-seed
configuration, and reports how many units of work it processed.  The
runner times each workload with :func:`repro.obs.timing.wall_clock`
and folds the result into ``source: "quick"`` trajectory entries
(:mod:`repro.perf.bench`), which the regression gate then compares
across ``BENCH_<n>.json`` documents.

Work **counts** are deterministic (same seed ⇒ same units); only the
wall time varies run to run — exactly the split the trajectory schema
encodes as ``rates`` versus entry identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..circuits.dram import DramArray
from ..circuits.engine import forced_engine
from ..circuits.sram import SramArray
from ..errors import PerfError
from ..exec import ShardPlan, WorkUnit, execute, shard_unit
from ..glitch.campaign import CampaignSpec, shard_plan
from ..obs.timing import wall_clock
from ..rng import generator
from ..units import nanoseconds
from .bench import BenchEntry

#: Sizes kept small so the whole suite runs in a few seconds even on a
#: single-CPU container.
_SRAM_BITS = 64 * 1024 * 8  # one 64 KiB macro
_DRAM_BITS = 512 * 1024 * 8  # one 512 KiB module
_RETENTION_STEPS = 8
_EXEC_UNITS = 64

#: The engine-differential macro: small enough that even the per-cell
#: scalar reference engine finishes in about a second.
_PHYSICS_BITS = 16 * 1024 * 8  # one 16 KiB macro
_PHYSICS_CYCLES = 4

#: The glitch quick campaign: 2x1x2 grid around the PIN guard, one
#: repeat, both legs — every outcome class stays reachable.
_GLITCH_SPEC = CampaignSpec(
    offsets_s=(0.0, nanoseconds(350)),
    widths_s=(nanoseconds(40),),
    depths_v=(0.4, 0.55),
    repeats=1,
    random_points=2,
)


@dataclass(frozen=True)
class QuickWorkload:
    """One named quick workload and how to rate it."""

    name: str
    rate_key: str  # which trajectory rate its unit count feeds
    fn: Callable[[int], float]  # seed -> units processed


def _sram_decay(seed: int) -> float:
    """One full power-cycle decay of an SRAM macro (cells processed)."""
    array = SramArray(
        _SRAM_BITS, rng=generator(seed, "perf", "sram"), name="perf.sram"
    )
    array.power_up()
    array.fill_bytes(0xAA)
    array.power_down()
    array.elapse_unpowered(20e-6)
    array.restore_power()
    return float(_SRAM_BITS)


def _sram_retention(seed: int) -> float:
    """A miniature retention sweep: repeated decay/restore cycles."""
    array = SramArray(
        _SRAM_BITS, rng=generator(seed, "perf", "sram-sweep"),
        name="perf.sram-sweep",
    )
    array.power_up()
    for step in range(_RETENTION_STEPS):
        array.power_down()
        array.elapse_unpowered((step + 1) * 5e-6)
        array.restore_power()
    return float(_SRAM_BITS * _RETENTION_STEPS)


def _dram_decay(seed: int) -> float:
    """One unpowered decay interval of a DRAM module (cells processed)."""
    module = DramArray(
        _DRAM_BITS, rng=generator(seed, "perf", "dram"), name="perf.dram"
    )
    module.restore_power()
    module.power_down()
    module.elapse_unpowered(1.0)
    module.restore_power()
    return float(_DRAM_BITS)


def _physics_cells(seed: int, engine: str) -> float:
    """The decay-heavy engine-differential workload on one engine.

    One SRAM macro through ``_PHYSICS_CYCLES`` power-cycle/decay/restore
    rounds plus one DRAM module through a full unpowered decay —
    touching every bulk kernel the cell-physics engine defines.  The
    unit counts are deterministic and identical for both engines (same
    seeds, same RNG-stream contract), so the two entries' wall times
    divide into an honest vector-vs-scalar speedup.
    """
    with forced_engine(engine):
        array = SramArray(
            _PHYSICS_BITS,
            rng=generator(seed, "perf", "physics-sram"),
            name=f"perf.physics-{engine}",
        )
        array.power_up()
        array.fill_bytes(0x5A)
        for step in range(_PHYSICS_CYCLES):
            array.power_down()
            array.elapse_unpowered((step + 1) * 5e-6)
            array.restore_power()
        module = DramArray(
            _PHYSICS_BITS,
            rng=generator(seed, "perf", "physics-dram"),
            name=f"perf.physics-dram-{engine}",
        )
        module.restore_power()
        module.power_down()
        module.elapse_unpowered(1.0)
        module.restore_power()
    return float(_PHYSICS_BITS * _PHYSICS_CYCLES + _PHYSICS_BITS)


def _physics_vector(seed: int) -> float:
    """Engine differential, vectorized numpy leg (cells processed)."""
    return _physics_cells(seed, "vector")


def _physics_scalar(seed: int) -> float:
    """Engine differential, per-cell scalar reference leg."""
    return _physics_cells(seed, "scalar")


def _glitch_campaign(seed: int) -> float:
    """A small glitch parameter search (attempts classified)."""
    results = execute(shard_plan(seed, _GLITCH_SPEC), jobs=1)
    return float(sum(len(attempts) for attempts in results))


@shard_unit
def _exec_spin(token: int) -> int:
    """Module-level work unit (pool pickling requires it)."""
    total = 0
    for i in range(2000):
        total = (total + (token + i) * (token ^ i)) & 0xFFFFFFFF
    return total


def _exec_plan(seed: int) -> ShardPlan:
    """The trivial-unit dispatch plan shared by the exec workloads."""
    return ShardPlan(
        [
            WorkUnit(index=i, fn=_exec_spin, args=(seed + i,),
                     label=f"spin[{i}]")
            for i in range(_EXEC_UNITS)
        ]
    )


def _exec_engine(seed: int) -> float:
    """Engine dispatch overhead over a plan of trivial units."""
    execute(_exec_plan(seed), jobs=1)
    return float(_EXEC_UNITS)


def _chaos_overhead(seed: int) -> float:
    """The supervised dispatch path with a (no-fault) injector installed.

    Exactly the ``quick.exec-engine`` plan, but with an empty
    :class:`~repro.chaos.inject.ChaosInjector` held on the runtime
    hook — so every unit pays the full supervision tax: the
    ``runtime.run_unit`` choke point plus a fault-table scan that
    matches nothing.  Dividing this entry's wall time by the bare
    entry's gives the supervision overhead ratio the robustness
    acceptance gate bounds at 1.05 (see ``docs/robustness.md``).
    """
    from ..chaos.inject import ChaosInjector
    from ..exec import runtime

    injector = ChaosInjector((), state_dir="")
    with runtime.injected(injector):
        execute(_exec_plan(seed), jobs=1)
    return float(_EXEC_UNITS)


def _lint_project(seed: int) -> float:
    """Flow-analysis throughput: summarize + link + check the src tree.

    Cold analysis (no summary cache) so the rate tracks the extractor
    and linker themselves, not disk-cache hits; ``seed`` is unused —
    the linter is deterministic by construction — but the signature
    matches the suite.  Returns files analysed.
    """
    del seed
    from pathlib import Path

    from ..lint.engine import flow_findings, iter_python_files

    package_root = Path(__file__).resolve().parents[1]
    files = iter_python_files([package_root])
    if not files:
        raise PerfError(f"quick.lint-project found no files under {package_root}")
    flow_findings(files)
    return float(len(files))


#: The suite, in trajectory-entry order.
QUICK_WORKLOADS: tuple[QuickWorkload, ...] = (
    QuickWorkload("quick.chaos-overhead", "units_per_s", _chaos_overhead),
    QuickWorkload("quick.dram-decay", "cells_decayed_per_s", _dram_decay),
    QuickWorkload("quick.exec-engine", "units_per_s", _exec_engine),
    QuickWorkload("quick.glitch-campaign", "attempts_per_s", _glitch_campaign),
    QuickWorkload("quick.lint-project", "files_per_s", _lint_project),
    QuickWorkload("quick.physics-scalar", "cells_decayed_per_s",
                  _physics_scalar),
    QuickWorkload("quick.physics-vector", "cells_decayed_per_s",
                  _physics_vector),
    QuickWorkload("quick.sram-decay", "cells_decayed_per_s", _sram_decay),
    QuickWorkload("quick.sram-retention", "cells_decayed_per_s",
                  _sram_retention),
)


def run_quick_suite(seed: int) -> list[BenchEntry]:
    """Time every quick workload; returns ``source: "quick"`` entries.

    The ``quick.physics-vector`` entry additionally carries a
    ``speedup`` block dividing the scalar leg's wall time by its own —
    the honest, same-host, same-work vector-vs-scalar engine ratio the
    acceptance gate reads.  ``quick.chaos-overhead`` likewise carries
    its wall time divided by the bare ``quick.exec-engine`` leg's —
    the supervision-overhead ratio bounded by the robustness gate.
    """
    entries = []
    for workload in QUICK_WORKLOADS:
        start = wall_clock()
        units = workload.fn(seed)
        wall_s = wall_clock() - start
        if units <= 0.0:
            raise PerfError(
                f"quick workload {workload.name} processed no units"
            )
        rates = {workload.rate_key: units / wall_s} if wall_s > 0.0 else {}
        entries.append(
            BenchEntry(
                name=workload.name,
                source="quick",
                wall_s=wall_s,
                rates=rates,
                seed=seed,
            )
        )
    by_name = {entry.name: entry for entry in entries}
    vector = by_name.get("quick.physics-vector")
    scalar = by_name.get("quick.physics-scalar")
    if vector is not None and scalar is not None and vector.wall_s > 0.0:
        vector.speedup = {
            "vs_scalar_engine": scalar.wall_s / vector.wall_s,
            "scalar_wall_s": scalar.wall_s,
        }
    supervised = by_name.get("quick.chaos-overhead")
    bare = by_name.get("quick.exec-engine")
    if supervised is not None and bare is not None and bare.wall_s > 0.0:
        supervised.speedup = {
            "supervised_overhead_ratio": supervised.wall_s / bare.wall_s,
            "bare_wall_s": bare.wall_s,
        }
    return entries
