"""Host metadata for performance artifacts.

A wall-clock number is meaningless without knowing what it ran on: the
honest ~1x serial-vs-parallel speedup a single-CPU container records is
indistinguishable from a real parallelism regression unless the
artifact says *one CPU*.  Every ``BENCH_<n>.json`` trajectory document
and every benchmark manifest sidecar therefore embeds this block, so
trend tooling can refuse to compare apples to multi-core oranges.

Only stable, non-identifying facts are recorded — CPU count, platform
triple, Python version — never hostnames or timestamps (the repo's
determinism culture bans ambient clock reads outside
:mod:`repro.obs.timing`).
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Any

from ..circuits.engine import engine_name


def cpu_count() -> int:
    """Usable CPU count (never less than one)."""
    return os.cpu_count() or 1


def host_metadata(jobs: int | None = None) -> dict[str, Any]:
    """The host block embedded in BENCH documents and bench sidecars.

    ``jobs`` is the effective ``--repro-jobs`` / ``--jobs`` value the
    producing run used, so a reader can tell a deliberately-serial run
    from a host that had no cores to parallelise over.

    ``physics_engine`` records which cell-physics engine produced the
    numbers (``"vector"`` or ``"scalar"``, :mod:`repro.circuits.engine`).
    BENCH documents written before the engine existed lack the key;
    trend tooling treats those as the pre-vectorized implementation and
    refuses to gate across the boundary (both engines are bit-identical
    in results, but not in speed).
    """
    meta: dict[str, Any] = {
        "cpu_count": cpu_count(),
        "platform": platform.system().lower() or "unknown",
        "machine": platform.machine() or "unknown",
        "python": "{}.{}.{}".format(*sys.version_info[:3]),
        "physics_engine": engine_name(),
    }
    if jobs is not None:
        meta["jobs"] = int(jobs)
    return meta
