"""Regression comparator and trend reports over BENCH trajectories.

The gate every performance PR runs against: compare the freshly
measured ``BENCH`` document to a baseline, flag every benchmark whose
wall time grew by more than the threshold (default 20 %), and render
the verdict both as a markdown table (for humans and PR comments) and
as JSON (for tooling).  Benchmarks present in only one document are
reported but never gate — adding a benchmark must not fail CI, and a
quick-mode CI run is allowed to cover only the quick suite.

The trend report walks the full committed ``BENCH_<n>.json`` sequence
and tabulates each benchmark's wall time across PRs — the repo-level
answer to "is this getting faster?".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import PerfError
from ..units import milliseconds
from .bench import bench_paths, load_bench

#: A benchmark is a regression when ``new > old * (1 + threshold)``.
DEFAULT_THRESHOLD = 0.20

#: Wall times below this are dispatch noise, not signal; such entries
#: never gate (a 25 % swing on half a millisecond is scheduler jitter).
MIN_GATED_WALL_S = milliseconds(1)


#: The engine label reported for BENCH documents that predate the
#: cell-physics engine (no ``host.physics_engine`` key).
PRE_ENGINE_LABEL = "pre-vectorized"


def document_engine(doc: dict[str, Any]) -> str:
    """The physics engine a trajectory document was produced with.

    Documents written before the cell-physics engine existed carry no
    ``host.physics_engine`` key; they report :data:`PRE_ENGINE_LABEL`.
    """
    return str(doc.get("host", {}).get("physics_engine", PRE_ENGINE_LABEL))


@dataclass(frozen=True)
class ComparisonRow:
    """One benchmark's old-vs-new verdict.

    ``status`` is one of ``"ok"``, ``"regression"``, ``"improved"``,
    ``"added"``, ``"missing"``, or ``"cross-engine"`` — the last marks
    a would-be regression between documents produced by *different*
    physics engines, which is an engine-speed delta, not a code
    regression, and never gates.
    """

    name: str
    status: str
    old_wall_s: float | None = None
    new_wall_s: float | None = None

    @property
    def ratio(self) -> float | None:
        """``new / old`` wall-time ratio where both sides exist."""
        if not self.old_wall_s or self.new_wall_s is None:
            return None
        return self.new_wall_s / self.old_wall_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "old_wall_s": self.old_wall_s,
            "new_wall_s": self.new_wall_s,
            "ratio": self.ratio,
        }


@dataclass
class Comparison:
    """The full old-vs-new verdict of two trajectory documents."""

    rows: list[ComparisonRow]
    threshold: float
    notes: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[ComparisonRow]:
        """Rows that breach the gate."""
        return [row for row in self.rows if row.status == "regression"]

    @property
    def passed(self) -> bool:
        """Whether the gate passes (no regression rows)."""
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "threshold": self.threshold,
            "passed": self.passed,
            "regressions": len(self.regressions),
            "notes": list(self.notes),
            "rows": [row.to_dict() for row in self.rows],
        }


def _entries_by_name(doc: dict[str, Any]) -> dict[str, dict[str, Any]]:
    return {entry["name"]: entry for entry in doc.get("benchmarks", [])}


def compare(
    old: dict[str, Any],
    new: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> Comparison:
    """Compare two trajectory documents benchmark by benchmark.

    Only benchmarks present in *both* documents can regress; the rest
    land as informational ``added``/``missing`` rows.  A host mismatch
    (different CPU count) is noted — wall-clock comparisons across
    different hardware are advisory at best.  When the two documents
    were produced by different physics engines (or the baseline
    predates the engine), would-be regressions demote to non-gating
    ``cross-engine`` rows: the delta measures the engines, not the PR.
    """
    if threshold <= 0.0:
        raise PerfError(f"regression threshold must be positive, got {threshold}")
    old_entries = _entries_by_name(old)
    new_entries = _entries_by_name(new)
    notes = []
    old_cpus = old.get("host", {}).get("cpu_count")
    new_cpus = new.get("host", {}).get("cpu_count")
    if old_cpus != new_cpus:
        notes.append(
            f"host mismatch: baseline ran on {old_cpus} CPU(s), "
            f"this run on {new_cpus} — wall-time deltas are advisory"
        )
    old_engine = document_engine(old)
    new_engine = document_engine(new)
    cross_engine = old_engine != new_engine
    if cross_engine:
        notes.append(
            f"engine mismatch: baseline used the {old_engine!r} physics "
            f"engine, this run {new_engine!r} — slowdowns are reported "
            f"as cross-engine, not regressions"
        )
    rows = []
    for name in sorted(set(old_entries) | set(new_entries)):
        if name not in new_entries:
            rows.append(ComparisonRow(
                name=name, status="missing",
                old_wall_s=float(old_entries[name]["wall_s"]),
            ))
            continue
        if name not in old_entries:
            rows.append(ComparisonRow(
                name=name, status="added",
                new_wall_s=float(new_entries[name]["wall_s"]),
            ))
            continue
        old_wall = float(old_entries[name]["wall_s"])
        new_wall = float(new_entries[name]["wall_s"])
        if (
            old_wall >= MIN_GATED_WALL_S
            and new_wall > old_wall * (1.0 + threshold)
        ):
            status = "cross-engine" if cross_engine else "regression"
        elif old_wall > 0.0 and new_wall < old_wall * (1.0 - threshold):
            status = "improved"
        else:
            status = "ok"
        rows.append(ComparisonRow(
            name=name, status=status,
            old_wall_s=old_wall, new_wall_s=new_wall,
        ))
    return Comparison(rows=rows, threshold=threshold, notes=notes)


def render_comparison(comparison: Comparison) -> str:
    """The comparator's verdict as a markdown table."""
    lines = [
        "| benchmark | old wall (s) | new wall (s) | ratio | status |",
        "|---|---:|---:|---:|---|",
    ]
    for row in comparison.rows:
        old_wall = "-" if row.old_wall_s is None else f"{row.old_wall_s:.4f}"
        new_wall = "-" if row.new_wall_s is None else f"{row.new_wall_s:.4f}"
        ratio = "-" if row.ratio is None else f"{row.ratio:.2f}x"
        status = row.status.upper() if row.status == "regression" else row.status
        lines.append(
            f"| {row.name} | {old_wall} | {new_wall} | {ratio} | {status} |"
        )
    for note in comparison.notes:
        lines.append(f"\n> note: {note}")
    verdict = (
        "gate PASSED"
        if comparison.passed
        else f"gate FAILED: {len(comparison.regressions)} benchmark(s) "
        f"slower by more than {comparison.threshold:.0%}"
    )
    lines.append(f"\n{verdict} (threshold {comparison.threshold:.0%})")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trend report over the committed BENCH_<n>.json sequence
# ----------------------------------------------------------------------


@dataclass
class TrendReport:
    """Wall-time trajectory of every benchmark across BENCH documents.

    ``engines`` maps each sequence number to the physics engine that
    produced its document (:data:`PRE_ENGINE_LABEL` for documents
    predating the engine), so readers can tell an engine switch from a
    real speed change.
    """

    sequences: list[int]
    series: dict[str, dict[int, float]]  # name -> {sequence: wall_s}
    engines: dict[int, str] = field(default_factory=dict)

    def engine_boundaries(self) -> list[tuple[int, str, str]]:
        """Sequence pairs where the producing engine changed.

        Returns ``(sequence, previous_engine, engine)`` for every
        document whose engine differs from its predecessor's — the
        columns across which wall-time deltas measure the engine, not
        the code.
        """
        boundaries = []
        for prev_seq, seq in zip(self.sequences, self.sequences[1:]):
            prev_engine = self.engines.get(prev_seq, PRE_ENGINE_LABEL)
            engine = self.engines.get(seq, PRE_ENGINE_LABEL)
            if engine != prev_engine:
                boundaries.append((seq, prev_engine, engine))
        return boundaries

    def to_dict(self) -> dict[str, Any]:
        return {
            "sequences": list(self.sequences),
            "engines": {
                str(seq): self.engines.get(seq, PRE_ENGINE_LABEL)
                for seq in self.sequences
            },
            "series": {
                name: {str(seq): wall for seq, wall in sorted(points.items())}
                for name, points in sorted(self.series.items())
            },
        }


def trend(root: str | Path) -> TrendReport:
    """Build the trend over every ``BENCH_<n>.json`` at ``root``."""
    paths = bench_paths(root)
    if not paths:
        raise PerfError(f"no BENCH_<n>.json trajectory documents at {root}")
    sequences = []
    series: dict[str, dict[int, float]] = {}
    engines: dict[int, str] = {}
    for sequence, path in paths:
        doc = load_bench(path)
        sequences.append(sequence)
        engines[sequence] = document_engine(doc)
        for entry in doc.get("benchmarks", []):
            series.setdefault(entry["name"], {})[sequence] = float(
                entry["wall_s"]
            )
    return TrendReport(sequences=sequences, series=series, engines=engines)


def render_trend(report: TrendReport) -> str:
    """The trend report as a markdown table (one column per sequence).

    An ``engine`` row under the header names the physics engine behind
    each column, and a note calls out every engine boundary — columns
    across which a wall-time delta is an engine comparison, not a
    regression or an optimisation.
    """
    header = "| benchmark | " + " | ".join(
        f"BENCH_{seq}" for seq in report.sequences
    ) + " |"
    rule = "|---|" + "---:|" * len(report.sequences)
    engine_row = "| engine | " + " | ".join(
        report.engines.get(seq, PRE_ENGINE_LABEL) for seq in report.sequences
    ) + " |"
    lines = [header, rule, engine_row]
    for name in sorted(report.series):
        points = report.series[name]
        cells = [
            f"{points[seq]:.4f}" if seq in points else "-"
            for seq in report.sequences
        ]
        lines.append(f"| {name} | " + " | ".join(cells) + " |")
    for seq, prev_engine, engine in report.engine_boundaries():
        lines.append(
            f"\n> note: BENCH_{seq} switched physics engine "
            f"({prev_engine} -> {engine}); deltas across this column "
            f"compare engines, not code changes"
        )
    return "\n".join(lines)
