"""The ``BENCH_<n>.json`` performance-trajectory aggregator.

One trajectory document per PR, at the repo root, schema-versioned —
the measurement backbone every performance PR is judged against.  Each
document aggregates one entry per benchmark with the numbers that make
a speed claim checkable:

* ``wall_s`` — the canonical serial wall time;
* ``rates`` — derived throughputs (cells-decayed/s, glitch attempts/s,
  exec work-units/s) so a "10x faster" claim can be read off directly;
* ``speedup`` — the measured serial-vs-parallel leg, when the producing
  run had one;
* ``host`` (document level) — CPU count, platform, effective jobs, so
  numbers are interpretable across machines.

Entries come from two sources: the committed
``benchmarks/results/*.json`` manifest sidecars (``source:
"sidecar"``, one per paper table/figure bench) and the in-process
quick-workload suite (``source: "quick"``,
:mod:`repro.perf.workloads`) that CI re-times on every run.  The
regression comparator (:mod:`repro.perf.compare`) matches entries by
name across documents and gates on slowdowns.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import PerfError
from ..obs import validate_manifest, write_json
from .host import host_metadata

#: Version of the BENCH trajectory document schema.  Bump on any
#: backwards-incompatible change to the document or entry shape.
BENCH_SCHEMA_VERSION = 1

#: The ``kind`` field of every trajectory document.
BENCH_KIND = "bench-trajectory"

#: Trajectory file name pattern at the repo root.
BENCH_FILE_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: Fields every trajectory document must carry.
BENCH_REQUIRED_FIELDS = (
    "schema_version",
    "kind",
    "sequence",
    "mode",
    "host",
    "benchmarks",
)

#: Fields every benchmark entry must carry.
ENTRY_REQUIRED_FIELDS = ("name", "source", "wall_s", "rates")

#: Metric base names whose counters roll up into each derived rate.
_RATE_SOURCES = {
    "cells_decayed_per_s": ("sram.cells_decayed", "dram.cells_decayed"),
    "attempts_per_s": ("glitch.attempts",),
    "units_per_s": ("exec.units",),
}


@dataclass
class BenchEntry:
    """One benchmark's row in a trajectory document."""

    name: str
    source: str  # "sidecar" or "quick"
    wall_s: float
    rates: dict[str, float] = field(default_factory=dict)
    speedup: dict[str, float] | None = None
    device: str | None = None
    seed: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """Entry as a schema-conformant plain dict."""
        doc: dict[str, Any] = {
            "name": self.name,
            "source": self.source,
            "wall_s": self.wall_s,
            "rates": dict(self.rates),
        }
        if self.speedup is not None:
            doc["speedup"] = dict(self.speedup)
        if self.device is not None:
            doc["device"] = self.device
        if self.seed is not None:
            doc["seed"] = self.seed
        return doc


def _metric_base(rendered: str) -> str:
    """Strip the label block from a rendered metric key.

    Sidecar metrics are flattened ``name{label=value,...}`` strings
    (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`); rates pool
    across labels, so only the base name matters here.
    """
    return rendered.split("{", 1)[0]


def _metric_total(metrics: dict[str, Any], base: str) -> float:
    """Sum a counter/gauge across every label combination."""
    total = 0.0
    for key, value in metrics.items():
        if _metric_base(key) == base and isinstance(value, (int, float)):
            total += value
    return total


def rates_from_metrics(
    metrics: dict[str, Any], wall_s: float
) -> dict[str, float]:
    """Derive the per-second throughput rates from a metric snapshot."""
    if wall_s <= 0.0:
        return {}
    rates: dict[str, float] = {}
    for rate_name, bases in _RATE_SOURCES.items():
        units = sum(_metric_total(metrics, base) for base in bases)
        if units > 0.0:
            rates[rate_name] = units / wall_s
    return rates


def _sidecar_wall_s(doc: dict[str, Any]) -> float:
    """The canonical serial wall time of one sidecar.

    ``run_scaled`` benches record the serial leg explicitly as
    ``bench.exec.serial_wall_s``; for the rest the manifest's phase
    timings are the only wall-clock record.
    """
    metrics = doc.get("metrics", {})
    serial = metrics.get("bench.exec.serial_wall_s")
    if isinstance(serial, (int, float)) and serial > 0.0:
        return float(serial)
    return float(
        sum(
            phase.get("wall_s", 0.0)
            for phase in doc.get("phases", [])
            if isinstance(phase, dict)
        )
    )


def _sidecar_speedup(doc: dict[str, Any]) -> dict[str, float] | None:
    """The serial-vs-parallel block of a ``run_scaled`` sidecar, if any."""
    metrics = doc.get("metrics", {})
    block: dict[str, float] = {}
    for key, short in (
        ("bench.exec.jobs", "jobs"),
        ("bench.exec.serial_wall_s", "serial_wall_s"),
        ("bench.exec.parallel_wall_s", "parallel_wall_s"),
        ("bench.exec.speedup", "speedup"),
    ):
        value = metrics.get(key)
        if isinstance(value, (int, float)):
            block[short] = float(value)
    return block or None


def entry_from_sidecar(path: str | Path) -> BenchEntry:
    """Build one trajectory entry from a benchmark manifest sidecar.

    The sidecar is schema-validated first, so a malformed results file
    fails the aggregation loudly rather than producing a silent zero.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise PerfError(f"{path}: unreadable sidecar: {error}") from error
    if not isinstance(doc, dict):
        raise PerfError(f"{path}: sidecar is not a JSON object")
    try:
        validate_manifest(doc)
    except ValueError as error:
        raise PerfError(f"{path}: invalid manifest sidecar: {error}") from error
    wall_s = _sidecar_wall_s(doc)
    seed = doc.get("seed")
    return BenchEntry(
        name=path.stem,
        source="sidecar",
        wall_s=wall_s,
        rates=rates_from_metrics(doc.get("metrics", {}), wall_s),
        speedup=_sidecar_speedup(doc),
        device=doc.get("device"),
        seed=seed if isinstance(seed, int) else None,
    )


def collect_sidecars(results_dir: str | Path) -> list[BenchEntry]:
    """Ingest every ``*.json`` sidecar under ``results_dir``, sorted."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise PerfError(f"no benchmark results directory at {results_dir}")
    return [
        entry_from_sidecar(path)
        for path in sorted(results_dir.glob("*.json"))
    ]


# ----------------------------------------------------------------------
# Trajectory documents
# ----------------------------------------------------------------------


def build_trajectory(
    entries: list[BenchEntry],
    sequence: int,
    mode: str,
    jobs: int | None = None,
) -> dict[str, Any]:
    """Assemble a schema-versioned trajectory document."""
    if sequence < 1:
        raise PerfError(f"trajectory sequence must be >= 1, got {sequence}")
    if mode not in ("full", "quick"):
        raise PerfError(f"trajectory mode must be 'full' or 'quick', got {mode!r}")
    doc = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": BENCH_KIND,
        "sequence": int(sequence),
        "mode": mode,
        "host": host_metadata(jobs=jobs),
        "benchmarks": [entry.to_dict() for entry in sorted(
            entries, key=lambda e: e.name
        )],
    }
    return validate_bench(doc)


def validate_bench(doc: dict[str, Any]) -> dict[str, Any]:
    """Check a trajectory document against the schema; returns it.

    Raises :class:`~repro.errors.PerfError` naming every violated
    constraint, mirroring :func:`repro.obs.validate_manifest`.
    """
    problems: list[str] = []
    for required in BENCH_REQUIRED_FIELDS:
        if required not in doc:
            problems.append(f"missing required field {required!r}")
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version {doc.get('schema_version')!r} != "
            f"{BENCH_SCHEMA_VERSION}"
        )
    if "kind" in doc and doc["kind"] != BENCH_KIND:
        problems.append(f"kind {doc['kind']!r} != {BENCH_KIND!r}")
    if "host" in doc and not isinstance(doc["host"], dict):
        problems.append("host must be an object")
    entries = doc.get("benchmarks", [])
    if not isinstance(entries, list):
        problems.append("benchmarks must be a list")
        entries = []
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            problems.append(f"benchmarks[{i}] must be an object")
            continue
        for required in ENTRY_REQUIRED_FIELDS:
            if required not in entry:
                problems.append(
                    f"benchmarks[{i}] missing required field {required!r}"
                )
        if entry.get("source") not in ("sidecar", "quick"):
            problems.append(
                f"benchmarks[{i}] source {entry.get('source')!r} not in "
                f"('sidecar', 'quick')"
            )
    if problems:
        raise PerfError("; ".join(problems))
    return doc


def bench_paths(root: str | Path) -> list[tuple[int, Path]]:
    """Every ``BENCH_<n>.json`` at ``root``, ordered by sequence."""
    found = []
    for path in sorted(Path(root).glob("BENCH_*.json")):
        match = BENCH_FILE_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def next_sequence(root: str | Path) -> int:
    """The sequence number the next trajectory document should take."""
    existing = bench_paths(root)
    return existing[-1][0] + 1 if existing else 1


def latest_bench(root: str | Path) -> tuple[int, Path] | None:
    """The highest-numbered committed trajectory, if any."""
    existing = bench_paths(root)
    return existing[-1] if existing else None


def load_bench(path: str | Path) -> dict[str, Any]:
    """Read and validate one trajectory document."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise PerfError(f"{path}: unreadable BENCH document: {error}") from error
    if not isinstance(doc, dict):
        raise PerfError(f"{path}: BENCH document is not a JSON object")
    try:
        return validate_bench(doc)
    except PerfError as error:
        raise PerfError(f"{path}: {error}") from error


def write_bench(path: str | Path, doc: dict[str, Any]) -> Path:
    """Validate and persist a trajectory document."""
    return write_json(Path(path), validate_bench(doc))
