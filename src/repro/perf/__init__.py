"""Performance-trajectory subsystem: bench aggregation, regression
gating, and live campaign progress.

The observability layer (:mod:`repro.obs`) makes a single run
explainable; this package makes the *sequence* of runs explainable.
Every PR appends one schema-versioned ``BENCH_<n>.json`` trajectory
document at the repo root, the regression comparator gates CI on >20 %
slowdowns against the committed baseline, and ``repro progress`` turns
an exec checkpoint journal into shards-done/throughput/ETA — so a
performance claim in a PR description is a checkable artifact, not an
anecdote.

Layout:

* :mod:`repro.perf.host` — the host metadata block (CPU count,
  platform, effective jobs) every trajectory document embeds;
* :mod:`repro.perf.bench` — the ``BENCH_<n>.json`` schema, sidecar
  ingestion, and trajectory document assembly/validation/IO;
* :mod:`repro.perf.workloads` — the seeded quick-workload suite CI
  re-times on every run;
* :mod:`repro.perf.compare` — the regression gate and the trend report
  over the committed trajectory sequence;
* :mod:`repro.perf.progress` — checkpoint-journal tailing for live
  (or crashed) campaigns.
"""

from __future__ import annotations

from ..errors import PerfError
from .bench import (
    BENCH_KIND,
    BENCH_SCHEMA_VERSION,
    BenchEntry,
    bench_paths,
    build_trajectory,
    collect_sidecars,
    entry_from_sidecar,
    latest_bench,
    load_bench,
    next_sequence,
    rates_from_metrics,
    validate_bench,
    write_bench,
)
from .compare import (
    DEFAULT_THRESHOLD,
    PRE_ENGINE_LABEL,
    Comparison,
    ComparisonRow,
    TrendReport,
    compare,
    document_engine,
    render_comparison,
    render_trend,
    trend,
)
from .host import cpu_count, host_metadata
from .progress import (
    ProgressReport,
    find_journals,
    read_progress,
    render_progress,
)
from .workloads import QUICK_WORKLOADS, run_quick_suite

__all__ = [
    "BENCH_KIND",
    "BENCH_SCHEMA_VERSION",
    "BenchEntry",
    "Comparison",
    "ComparisonRow",
    "DEFAULT_THRESHOLD",
    "PRE_ENGINE_LABEL",
    "PerfError",
    "ProgressReport",
    "QUICK_WORKLOADS",
    "TrendReport",
    "bench_paths",
    "build_trajectory",
    "collect_sidecars",
    "compare",
    "cpu_count",
    "document_engine",
    "entry_from_sidecar",
    "find_journals",
    "host_metadata",
    "latest_bench",
    "load_bench",
    "next_sequence",
    "rates_from_metrics",
    "read_progress",
    "render_comparison",
    "render_progress",
    "render_trend",
    "run_quick_suite",
    "trend",
    "validate_bench",
    "write_bench",
]
