"""The resilient attack driver: bounded retries over a flaky bench.

Wraps the §6.1 Volt Boot pipeline for the bench the paper actually ran
on: supplies that miss their set-point, probes whose contact resistance
changes per landing, and debug reads that flip bits.  Each **attempt**
lands the probe on a *fresh* victim board (a failed power cycle destroys
the retained secret — the paper's answer is simply another trial),
applies the :class:`~repro.resilience.rig.RigNoiseProfile`'s realised
imperfections, and — when the domain rides the surge — dumps the target
memory ``reads_per_extraction`` times for per-bit majority voting.

Failure handling follows :class:`~repro.resilience.retry.RetryPolicy`:
bounded exponential backoff (simulated bench-settle time, never a wall
clock), and an adaptive re-search that raises the probe set-point after
a surge-lossy attempt.  The driver **never raises** for rig flakiness —
when every attempt fails it degrades gracefully to a partial
:class:`RecoveryReport` carrying the best-effort image and its per-bit
confidence map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.extraction import attacker_context, extract_iram, extract_l1_images
from ..core.probe import plan_probe
from ..core.voltboot import DEFAULT_OFF_TIME_S, VoltBootAttack
from ..errors import ReproError, ResilienceError
from ..obs import OBS
from ..soc.board import Board
from ..soc.bootrom import BootMedia
from ..soc.jtag import JtagProbe
from .retry import RetryPolicy
from .rig import IDEAL_RIG, RigNoiseProfile, RigStreams
from .vote import VoteResult, majority_vote

#: Targets the driver knows how to multi-read.  ``registers`` is not
#: here: the vector-file read path has no modelled noise source, so the
#: plain :class:`~repro.core.voltboot.VoltBootAttack` already suffices.
SUPPORTED_TARGETS = ("l1-caches", "iram")


@dataclass
class AttemptRecord:
    """What one bounded attempt did and how it ended."""

    index: int
    setpoint_v: float
    setpoint_boost_v: float
    contact_resistance_ohm: float
    backoff_before_s: float
    reads: int = 0
    cells_lost_in_surge: int = 0
    confident_fraction: float = 0.0
    accepted: bool = False
    failure: str | None = None


@dataclass
class RecoveryReport:
    """The driver's graceful-degradation output.

    Always returned — ``degraded`` distinguishes a run where some
    attempt met the policy's acceptance bar from a best-effort partial
    result after exhausting ``max_attempts``.  ``image`` is ``None``
    only when *no* attempt produced a single readable dump.
    """

    target: str
    policy: RetryPolicy
    rig_name: str
    image: bytes | None = None
    vote: VoteResult | None = None
    degraded: bool = True
    attempts: list[AttemptRecord] = field(default_factory=list)
    total_backoff_s: float = 0.0

    @property
    def succeeded(self) -> bool:
        """Whether some attempt met the policy's acceptance bar."""
        return not self.degraded and self.image is not None

    @property
    def confidence(self) -> np.ndarray | None:
        """Per-bit agreement map of the reported image (if any)."""
        return self.vote.confidence if self.vote is not None else None

    @property
    def confident_fraction(self) -> float:
        """Fraction of bits at or above the policy's confidence bar."""
        if self.vote is None:
            return 0.0
        return self.vote.confident_fraction(self.policy.confidence_threshold)

    @property
    def mean_confidence(self) -> float:
        """Mean per-bit agreement of the reported image (0.0 if none)."""
        return self.vote.mean_confidence if self.vote is not None else 0.0

    def headline(self) -> dict[str, object]:
        """Manifest-ready summary of the recovery."""
        return {
            "succeeded": self.succeeded,
            "degraded": self.degraded,
            "attempts": len(self.attempts),
            "confident_fraction": round(self.confident_fraction, 6),
            "mean_confidence": round(self.mean_confidence, 6),
            "total_backoff_s": self.total_backoff_s,
            "rig": self.rig_name,
        }


class ResilientVoltBoot:
    """Retry/vote/degrade wrapper around the Volt Boot pipeline.

    ``board_factory`` must return a **fresh, prepared victim** each call
    (booted, secret planted): the driver consumes one board per attempt,
    mirroring the repeated physical trials of the paper's bench work.
    ``rng`` is the driver's root stream; per-attempt noise streams are
    spawned from it in a fixed order, so a recovery is byte-reproducible
    and independent of how earlier attempts ended.
    """

    def __init__(
        self,
        board_factory: Callable[[], Board],
        target: str = "l1-caches",
        policy: RetryPolicy | None = None,
        rig: RigNoiseProfile = IDEAL_RIG,
        rng: np.random.Generator | None = None,
        boot_media: BootMedia | None = None,
        off_time_s: float = DEFAULT_OFF_TIME_S,
    ) -> None:
        if target not in SUPPORTED_TARGETS:
            raise ResilienceError(
                f"resilient driver has no multi-read path for "
                f"{target!r}; supported: {', '.join(SUPPORTED_TARGETS)}"
            )
        if not rig.is_ideal and rng is None:
            raise ResilienceError(
                f"rig profile {rig.name!r} is noisy; pass a seeded rng "
                f"(see repro.rng.generator)"
            )
        self.board_factory = board_factory
        self.target = target
        self.policy = policy or RetryPolicy()
        self.rig = rig
        self.rng = rng
        self.boot_media = boot_media
        self.off_time_s = off_time_s

    # ------------------------------------------------------------------
    # One attempt
    # ------------------------------------------------------------------

    def _read_target(
        self, board: Board, streams: RigStreams | None
    ) -> list[bytes]:
        """Dump the target ``reads_per_extraction`` times.

        Reads are non-destructive (the extraction stubs never enable
        the caches and JTAG reads don't disturb the array), so each
        repeat sees the same retained image under fresh read noise.
        """
        reads: list[bytes] = []
        if self.target == "l1-caches":
            noise = (
                self.rig.cp15_noise(streams) if streams is not None else None
            )
            for core in board.soc.cores:
                core.cp15.set_read_noise(noise)
            ctx = attacker_context(board)
            skip_secure = board.soc.config.trustzone_enforced
            for _ in range(self.policy.reads_per_extraction):
                images = extract_l1_images(
                    board, ctx, skip_secure=skip_secure
                )
                reads.append(images.everything())
        else:  # iram
            noise = (
                self.rig.jtag_noise(streams) if streams is not None else None
            )
            probe = JtagProbe(
                board.soc.memory_map,
                enabled=board.soc.config.jtag_enabled,
                read_noise=noise,
            )
            for _ in range(self.policy.reads_per_extraction):
                reads.append(extract_iram(board, probe))
        return reads

    def _attempt(
        self, record: AttemptRecord
    ) -> tuple[VoteResult | None, int]:
        """Run one full trial on a fresh board; returns (vote, lost)."""
        streams = None
        if self.rng is not None:
            # Spawned unconditionally (fixed count per attempt) so the
            # stream layout never depends on how prior attempts ended.
            streams = self.rig.streams(self.rng)
        board = self.board_factory()
        plan = plan_probe(board, self.target)
        nominal_v = plan.set_voltage_v + record.setpoint_boost_v
        realised_v = nominal_v
        contact_ohm = 0.0
        if streams is not None:
            realised_v = self.rig.supply.sample_setpoint_v(
                nominal_v, streams.supply, hold_s=self.off_time_s
            )
            contact_ohm = self.rig.contact.sample_resistance_ohm(
                streams.contact
            )
        record.setpoint_v = realised_v
        record.contact_resistance_ohm = contact_ohm
        if OBS.enabled:
            OBS.gauge_set("rig.setpoint_error_v", realised_v - nominal_v)
            OBS.gauge_set("rig.contact_resistance_ohm", contact_ohm)
        attack = VoltBootAttack(
            board,
            target=self.target,
            supply=plan.recommended_supply(
                set_voltage_v=realised_v,
                contact_resistance_ohm=contact_ohm,
            ),
            boot_media=self.boot_media,
            off_time_s=self.off_time_s,
        )
        attack.plan = plan
        try:
            attack.attach()
            lost = attack.power_cycle()
            attack.reboot()
            reads = self._read_target(board, streams)
        finally:
            attack.cleanup()
        record.reads = len(reads)
        if OBS.enabled:
            OBS.counter_inc("resilience.reads", len(reads))
        return majority_vote(reads), lost

    # ------------------------------------------------------------------
    # The bounded-retry loop
    # ------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Run up to ``max_attempts`` trials; always return a report."""
        policy = self.policy
        report = RecoveryReport(
            target=self.target, policy=policy, rig_name=self.rig.name
        )
        best_vote: VoteResult | None = None
        best_key = (-1, -1.0)  # (surge_clean, confident_fraction)
        failures = 0
        lossy_failures = 0
        with OBS.span(
            "resilience.recover",
            target=self.target,
            rig=self.rig.name,
            max_attempts=policy.max_attempts,
            reads_per_extraction=policy.reads_per_extraction,
        ) as span:
            for index in range(1, policy.max_attempts + 1):
                backoff = 0.0
                if failures:
                    backoff = policy.backoff_s(failures)
                    report.total_backoff_s += backoff
                    if OBS.enabled:
                        OBS.histogram_record("resilience.backoff_s", backoff)
                        OBS.event(
                            "resilience.retry",
                            attempt=index,
                            backoff_s=backoff,
                        )
                        OBS.counter_inc("resilience.retries")
                boost = policy.setpoint_boost_v(lossy_failures)
                record = AttemptRecord(
                    index=index,
                    setpoint_v=0.0,
                    setpoint_boost_v=boost,
                    contact_resistance_ohm=0.0,
                    backoff_before_s=backoff,
                )
                report.attempts.append(record)
                if OBS.enabled:
                    OBS.counter_inc("resilience.attempts")
                    OBS.gauge_set("resilience.setpoint_boost_v", boost)
                with OBS.span(
                    "resilience.attempt", attempt=index, boost_v=boost
                ) as attempt_span:
                    try:
                        vote, lost = self._attempt(record)
                    except ResilienceError:
                        raise  # driver misuse, not rig flakiness
                    except ReproError as exc:
                        record.failure = f"{type(exc).__name__}: {exc}"
                        attempt_span.set_attribute("failure", record.failure)
                        failures += 1
                        continue
                    record.cells_lost_in_surge = lost
                    record.confident_fraction = vote.confident_fraction(
                        policy.confidence_threshold
                    )
                    surge_clean = lost == 0
                    key = (int(surge_clean), record.confident_fraction)
                    if key > best_key:
                        best_key = key
                        best_vote = vote
                    attempt_span.set_attributes(
                        cells_lost_in_surge=lost,
                        confident_fraction=record.confident_fraction,
                    )
                    if (
                        surge_clean
                        and record.confident_fraction
                        >= policy.min_confident_fraction
                    ):
                        record.accepted = True
                        report.degraded = False
                        break
                    record.failure = (
                        f"surge lost {lost} cell(s)"
                        if not surge_clean
                        else "vote confidence below policy bar"
                    )
                    failures += 1
                    if not surge_clean:
                        lossy_failures += 1
            if best_vote is not None:
                report.vote = best_vote
                report.image = best_vote.decoded
            if OBS.enabled:
                OBS.gauge_set(
                    "resilience.confident_fraction",
                    report.confident_fraction,
                )
                OBS.gauge_set(
                    "resilience.mean_confidence", report.mean_confidence
                )
                if report.degraded:
                    OBS.counter_inc("resilience.degraded")
                    OBS.event(
                        "resilience.degraded",
                        target=self.target,
                        attempts=len(report.attempts),
                        confident_fraction=report.confident_fraction,
                    )
            span.set_attributes(
                succeeded=report.succeeded,
                degraded=report.degraded,
                attempts=len(report.attempts),
                confident_fraction=report.confident_fraction,
            )
        return report
