"""Flaky-rig hardening: noise profiles, retry policies, voting, driver.

The simulator's physics was, until this package, executed on a perfect
bench.  ``repro.resilience`` models the *imperfect* bench the paper's
attack actually ran on and provides the machinery to succeed on it
anyway:

* :mod:`~repro.resilience.rig` — seeded noise profiles covering supply
  set-point error/drift, probe contact-resistance jitter, and per-bit
  JTAG/CP15 read errors;
* :mod:`~repro.resilience.retry` — bounded-backoff retry policies with
  adaptive set-point re-search;
* :mod:`~repro.resilience.vote` — per-bit majority voting with a
  confidence map;
* :mod:`~repro.resilience.driver` — the resilient attack driver that
  retries, votes, and degrades gracefully to a partial report.
"""

from .driver import (
    SUPPORTED_TARGETS,
    AttemptRecord,
    RecoveryReport,
    ResilientVoltBoot,
)
from .retry import RetryPolicy
from .rig import DEFAULT_NOISY_RIG, IDEAL_RIG, RigNoiseProfile, RigStreams
from .vote import VoteResult, majority_vote

__all__ = [
    "AttemptRecord",
    "DEFAULT_NOISY_RIG",
    "IDEAL_RIG",
    "RecoveryReport",
    "ResilientVoltBoot",
    "RetryPolicy",
    "RigNoiseProfile",
    "RigStreams",
    "SUPPORTED_TARGETS",
    "VoteResult",
    "majority_vote",
]
