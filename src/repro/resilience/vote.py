"""Per-bit majority voting over repeated noisy extractions.

The debug reads of an imperfect rig flip bits independently per read
(:mod:`repro.soc.readnoise`), so ``k`` repeated dumps of the *same*
retained image disagree only where a read erred.  Per-bit majority
voting then recovers the image wherever fewer than ``ceil(k/2)`` of the
reads were wrong at that bit, and the vote margin doubles as a per-bit
confidence map.

Two properties the tests pin down (and that make the resilient driver's
"vote of k reads is never worse than one read" claim precise):

* **Bounded-corruption exactness** — if every bit is wrong in fewer
  than ``ceil(k/2)`` of the reads, the vote equals the true image
  exactly, whereas a single read is wrong wherever it erred.
* **Error amortisation** — the voted image's Hamming distance to the
  truth is at most ``total_read_errors / ceil(k/2)``: each voted-wrong
  bit needs at least ``ceil(k/2)`` read errors to flip it.

Ties (possible only for even ``k``) decode as the bit value ``0`` and
carry confidence ``0.5`` — which is why policies default to odd widths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..circuits.engine import active_engine
from ..errors import ResilienceError


@dataclass
class VoteResult:
    """The decoded image plus its per-bit vote margins."""

    #: Majority-decoded bytes (same length as every input read).
    decoded: bytes
    #: Per-bit agreement fraction in ``[0.5, 1.0]``, little-endian bit
    #: order within each byte (``np.unpackbits(..., bitorder="little")``).
    confidence: np.ndarray
    #: How many reads were voted.
    reads: int

    @property
    def mean_confidence(self) -> float:
        """Average per-bit agreement (1.0 when every read agreed)."""
        if self.confidence.size == 0:
            return 1.0
        return float(self.confidence.mean())

    def confident_fraction(self, threshold: float) -> float:
        """Fraction of bits whose agreement reaches ``threshold``."""
        if self.confidence.size == 0:
            return 1.0
        return float(np.count_nonzero(self.confidence >= threshold)) / float(
            self.confidence.size
        )

    def disagreeing_bits(self) -> int:
        """Bits where at least one read dissented from the majority."""
        return int(np.count_nonzero(self.confidence < 1.0))


def majority_vote(reads: Sequence[bytes]) -> VoteResult:
    """Decode ``reads`` (equal-length dumps of one image) bit-by-bit.

    Parameters
    ----------
    reads:
        ``k >= 1`` byte strings of equal length — repeated dumps of the
        same retained image.  Bits are voted little-endian within each
        byte (the array accessors' order); the counting core is the
        engine's ``vote_counts`` kernel.

    Returns
    -------
    VoteResult
        The majority-decoded bytes, the per-bit agreement fractions in
        ``[0.5, 1.0]``, and ``k``.

    Raises
    ------
    ResilienceError
        On an empty read list or length-mismatched reads — both
        indicate a driver bug, not rig noise, and must not be silently
        papered over.
    """
    if not reads:
        raise ResilienceError("majority vote needs at least one read")
    length = len(reads[0])
    for index, read in enumerate(reads):
        if len(read) != length:
            raise ResilienceError(
                f"read {index} is {len(read)} byte(s), expected {length}; "
                f"votes must cover the same image"
            )
    k = len(reads)
    if length == 0:
        return VoteResult(
            decoded=b"", confidence=np.zeros(0, dtype=np.float64), reads=k
        )
    if k == 1:
        # A single read is its own decode; every bit is unanimous.
        return VoteResult(
            decoded=bytes(reads[0]),
            confidence=np.ones(length * 8, dtype=np.float64),
            reads=1,
        )
    ones = active_engine().vote_counts(list(reads), length)
    majority = (2 * ones > k).astype(np.uint8)
    decoded = np.packbits(majority, bitorder="little").tobytes()
    agree = np.maximum(ones, k - ones).astype(np.float64) / float(k)
    return VoteResult(decoded=decoded, confidence=agree, reads=k)
