"""The imperfect-rig model: one profile object, four noise sources.

The paper's §6.1 attack runs on a physical bench where nothing is
exact: the supply's programmed set-point carries a tolerance and
drifts over the hold, the hand-landed probe's contact resistance
changes with every landing, and the JTAG/CP15 debug reads that pull
the retained image off the die occasionally flip bits.  A
:class:`RigNoiseProfile` bundles bounds for all four imperfections;
:meth:`RigNoiseProfile.streams` spawns one child generator per noise
source **in a fixed order**, so a noisy campaign is byte-reproducible
from a single seed and invariant to ``--jobs`` sharding.

Two profiles are exported: :data:`IDEAL_RIG` (every bound zero — the
pre-resilience simulator's perfect bench, bit-identical to not using a
profile at all) and :data:`DEFAULT_NOISY_RIG`, calibrated so a naive
single-shot extraction visibly degrades while the resilient driver's
retry + majority-vote recovery still converges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.pdn import ContactNoise
from ..circuits.supply import SupplyNoise
from ..rng import spawn
from ..units import milliohms, millivolts
from ..soc.readnoise import BitErrorModel


@dataclass
class RigStreams:
    """Per-attempt child generators, spawned in declaration order."""

    supply: np.random.Generator
    contact: np.random.Generator
    jtag: np.random.Generator
    cp15: np.random.Generator


@dataclass(frozen=True)
class RigNoiseProfile:
    """Bounds for every modelled bench imperfection.

    ``supply`` perturbs the bench supply's realised set-point
    (tolerance + drift); ``contact`` jitters the probe-tip contact
    resistance per landing; the two bit-error rates model imperfect
    JTAG block reads and CP15 RAMINDEX dump loops respectively.
    """

    name: str = "ideal"
    supply: SupplyNoise = SupplyNoise()
    contact: ContactNoise = ContactNoise()
    jtag_bit_error_rate: float = 0.0
    cp15_bit_error_rate: float = 0.0

    def streams(self, parent: np.random.Generator) -> RigStreams:
        """Spawn the four per-source streams for one attack attempt.

        Always spawns all four, in a fixed order, regardless of which
        bounds are zero — so tightening one noise term never shifts
        another term's stream.
        """
        return RigStreams(
            supply=spawn(parent),
            contact=spawn(parent),
            jtag=spawn(parent),
            cp15=spawn(parent),
        )

    @property
    def is_ideal(self) -> bool:
        """True when every noise bound is exactly zero."""
        return (
            self.supply.setpoint_tolerance_v <= 0.0
            and self.supply.drift_v_per_s <= 0.0
            and self.contact.base_resistance_ohm <= 0.0
            and self.contact.jitter_ohm <= 0.0
            and self.jtag_bit_error_rate <= 0.0
            and self.cp15_bit_error_rate <= 0.0
        )

    def jtag_noise(self, streams: RigStreams) -> BitErrorModel | None:
        """A JTAG read-error model over the attempt's jtag stream."""
        if self.jtag_bit_error_rate <= 0.0:
            return None
        return BitErrorModel(self.jtag_bit_error_rate, streams.jtag)

    def cp15_noise(self, streams: RigStreams) -> BitErrorModel | None:
        """A CP15 read-error model over the attempt's cp15 stream."""
        if self.cp15_bit_error_rate <= 0.0:
            return None
        return BitErrorModel(self.cp15_bit_error_rate, streams.cp15)


#: The perfect bench every pre-resilience experiment assumed.
IDEAL_RIG = RigNoiseProfile()

#: The default flaky bench: ±15 mV set-point programming error with up
#: to 1 mV/s of drift, 20 mΩ + half-normal 40 mΩ contact jitter, and
#: ~4e-3 per-bit debug read errors — enough that a single-shot dump of
#: a cache way is visibly wrong, while five-read majority voting
#: recovers it almost exactly.
DEFAULT_NOISY_RIG = RigNoiseProfile(
    name="default-noisy",
    supply=SupplyNoise(
        setpoint_tolerance_v=millivolts(15), drift_v_per_s=millivolts(1)
    ),
    contact=ContactNoise(
        base_resistance_ohm=milliohms(20), jitter_ohm=milliohms(40)
    ),
    jtag_bit_error_rate=4e-3,
    cp15_bit_error_rate=4e-3,
)
