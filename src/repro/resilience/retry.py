"""Retry policies for the resilient attack driver.

Related glitching work (Bittner et al., Mitard et al.) reports needing
hundreds of imperfect trials per successful extraction; the policy
object is the contract for how those trials are paced and when the
driver gives up and degrades to a partial report.

Backoff is **simulated bench-settle time** (probe re-seating, supply
recovery), not wall-clock sleeping: the driver records it in the
attempt log and metrics, and advances the board's simulated clock.
Nothing here reads the wall clock or draws ambient randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ResilienceError
from ..units import millivolts


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and adaptive re-search.

    ``max_attempts`` bounds full attack attempts (fresh board, fresh
    probe landing).  ``reads_per_extraction`` is the majority-vote
    width per successful power cycle (odd values avoid tie bits).
    After an attempt that lost cells in the disconnect surge, the next
    attempt's probe set-point is raised by ``setpoint_step_v`` (capped
    at ``max_setpoint_boost_v``) — the adaptive re-search of the hold
    voltage.  A recovery is accepted when the surge was clean and at
    least ``min_confident_fraction`` of the voted bits reach
    ``confidence_threshold`` agreement.
    """

    max_attempts: int = 4
    reads_per_extraction: int = 5
    base_backoff_s: float = 0.5
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 8.0
    setpoint_step_v: float = millivolts(15)
    max_setpoint_boost_v: float = millivolts(60)
    confidence_threshold: float = 0.8
    min_confident_fraction: float = 0.995

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError("max_attempts must be >= 1")
        if self.reads_per_extraction < 1:
            raise ResilienceError("reads_per_extraction must be >= 1")
        if self.base_backoff_s < 0.0 or self.max_backoff_s < 0.0:
            raise ResilienceError("backoff times cannot be negative")
        if self.backoff_multiplier < 1.0:
            raise ResilienceError("backoff multiplier must be >= 1.0")
        if self.setpoint_step_v < 0.0 or self.max_setpoint_boost_v < 0.0:
            raise ResilienceError("set-point search steps cannot be negative")
        if not 0.5 <= self.confidence_threshold <= 1.0:
            raise ResilienceError(
                "confidence threshold must be in [0.5, 1.0]"
            )
        if not 0.0 <= self.min_confident_fraction <= 1.0:
            raise ResilienceError(
                "min confident fraction must be in [0.0, 1.0]"
            )

    def backoff_s(self, failures: int) -> float:
        """Settle time before the attempt after ``failures`` failures.

        Bounded exponential: ``base * multiplier**(failures-1)``,
        clamped to ``max_backoff_s``.  ``failures`` counts completed
        failed attempts and must be >= 1.
        """
        if failures < 1:
            raise ResilienceError("backoff is defined after >= 1 failure")
        raw = self.base_backoff_s * self.backoff_multiplier ** (failures - 1)
        return min(raw, self.max_backoff_s)

    def setpoint_boost_v(self, lossy_failures: int) -> float:
        """Adaptive hold-voltage boost after surge-lossy attempts."""
        if lossy_failures < 0:
            raise ResilienceError("lossy failure count cannot be negative")
        return min(
            self.setpoint_step_v * lossy_failures, self.max_setpoint_boost_v
        )

    @classmethod
    def single_shot(cls) -> "RetryPolicy":
        """The naive baseline: one attempt, one read, accept anything.

        ``min_confident_fraction=0`` makes the lone read's outcome the
        final answer — what every pre-resilience experiment implicitly
        did.
        """
        return cls(
            max_attempts=1,
            reads_per_extraction=1,
            min_confident_fraction=0.0,
        )

    def with_reads(self, reads: int) -> "RetryPolicy":
        """A copy with a different majority-vote width."""
        return replace(self, reads_per_extraction=reads)
