"""Board-level passive components and the supply-droop model.

Paper §5.1: every supply pin of an SoC is decorated with passive
components — decoupling capacitors against load transients on LDO-fed
domains, LC filters on switching-regulator domains.  Those passives are
exactly what gives the attacker a place to land a probe, and their values
govern whether the probed rail *survives the disconnect surge*.

When the main supply is cut, the compute cores momentarily draw their
current from whatever still feeds the rail — the attacker's probe.  The
rail voltage dips by the resistive drop across the probe plus whatever
charge deficit the decoupling network cannot cover:

    droop = I_supplied * R_source + max(0, I_surge - I_limit) * t_surge / C

If the dip undercuts a cell's data retention voltage, that cell is lost
(paper §6: "a power supply capable of supplying sufficient current is
essential").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CalibrationError
from ..units import microseconds, milliamps, milliohms


@dataclass(frozen=True)
class SupplyLineParasitics:
    """Series parasitics of a board supply line.

    ``resistance_ohm`` and ``inductance_h`` model trace + package
    parasitics; they set how violently the rail reacts to current steps.
    """

    resistance_ohm: float = milliohms(10)
    inductance_h: float = 5e-9

    def __post_init__(self) -> None:
        if self.resistance_ohm < 0.0 or self.inductance_h < 0.0:
            raise CalibrationError("parasitics cannot be negative")

    def resistive_drop(self, current_a: float) -> float:
        """Voltage lost across the line resistance at ``current_a``."""
        return current_a * self.resistance_ohm

    def inductive_kick(self, current_step_a: float, step_time_s: float) -> float:
        """L·di/dt excursion for a current step over ``step_time_s``."""
        if step_time_s <= 0.0:
            raise CalibrationError("step time must be positive")
        return self.inductance_h * current_step_a / step_time_s


@dataclass(frozen=True)
class DecouplingNetwork:
    """Aggregate decoupling capacitance hanging off one supply net.

    Parameters
    ----------
    capacitance_f:
        Total decoupling capacitance on the net (bulk + ceramic).
    esr_ohm:
        Effective series resistance of the capacitor bank.
    """

    capacitance_f: float = 100e-6
    esr_ohm: float = milliohms(5)

    def __post_init__(self) -> None:
        if self.capacitance_f <= 0.0:
            raise CalibrationError("decoupling capacitance must be positive")
        if self.esr_ohm < 0.0:
            raise CalibrationError("ESR cannot be negative")

    def sag_from_deficit(self, deficit_a: float, duration_s: float) -> float:
        """Voltage sag when the caps must cover ``deficit_a`` for a while.

        ΔV = I·t / C plus the ESR step.  ``deficit_a`` is the portion of
        the surge the active supply could not deliver.
        """
        if deficit_a < 0.0 or duration_s < 0.0:
            raise CalibrationError("deficit and duration cannot be negative")
        return deficit_a * duration_s / self.capacitance_f + deficit_a * self.esr_ohm

    def hold_up_time(self, load_a: float, allowed_sag_v: float) -> float:
        """How long the caps alone can hold the rail within ``allowed_sag_v``."""
        if load_a <= 0.0:
            raise CalibrationError("load current must be positive")
        if allowed_sag_v <= 0.0:
            raise CalibrationError("allowed sag must be positive")
        return allowed_sag_v * self.capacitance_f / load_a


@dataclass(frozen=True)
class DisconnectSurge:
    """Electrical description of an abrupt main-supply disconnect.

    Paper §6: cutting the PMIC input makes the cores momentarily pull
    their supply current from the probed rail; on a Raspberry Pi 4 the
    probe sees 400–600 mA of load which spikes before settling to ~8 mA
    retention current a few microseconds later.
    """

    peak_current_a: float = 2.0
    duration_s: float = microseconds(5)
    settle_current_a: float = milliamps(8)

    def __post_init__(self) -> None:
        if self.peak_current_a < 0.0 or self.settle_current_a < 0.0:
            raise CalibrationError("surge currents cannot be negative")
        if self.duration_s <= 0.0:
            raise CalibrationError("surge duration must be positive")
