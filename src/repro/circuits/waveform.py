"""Rail waveform reconstruction — the oscilloscope view of the attack.

Paper §6 narrates the electrical life of the probed rail: ~0.8 V
nominal, a current spike when the main input is cut (the probe momentarily
sources the whole cluster), recovery within microseconds, and an
indefinite ~8 mA retention hold.  This module synthesises that waveform
from the same electrical models the attack uses, so experiments and
examples can *show* the transient that decides whether cells survive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError
from ..units import microseconds
from .passives import DecouplingNetwork, DisconnectSurge, SupplyLineParasitics
from .supply import BenchSupply


@dataclass(frozen=True)
class RailWaveform:
    """A reconstructed V(t) trace around the disconnect event."""

    time_s: np.ndarray
    voltage_v: np.ndarray
    floor_v: float
    steady_v: float

    def minimum(self) -> float:
        """Lowest voltage in the trace."""
        return float(self.voltage_v.min())

    def time_below(self, threshold_v: float) -> float:
        """Total time the rail spends below ``threshold_v`` (seconds)."""
        below = self.voltage_v < threshold_v
        if not below.any():
            return 0.0
        dt = float(self.time_s[1] - self.time_s[0])
        return float(np.count_nonzero(below)) * dt

    def ascii_plot(self, width: int = 72, height: int = 12) -> str:
        """Render the trace as ASCII art (voltage on the y axis)."""
        idx = np.linspace(0, self.time_s.size - 1, width).astype(int)
        samples = self.voltage_v[idx]
        v_max = float(samples.max()) or 1.0
        rows = []
        for level in range(height, 0, -1):
            threshold = v_max * level / height
            rows.append(
                "".join("#" if v >= threshold else " " for v in samples)
            )
        rows.append("-" * width)
        return "\n".join(rows)


def disconnect_waveform(
    supply: BenchSupply,
    nominal_v: float,
    surge: DisconnectSurge,
    decoupling: DecouplingNetwork,
    parasitics: SupplyLineParasitics | None = None,
    pre_window_s: float = microseconds(20),
    post_window_s: float = microseconds(200),
    samples: int = 2048,
) -> RailWaveform:
    """Reconstruct the probed rail's V(t) around the main-supply cut.

    Piecewise model, consistent with
    :meth:`~repro.circuits.supply.BenchSupply.minimum_rail_voltage`:

    * before t=0: nominal rail voltage (PMIC in control);
    * [0, surge duration]: dip to the surge floor (probe + decoupling
      absorb the cluster's dying draw), recovering exponentially;
    * afterwards: the probe's steady retention hold (a few millivolts
      under its set-point from the retention current).
    """
    if pre_window_s < 0 or post_window_s <= 0 or samples < 16:
        raise CalibrationError("bad waveform window")
    parasitics = parasitics or SupplyLineParasitics()
    floor = supply.minimum_rail_voltage(surge, decoupling, parasitics)
    steady = supply.steady_state_voltage(surge.settle_current_a)
    time = np.linspace(-pre_window_s, post_window_s, samples)
    voltage = np.empty_like(time)
    # Recovery time constant: the decoupling bank recharged by the probe.
    tau = max(
        decoupling.capacitance_f
        * (supply.source_resistance_ohm + parasitics.resistance_ohm),
        surge.duration_s / 4,
    )
    for i, t in enumerate(time):
        if t < 0:
            voltage[i] = nominal_v
        elif t <= surge.duration_s:
            voltage[i] = floor
        else:
            elapsed = t - surge.duration_s
            voltage[i] = steady + (floor - steady) * np.exp(-elapsed / tau)
    return RailWaveform(
        time_s=time, voltage_v=voltage, floor_v=floor, steady_v=steady
    )
