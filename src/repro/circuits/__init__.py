"""Electrical-layer substrate: memory cells, regulators, and the PDN.

This package models the physics the Volt Boot paper exploits:

* :mod:`~repro.circuits.engine` — the cell-physics engine: vectorized
  numpy bulk kernels (default) plus a bit-identical per-cell scalar
  reference selected by ``REPRO_SCALAR_PHYSICS=1`` (see
  ``docs/physics.md``).
* :mod:`~repro.circuits.leakage` — Arrhenius charge-decay models for SRAM
  and DRAM cells, calibrated against the remanence literature the paper
  cites.
* :mod:`~repro.circuits.sram` — 6T SRAM cell arrays with per-cell data
  retention voltage, power-up fingerprints, and voltage-history tracking.
* :mod:`~repro.circuits.dram` — capacitor-based DRAM arrays with refresh,
  used for the cold-boot baseline comparisons.
* :mod:`~repro.circuits.passives` — decoupling capacitors and supply-line
  parasitics; the droop model.
* :mod:`~repro.circuits.pmic` — LDO and buck regulator models composed
  into a PMIC.
* :mod:`~repro.circuits.supply` — bench supplies and voltage probes, the
  attacker's tools.
* :mod:`~repro.circuits.pdn` — the board-level power delivery network
  graph (rails, pins, test pads) the attacker walks to find probe points.
"""

from .engine import (
    SCALAR_ENV,
    ScalarEngine,
    VectorEngine,
    active_engine,
    engine_name,
    forced_engine,
)
from .leakage import ArrheniusDecay, DRAM_DECAY, SRAM_DECAY
from .sram import SramArray, SramParameters
from .dram import DramArray, DramParameters
from .passives import DecouplingNetwork, DisconnectSurge, SupplyLineParasitics
from .pmic import BuckConverter, Ldo, Pmic, Regulator
from .supply import BenchSupply, VoltageProbe
from .waveform import RailWaveform, disconnect_waveform
from .pdn import NetKind, PdnNet, PowerDeliveryNetwork, TestPad

__all__ = [
    "SCALAR_ENV",
    "ScalarEngine",
    "VectorEngine",
    "active_engine",
    "engine_name",
    "forced_engine",
    "ArrheniusDecay",
    "SRAM_DECAY",
    "DRAM_DECAY",
    "SramArray",
    "SramParameters",
    "DramArray",
    "DramParameters",
    "DecouplingNetwork",
    "DisconnectSurge",
    "SupplyLineParasitics",
    "Regulator",
    "Ldo",
    "BuckConverter",
    "Pmic",
    "BenchSupply",
    "VoltageProbe",
    "RailWaveform",
    "disconnect_waveform",
    "PowerDeliveryNetwork",
    "PdnNet",
    "NetKind",
    "TestPad",
]
