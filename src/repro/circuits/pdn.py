"""Board-level power delivery network (PDN) graph.

Attack step 1 (paper §6.1) is "identify target domains and their
associated pins".  On a real board the SoC's supply balls are unreachable
under a BGA package, but every supply net surfaces at passive-component
leads and test pads near the PMIC (paper Figure 4, Table 3).  We model
the board's power nets as a small graph:

    regulator rail ──> net ──> { SoC power domain pins, test pads,
                                 decoupling caps }

The attack planner (:mod:`repro.core.probe`) walks this graph to find a
reachable pad for the domain that feeds the target memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..errors import PowerError
from .passives import DecouplingNetwork, SupplyLineParasitics
from .pmic import Pmic


class NetKind(enum.Enum):
    """Classification of a board power net."""

    CORE = "core"
    MEMORY = "memory"
    IO = "io"
    SYSTEM = "system"


@dataclass(frozen=True)
class TestPad:
    """A probe-able point on the PCB (test pad or passive-component lead)."""

    name: str
    net_name: str
    description: str = ""


@dataclass(frozen=True)
class ContactNoise:
    """Probe-tip contact imperfection at a test pad.

    A hand-landed probe never makes the same contact twice: oxide,
    flux residue, and tip pressure put a lognormal-ish spread on the
    contact resistance.  The model is a base resistance plus a
    half-normal jitter (resistance only ever gets *worse* than the
    clean-contact base), redrawn per landing from a dedicated
    ``rng.spawn`` stream.
    """

    base_resistance_ohm: float = 0.0
    jitter_ohm: float = 0.0

    def __post_init__(self) -> None:
        if self.base_resistance_ohm < 0.0:
            raise PowerError("contact resistance cannot be negative")
        if self.jitter_ohm < 0.0:
            raise PowerError("contact jitter cannot be negative")

    def sample_resistance_ohm(self, rng: np.random.Generator) -> float:
        """One landing's realised contact resistance.

        Always draws exactly one variate so a zero-jitter profile keeps
        the same stream position as a noisy one.
        """
        excess = abs(float(rng.normal(0.0, 1.0))) * self.jitter_ohm
        return self.base_resistance_ohm + excess


@dataclass
class PdnNet:
    """One power net: a rail fanning out to domains and pads."""

    name: str
    kind: NetKind
    rail_name: str
    decoupling: DecouplingNetwork = field(default_factory=DecouplingNetwork)
    parasitics: SupplyLineParasitics = field(default_factory=SupplyLineParasitics)
    domain_names: list[str] = field(default_factory=list)
    pads: list[TestPad] = field(default_factory=list)


class PowerDeliveryNetwork:
    """The full PDN of one board: PMIC rails, nets, pads, and domains."""

    def __init__(self, pmic: Pmic) -> None:
        self.pmic = pmic
        self._nets: dict[str, PdnNet] = {}
        self._pads: dict[str, TestPad] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_net(
        self,
        name: str,
        kind: NetKind,
        rail_name: str,
        decoupling: DecouplingNetwork | None = None,
        parasitics: SupplyLineParasitics | None = None,
    ) -> PdnNet:
        """Create a net fed by an existing PMIC rail."""
        if name in self._nets:
            raise PowerError(f"duplicate net {name!r}")
        self.pmic.rail(rail_name)  # validates existence
        net = PdnNet(
            name=name,
            kind=kind,
            rail_name=rail_name,
            decoupling=decoupling or DecouplingNetwork(),
            parasitics=parasitics or SupplyLineParasitics(),
        )
        self._nets[name] = net
        return net

    def attach_domain(self, net_name: str, domain_name: str) -> None:
        """Record that a power domain draws from ``net_name``."""
        net = self.net(net_name)
        if domain_name in net.domain_names:
            raise PowerError(f"domain {domain_name!r} already on net {net_name!r}")
        net.domain_names.append(domain_name)

    def add_test_pad(self, name: str, net_name: str, description: str = "") -> TestPad:
        """Expose a probe-able pad on ``net_name``."""
        if name in self._pads:
            raise PowerError(f"duplicate test pad {name!r}")
        pad = TestPad(name=name, net_name=net_name, description=description)
        self.net(net_name).pads.append(pad)
        self._pads[name] = pad
        return pad

    # ------------------------------------------------------------------
    # Queries (what the attack planner uses)
    # ------------------------------------------------------------------

    def net(self, name: str) -> PdnNet:
        """Look up a net by name."""
        try:
            return self._nets[name]
        except KeyError:
            raise PowerError(f"unknown net {name!r}") from None

    def pad(self, name: str) -> TestPad:
        """Look up a test pad by name."""
        try:
            return self._pads[name]
        except KeyError:
            raise PowerError(f"unknown test pad {name!r}") from None

    def nets(self) -> list[PdnNet]:
        """All nets, in registration order."""
        return list(self._nets.values())

    def net_for_domain(self, domain_name: str) -> PdnNet:
        """Find the net feeding a power domain."""
        for net in self._nets.values():
            if domain_name in net.domain_names:
                return net
        raise PowerError(f"no net feeds domain {domain_name!r}")

    def pads_for_domain(self, domain_name: str) -> list[TestPad]:
        """Probe-able pads on the net feeding ``domain_name``."""
        return list(self.net_for_domain(domain_name).pads)

    def nominal_voltage(self, net_name: str) -> float:
        """Design voltage of a net (its rail's set-point)."""
        return self.pmic.rail(self.net(net_name).rail_name).nominal_v

    def live_voltage(self, net_name: str) -> float:
        """Present voltage of a net as driven by the PMIC alone."""
        return self.pmic.rail_voltage(self.net(net_name).rail_name)

    def describe_pads(self) -> list[dict[str, object]]:
        """Tabular pad inventory (paper Table 3 shape)."""
        rows = []
        for net in self._nets.values():
            for pad in net.pads:
                rows.append(
                    {
                        "pad": pad.name,
                        "net": net.name,
                        "kind": net.kind.value,
                        "nominal_v": self.nominal_voltage(net.name),
                        "domains": list(net.domain_names),
                        "description": pad.description,
                    }
                )
        return rows
