"""The attacker's instruments: bench supplies and voltage probes.

Paper §6: the attack rides a rail through a power cycle by attaching an
external supply to a test pad at the rail's nominal voltage.  Whether the
rail *stays* above every cell's data retention voltage during the
disconnect surge depends on the supply's current capability and source
impedance — a ">3 A bench supply" succeeds; a feeble probe loses bits.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import CalibrationError, ProbeError
from ..units import milliohms
from .passives import DecouplingNetwork, DisconnectSurge, SupplyLineParasitics


@dataclass(frozen=True)
class BenchSupply:
    """An adjustable lab power supply.

    Parameters
    ----------
    voltage_v:
        Set-point voltage at the probe tip.
    current_limit_a:
        Maximum current before the supply current-limits (folds back).
    source_resistance_ohm:
        Output + lead resistance; multiplies the steady surge current
        into a voltage drop at the pad.
    """

    voltage_v: float
    current_limit_a: float = 3.0
    source_resistance_ohm: float = milliohms(50)

    def __post_init__(self) -> None:
        if self.voltage_v <= 0.0:
            raise CalibrationError("supply voltage must be positive")
        if self.current_limit_a <= 0.0:
            raise CalibrationError("current limit must be positive")
        if self.source_resistance_ohm < 0.0:
            raise CalibrationError("source resistance cannot be negative")

    def minimum_rail_voltage(
        self,
        surge: DisconnectSurge,
        decoupling: DecouplingNetwork,
        parasitics: SupplyLineParasitics | None = None,
    ) -> float:
        """Lowest rail voltage during a main-supply disconnect surge.

        The supply covers the surge up to its current limit; the
        decoupling network absorbs any deficit, sagging in proportion.
        """
        parasitics = parasitics or SupplyLineParasitics()
        supplied = min(surge.peak_current_a, self.current_limit_a)
        deficit = max(0.0, surge.peak_current_a - self.current_limit_a)
        droop = (
            parasitics.resistive_drop(supplied)
            + supplied * self.source_resistance_ohm
            + decoupling.sag_from_deficit(deficit, surge.duration_s)
        )
        return max(0.0, self.voltage_v - droop)

    def steady_state_voltage(self, load_a: float) -> float:
        """Pad voltage under a steady load (retention current)."""
        if load_a < 0.0:
            raise CalibrationError("load current cannot be negative")
        if load_a > self.current_limit_a:
            # Current limiting: the supply folds back toward zero volts.
            return 0.0
        return self.voltage_v - load_a * self.source_resistance_ohm


@dataclass(frozen=True)
class SupplyNoise:
    """Set-point imperfection of a real bench supply.

    ``setpoint_tolerance_v`` bounds the programming error: a supply set
    to 0.800 V actually lands uniformly within ±tolerance of it (the
    datasheet's "programming accuracy").  ``drift_v_per_s`` bounds a
    linear output drift over a hold — thermal settling of the sense
    loop — whose rate is drawn once per attach and accumulates over the
    hold time.  Both draws come from a dedicated ``rng.spawn`` stream,
    so a noisy supply is exactly reproducible from the rig seed.
    """

    setpoint_tolerance_v: float = 0.0
    drift_v_per_s: float = 0.0

    def __post_init__(self) -> None:
        if self.setpoint_tolerance_v < 0.0:
            raise CalibrationError("set-point tolerance cannot be negative")
        if self.drift_v_per_s < 0.0:
            raise CalibrationError("drift rate cannot be negative")

    def sample_setpoint_v(
        self,
        nominal_v: float,
        rng: np.random.Generator,
        hold_s: float = 0.0,
    ) -> float:
        """One attach's realised set-point after error and drift.

        Draws exactly two variates (programming error, drift rate) even
        when a bound is zero, so enabling one noise term never shifts
        the stream position of the other.
        """
        error_v = float(
            rng.uniform(-self.setpoint_tolerance_v, self.setpoint_tolerance_v)
        )
        drift_rate = float(
            rng.uniform(-self.drift_v_per_s, self.drift_v_per_s)
        )
        realised = nominal_v + error_v + drift_rate * hold_s
        return max(realised, 1e-6)

    def apply(
        self,
        supply: "BenchSupply",
        rng: np.random.Generator,
        hold_s: float = 0.0,
    ) -> "BenchSupply":
        """A copy of ``supply`` at the realised (imperfect) set-point."""
        return replace(
            supply,
            voltage_v=self.sample_setpoint_v(
                supply.voltage_v, rng, hold_s=hold_s
            ),
        )


@dataclass
class VoltageProbe:
    """A bench supply landed on a specific test pad of a specific net.

    Probes are created by the attack orchestration
    (:mod:`repro.core.probe`) after planning against the board's PDN; the
    class only validates electrical sanity: the set-point must match the
    pad's live nominal voltage within a tolerance, otherwise attaching the
    probe would fight the PMIC (and, on real hardware, release the magic
    smoke).
    """

    supply: BenchSupply
    pad_name: str
    net_name: str
    attached: bool = False

    #: Maximum |set-point − rail| mismatch tolerated when attaching to a
    #: live rail, as a fraction of the rail voltage.
    ATTACH_TOLERANCE = 0.08

    def attach(self, live_rail_voltage: float) -> None:
        """Land the probe on the pad while the rail is at ``live_rail_voltage``.

        A zero rail voltage is allowed (attaching to an unpowered board);
        otherwise the mismatch check applies.
        """
        if self.attached:
            raise ProbeError(f"probe already attached to {self.pad_name}")
        if live_rail_voltage > 0.0:
            mismatch = abs(self.supply.voltage_v - live_rail_voltage)
            if mismatch > self.ATTACH_TOLERANCE * live_rail_voltage:
                raise ProbeError(
                    f"probe set-point {self.supply.voltage_v:.3f}V fights the "
                    f"live rail at {live_rail_voltage:.3f}V on {self.pad_name}"
                )
        self.attached = True

    def detach(self) -> None:
        """Lift the probe off the pad."""
        if not self.attached:
            raise ProbeError(f"probe is not attached to {self.pad_name}")
        self.attached = False
