"""1T1C DRAM arrays — the substrate of the classic cold boot attack.

The Volt Boot paper contrasts its SRAM attack against the original
Halderman et al. DRAM cold boot (paper §3, §9.1).  To reproduce that
contrast we model DRAM's distinguishing physics:

* a cell is a capacitor; its charge leaks continuously and must be
  refreshed (typically every 64 ms);
* leakage is Arrhenius in temperature, with far larger time constants
  than SRAM (big storage capacitor, no active feedback), so chilled DRAM
  retains data for seconds-to-minutes without power;
* roughly half of the cells are *anti-cells*: a logical 1 is stored as an
  empty capacitor, so a fully decayed module reads out the cell's ground
  state, not all-zeros;
* per-cell retention varies: a small population of leaky cells loses data
  far earlier than the median (the "bit flips" that force key
  reconstruction in the original attack).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CalibrationError, CircuitError
from ..obs import OBS
from ..obs.timing import observe_rate, wall_clock
from ..rng import from_entropy
from ..units import ROOM_TEMPERATURE_K, milliseconds
from .engine import active_engine
from .leakage import ArrheniusDecay, DRAM_DECAY


@dataclass(frozen=True)
class DramParameters:
    """Electrical parameters of a DRAM module.

    Parameters
    ----------
    refresh_interval_s:
        Refresh period guaranteed by the controller (JEDEC: 64 ms).
    retention_spread:
        Sigma of the lognormal per-cell retention multiplier.  Larger
        spreads create more early-failing cells.
    anticell_fraction:
        Fraction of cells that store logical 1 as a *discharged*
        capacitor.
    decay:
        Arrhenius decay of cell charge.
    """

    refresh_interval_s: float = milliseconds(64)
    retention_spread: float = 0.4
    anticell_fraction: float = 0.5
    decay: ArrheniusDecay = field(default=DRAM_DECAY)

    def __post_init__(self) -> None:
        if self.refresh_interval_s <= 0.0:
            raise CalibrationError("refresh interval must be positive")
        if not 0.0 <= self.anticell_fraction <= 1.0:
            raise CalibrationError("anticell_fraction must be within [0, 1]")
        if self.retention_spread < 0.0:
            raise CalibrationError("retention spread cannot be negative")


class DramArray:
    """A flat DRAM bit array with refresh and unpowered decay.

    The charge state is tracked as a normalised level in [0, 1]; a cell
    reads as its written value while its level exceeds 0.5 and as its
    ground state (0 for true cells, 1 for anti-cells) once decayed.
    """

    def __init__(
        self,
        n_bits: int,
        params: DramParameters | None = None,
        rng: np.random.Generator | None = None,
        name: str = "dram",
    ) -> None:
        if n_bits <= 0 or n_bits % 8:
            raise CalibrationError("DRAM size must be a positive byte multiple")
        self.name = name
        self.params = params or DramParameters()
        self._rng = rng if rng is not None else from_entropy(0)
        self._n_bits = int(n_bits)
        engine = active_engine()
        self._anticell = engine.uniform_mask(
            self._rng, self._n_bits, self.params.anticell_fraction
        )
        # Per-cell retention multiplier (lognormal around 1.0); float16
        # keeps megabyte-scale modules affordable.
        self._retention_scale = engine.lognormal_field(
            self._rng, self._n_bits, self.params.retention_spread
        )
        # float32 widening of the retention field, cached because every
        # decay step divides by it; the field is fixed at manufacture.
        self._scale32 = self._retention_scale.astype(np.float32)
        # Modules start fully discharged (factory-fresh, unpowered).
        self._bits = self._ground_state()
        self._level = np.zeros(self._n_bits, dtype=np.float16)
        self._powered = False

    @property
    def n_bits(self) -> int:
        """Number of cells."""
        return self._n_bits

    @property
    def n_bytes(self) -> int:
        """Capacity in bytes."""
        return self._n_bits // 8

    @property
    def powered(self) -> bool:
        """Whether the module currently has power (and refresh)."""
        return self._powered

    def _ground_state(self) -> np.ndarray:
        return self._anticell.astype(np.uint8)

    # ------------------------------------------------------------------
    # Power and decay
    # ------------------------------------------------------------------

    def power_down(self) -> None:
        """Cut power (and refresh).  Charge decay starts from full."""
        if not self._powered:
            raise CircuitError(f"{self.name}: already unpowered")
        self._powered = False

    def elapse_unpowered(
        self, seconds: float, temperature_k: float = ROOM_TEMPERATURE_K
    ) -> None:
        """Decay cell charge for ``seconds`` at ``temperature_k``.

        Parameters
        ----------
        seconds:
            Unpowered (refresh-less) interval in seconds.
        temperature_k:
            Module temperature in kelvin; sets the Arrhenius time
            constant ``tau(T)``.  Chilled modules decay orders of
            magnitude slower — the knob the cold boot attack turns.
        """
        if self._powered:
            raise CircuitError(f"{self.name}: refresh is active; nothing decays")
        tau = self.params.decay.time_constant(temperature_k)
        self._level = active_engine().charge_decay(
            self._level, seconds, tau, self._scale32
        )
        if OBS.enabled:
            OBS.gauge_set("dram.tau_s", tau, array=self.name)

    def restore_power(self, voltage: float | None = None) -> float:
        """Restore power; decayed cells revert to their ground state.

        ``voltage`` is accepted for :class:`~repro.power.domain.PowerLoad`
        compatibility; DRAM retention is refresh-driven, not
        supply-level-driven, so the value is ignored.

        Returns
        -------
        float
            Fraction of cells still holding their written value.
        """
        if self._powered:
            raise CircuitError(f"{self.name}: already powered")
        # Profiling hook: cells/s through the bulk decay kernel.  The
        # "perf." gauge is stripped from manifest fingerprints; the
        # disabled path reads no clock.
        start = wall_clock() if OBS.enabled else 0.0
        engine = active_engine()
        retained = engine.charge_mask(self._level)
        ground = self._ground_state()
        self._bits = engine.select(retained, self._bits, ground)
        # Refresh recharges every cell; 1.0 is exact at float16, so the
        # narrower fill is value-identical to the old float64 one.
        self._level = np.ones(self._n_bits, dtype=np.float16)
        self._powered = True
        fraction = float(np.mean(retained))
        if OBS.enabled:
            observe_rate(
                "dram.decay", self._n_bits, wall_clock() - start,
                array=self.name,
            )
            OBS.histogram_record(
                "dram.retained_fraction", fraction, array=self.name
            )
            OBS.counter_inc(
                "dram.cells_decayed",
                int(self._n_bits - int(retained.sum())),
                array=self.name,
            )
        return fraction

    def set_supply_voltage(self, voltage: float) -> int:
        """PowerLoad hook: DRAM tolerates supply moves; no cells are lost.

        Retention in DRAM is governed by refresh, and the stored charge
        sits on a large capacitor, so a supply-level change within the
        operating range does not corrupt cells.
        """
        if not self._powered:
            raise CircuitError(f"{self.name}: cannot set voltage while unpowered")
        if voltage <= 0.0:
            raise CircuitError("supply voltage must be positive")
        return 0

    def apply_voltage_transient(self, minimum_v: float) -> int:
        """PowerLoad hook: microsecond rail sags do not drain DRAM caps."""
        if not self._powered:
            raise CircuitError(f"{self.name}: transient on an unpowered array")
        return 0

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def read_bytes(self, offset: int = 0, count: int | None = None) -> bytes:
        """Read ``count`` bytes at byte ``offset`` (powered only)."""
        if not self._powered:
            raise CircuitError(f"{self.name}: cannot read while unpowered")
        if count is None:
            count = self.n_bytes - offset
        self._check_range(offset, count)
        bits = self._bits[offset * 8 : (offset + count) * 8]
        return np.packbits(bits, bitorder="little").tobytes()

    def write_bytes(self, offset: int, data: bytes) -> None:
        """Write ``data`` at byte ``offset``; written cells recharge."""
        if not self._powered:
            raise CircuitError(f"{self.name}: cannot write while unpowered")
        raw = np.frombuffer(bytes(data), dtype=np.uint8)
        self._check_range(offset, len(raw))
        bits = np.unpackbits(raw, bitorder="little")
        lo, hi = offset * 8, offset * 8 + len(bits)
        self._bits[lo:hi] = bits
        self._level[lo:hi] = 1.0

    def image(self) -> np.ndarray:
        """Snapshot of the current logical bit image."""
        return self._bits.copy()

    def _check_range(self, offset: int, count: int) -> None:
        if offset < 0 or count < 0 or offset + count > self.n_bytes:
            raise CircuitError(
                f"{self.name}: byte range [{offset}, {offset + count}) "
                f"exceeds {self.n_bytes} bytes"
            )
