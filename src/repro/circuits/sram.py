"""6T SRAM cell arrays with data-retention-voltage physics.

An SRAM cell is a pair of cross-coupled inverters (paper Figure 1).  Three
physical properties drive everything in the Volt Boot paper:

**Data retention voltage (DRV).**  A powered cell keeps its state as long
as its supply stays above a per-cell DRV, which is process-variation
dependent but *well below* the nominal supply (paper §2.1).  If the supply
sags below a cell's DRV — even briefly — the feedback loop collapses and
the cell falls back to its power-up preference.  This is why the
attacker's probe must ride out the disconnect surge (paper §6), and why a
sufficiently beefy bench supply yields 100 % recovery.

**Power-up fingerprint.**  An unpowered-then-powered cell settles into a
preferred state determined by transistor mismatch.  Most cells are
strongly skewed and always wake up the same way; a minority are metastable
and wake up randomly.  The fractional Hamming distance between two
power-ups of the same array is therefore small but non-zero (~0.10 in the
paper's Table 1 caption).

**Intrinsic retention time.**  With the supply removed, the storage node
discharges with an Arrhenius time constant (:mod:`~repro.circuits.leakage`).
At room temperature this is tens of microseconds — hence "SRAM has no
chill": no manual power cycle is fast enough, and no achievable cold makes
it slow enough.

:class:`SramArray` models a flat array of cells; architectural structures
(cache ways, register files, iRAM) are built on top of it by
:mod:`repro.soc`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import CalibrationError, CircuitError
from ..obs import OBS
from ..obs.timing import observe_rate, wall_clock
from ..rng import from_entropy
from ..units import ROOM_TEMPERATURE_K, millivolts
from .engine import active_engine
from .leakage import ArrheniusDecay, SRAM_DECAY


@dataclass(frozen=True)
class SramParameters:
    """Process parameters of an SRAM macro.

    Parameters
    ----------
    nominal_v:
        Nominal supply voltage of the power domain feeding the macro.
    drv_mean_v, drv_sigma_v:
        Mean and standard deviation of the per-cell data retention
        voltage.  Defaults put DRV around 0.25 V — far below nominal, per
        the paper's §2.1 discussion.
    restore_mean_v, restore_sigma_v:
        Mean/sigma of the node voltage below which a cell, on power
        restore, no longer recovers its old state.  Governs cold-boot
        style retention after an *unpowered* interval.
    noisy_fraction:
        Fraction of cells whose power-up state is random rather than
        skewed.  0.2 yields a ~0.10 fractional HD between power-ups.
    decay:
        Arrhenius model for unpowered node decay.
    """

    nominal_v: float = 0.8
    drv_mean_v: float = 0.25
    drv_sigma_v: float = millivolts(30)
    restore_mean_v: float = 0.10
    restore_sigma_v: float = millivolts(20)
    noisy_fraction: float = 0.20
    decay: ArrheniusDecay = field(default=SRAM_DECAY)

    def __post_init__(self) -> None:
        if self.nominal_v <= 0.0:
            raise CalibrationError("nominal voltage must be positive")
        if not 0.0 <= self.noisy_fraction <= 1.0:
            raise CalibrationError("noisy_fraction must be within [0, 1]")
        if self.drv_sigma_v < 0.0 or self.restore_sigma_v < 0.0:
            raise CalibrationError("sigma values cannot be negative")
        if self.drv_mean_v >= self.nominal_v:
            raise CalibrationError(
                "mean DRV must sit below the nominal supply voltage"
            )


class SramArray:
    """A flat array of 6T SRAM cells addressed as bits or bytes.

    The array is always in one of two electrical states:

    * **powered** — holding a supply voltage; bits are stable unless the
      supply sags below per-cell DRVs.
    * **unpowered** — the storage nodes decay; the stored image survives a
      later :meth:`restore_power` only for cells whose node voltage is
      still above their restore threshold.

    Bits are stored little-endian within each byte for the byte-level
    accessors.
    """

    #: Residual flip probability of a strongly-skewed cell at power-up.
    WAKE_SKEW_EPSILON = 0.005

    #: Wake-probability shift per year of continuously imprinting one
    #: value (NBTI-style aging; paper §9.2's decade-scale attacks).
    AGING_SHIFT_PER_YEAR = 0.02

    def __init__(
        self,
        n_bits: int,
        params: SramParameters | None = None,
        rng: np.random.Generator | None = None,
        name: str = "sram",
    ) -> None:
        if n_bits <= 0:
            raise CalibrationError("an SRAM array needs at least one bit")
        if n_bits % 8:
            raise CalibrationError("array size must be a whole number of bytes")
        self.name = name
        self.params = params or SramParameters()
        self._rng = rng if rng is not None else from_entropy(0)
        self._n_bits = int(n_bits)

        # Process variation, fixed at manufacture time.  Stored as float16
        # to keep megabyte-scale macros affordable; sub-millivolt
        # resolution is far below any physical effect modelled here.
        engine = active_engine()
        self._drv = engine.gaussian_field(
            self._rng,
            self._n_bits,
            self.params.drv_mean_v,
            self.params.drv_sigma_v,
            0.01,
        )
        self._restore_threshold = engine.gaussian_field(
            self._rng,
            self._n_bits,
            self.params.restore_mean_v,
            self.params.restore_sigma_v,
            0.005,
        )
        # Per-cell wake probability: the chance a cell powers up as 1.
        # Strongly-skewed cells sit near 0 or 1 (the stable PUF bits);
        # metastable cells sit near 0.5 and flip coin-like on every
        # power-up.  Aging (NBTI imprinting) later shifts these values
        # toward whatever the cell spent its life holding (paper §9.2).
        self._wake_p = engine.wake_field(
            self._rng,
            self._n_bits,
            self.params.noisy_fraction,
            self.WAKE_SKEW_EPSILON,
        )
        # float32 widening of the wake field, cached because every
        # power-up compares against it; refreshed whenever aging moves
        # the probabilities.
        self._wake32 = self._wake_p.astype(np.float32)

        # Electrical state.
        self._bits = np.zeros(self._n_bits, dtype=np.uint8)
        self._powered = False
        self._supply_v = 0.0
        self._unpowered_fraction = 1.0  # V/V0 accumulated while off
        self._off_supply_v = 0.0  # supply level at the moment power was lost

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_bits(self) -> int:
        """Number of cells in the array."""
        return self._n_bits

    @property
    def n_bytes(self) -> int:
        """Array capacity in bytes."""
        return self._n_bits // 8

    @property
    def powered(self) -> bool:
        """Whether the array currently has a supply."""
        return self._powered

    @property
    def supply_voltage(self) -> float:
        """Present supply voltage (0.0 when unpowered)."""
        return self._supply_v if self._powered else 0.0

    def drv_percentile(self, percentile: float) -> float:
        """Per-cell DRV percentile — used by probe-planning heuristics.

        Parameters
        ----------
        percentile:
            Percentile in ``[0, 100]``.

        Returns
        -------
        float
            The DRV value (volts) at that percentile of the array's
            manufacture-time distribution.
        """
        return float(np.percentile(self._drv, percentile))

    def cell_drv(self) -> np.ndarray:
        """Copy of the per-cell data retention voltages.

        Returns
        -------
        numpy.ndarray
            ``float32[n_bits]`` DRVs in volts (the stored ``float16``
            field widened losslessly).
        """
        return self._drv.astype(np.float32)

    def wake_probabilities(self) -> np.ndarray:
        """Copy of the per-cell power-up-as-1 probabilities.

        Returns
        -------
        numpy.ndarray
            ``float32[n_bits]`` probabilities in ``[0, 1]``.
        """
        return self._wake_p.astype(np.float32)

    def noisy_cell_mask(self) -> np.ndarray:
        """Cells whose power-up state is effectively a coin flip.

        Returns
        -------
        numpy.ndarray
            ``bool[n_bits]`` mask of metastable cells (wake probability
            inside ``(0.2, 0.8)``).
        """
        wake = self._wake_p.astype(np.float32)
        return (wake > 0.2) & (wake < 0.8)

    # ------------------------------------------------------------------
    # Aging (NBTI imprinting — paper §9.2)
    # ------------------------------------------------------------------

    def age(self, years: float, duty_cycle: float = 1.0) -> None:
        """Imprint the currently-held data into the cells' wake skew.

        Bias temperature instability slowly shifts a cell's power-up
        preference toward the value it spends its life holding — the
        physical basis of the decade-scale data-imprinting attacks the
        paper contrasts itself against (§9.2).

        Parameters
        ----------
        years:
            Imprinting duration in years; must be non-negative.
        duty_cycle:
            Fraction of the period the data was actually resident, in
            ``[0, 1]``.

        Raises
        ------
        CalibrationError
            If ``years`` is negative or ``duty_cycle`` leaves ``[0, 1]``.
        CircuitError
            If the array is unpowered (nothing is imprinting).
        """
        if years < 0.0 or not 0.0 <= duty_cycle <= 1.0:
            raise CalibrationError("aging needs years >= 0, duty in [0, 1]")
        self._require_powered("age")
        self._wake_p = active_engine().age_wake(
            self._wake_p,
            self._bits,
            self.AGING_SHIFT_PER_YEAR * years * duty_cycle,
            self.WAKE_SKEW_EPSILON / 2,
            1.0 - self.WAKE_SKEW_EPSILON / 2,
        )
        self._wake32 = self._wake_p.astype(np.float32)

    # ------------------------------------------------------------------
    # Power state machine
    # ------------------------------------------------------------------

    def power_up(self, voltage: float | None = None) -> None:
        """Energise the array from a fully-discharged (cold) state.

        All cells settle into their power-up fingerprint: skewed cells take
        their preferred value, metastable cells flip a fresh coin.

        Parameters
        ----------
        voltage:
            Supply voltage in volts; ``None`` applies the nominal
            supply.  Consumes one bulk power-up draw from the array's
            stream (see :meth:`repro.circuits.engine.vector.VectorEngine.powerup`).
        """
        self._require_voltage(voltage)
        self._bits = self._sample_powerup()
        self._powered = True
        self._supply_v = self.params.nominal_v if voltage is None else voltage
        self._unpowered_fraction = 1.0

    def power_down(self) -> None:
        """Remove the supply.  Node voltages begin to decay from here."""
        if not self._powered:
            raise CircuitError(f"{self.name}: already unpowered")
        self._off_supply_v = self._supply_v
        self._powered = False
        self._supply_v = 0.0
        self._unpowered_fraction = 1.0

    def elapse_unpowered(
        self, seconds: float, temperature_k: float = ROOM_TEMPERATURE_K
    ) -> None:
        """Let ``seconds`` pass without power at ``temperature_k``.

        May be called repeatedly with different temperatures; decay
        fractions compose multiplicatively.

        Parameters
        ----------
        seconds:
            Unpowered interval in seconds.
        temperature_k:
            Soak temperature in kelvin; sets the Arrhenius time
            constant ``tau(T)`` (:class:`~repro.circuits.leakage.ArrheniusDecay`).
        """
        if self._powered:
            raise CircuitError(f"{self.name}: array is powered; nothing decays")
        self._unpowered_fraction *= self.params.decay.surviving_fraction(
            seconds, temperature_k
        )
        if OBS.enabled:
            OBS.gauge_set(
                "sram.tau_s",
                self.params.decay.time_constant(temperature_k),
                array=self.name,
            )

    def restore_power(self, voltage: float | None = None) -> float:
        """Re-apply power after an unpowered interval.

        Cells whose decayed node voltage still exceeds their restore
        threshold recover their previous state; the rest settle into the
        power-up fingerprint.

        Parameters
        ----------
        voltage:
            Restored supply voltage in volts; ``None`` applies the
            nominal supply.  Restoring below some cells' DRV collapses
            those cells immediately as well.

        Returns
        -------
        float
            Fraction of cells that retained their data — the quantity
            every remanence study reports.
        """
        if self._powered:
            raise CircuitError(f"{self.name}: already powered")
        self._require_voltage(voltage)
        # Profiling hook: cells/s through the bulk decay kernel.  The
        # "perf." gauge is stripped from manifest fingerprints; the
        # disabled path reads no clock.
        start = wall_clock() if OBS.enabled else 0.0
        engine = active_engine()
        node_v = self._off_supply_v * self._unpowered_fraction
        retained = engine.restore_mask(node_v, self._restore_threshold)
        fresh = self._sample_powerup()
        self._bits = engine.select(retained, self._bits, fresh)
        self._powered = True
        self._supply_v = self.params.nominal_v if voltage is None else voltage
        self._unpowered_fraction = 1.0
        # Restoring at a voltage below some cells' DRV immediately
        # collapses those cells as well.
        self._collapse_below(self._supply_v)
        fraction = float(np.mean(retained))
        if OBS.enabled:
            observe_rate(
                "sram.decay", self._n_bits, wall_clock() - start,
                array=self.name,
            )
            OBS.histogram_record(
                "sram.retained_fraction", fraction, array=self.name
            )
            OBS.counter_inc(
                "sram.cells_decayed",
                int(self._n_bits - int(retained.sum())),
                array=self.name,
            )
        return fraction

    def set_supply_voltage(self, voltage: float) -> int:
        """Adjust the supply while powered (DVFS, or an attacker's probe).

        Cells whose DRV exceeds the new voltage collapse to their power-up
        preference.

        Parameters
        ----------
        voltage:
            New supply voltage in volts; must be positive.

        Returns
        -------
        int
            Number of cells lost to the move.
        """
        if not self._powered:
            raise CircuitError(f"{self.name}: cannot set voltage while unpowered")
        self._require_voltage(voltage)
        lost = self._collapse_below(voltage)
        self._supply_v = voltage
        return lost

    def apply_voltage_transient(self, minimum_v: float) -> int:
        """Model a transient sag to ``minimum_v`` (droop during a surge).

        The sag is assumed long enough (microseconds) to collapse every
        cell whose DRV it undercuts.  Returns the number of cells lost.
        """
        if not self._powered:
            raise CircuitError(f"{self.name}: transient on an unpowered array")
        if minimum_v < 0.0:
            raise CircuitError("droop voltage cannot be negative")
        return self._collapse_below(minimum_v)

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def read_bits(self, start: int = 0, count: int | None = None) -> np.ndarray:
        """Copy out ``count`` bits starting at bit index ``start``."""
        self._require_powered("read")
        start, count = self._bit_range(start, count)
        return self._bits[start : start + count].copy()

    def write_bits(self, start: int, values: np.ndarray) -> None:
        """Write a bit vector starting at bit index ``start``."""
        self._require_powered("write")
        values = np.asarray(values, dtype=np.uint8) & 1
        start, count = self._bit_range(start, len(values))
        self._bits[start : start + count] = values

    def read_bytes(self, offset: int = 0, count: int | None = None) -> bytes:
        """Copy out ``count`` bytes starting at byte ``offset``."""
        if count is None:
            count = self.n_bytes - offset
        bits = self.read_bits(offset * 8, count * 8)
        return np.packbits(bits, bitorder="little").tobytes()

    def write_bytes(self, offset: int, data: bytes) -> None:
        """Write ``data`` starting at byte ``offset``."""
        raw = np.frombuffer(bytes(data), dtype=np.uint8)
        bits = np.unpackbits(raw, bitorder="little")
        self.write_bits(offset * 8, bits)

    def fill_bytes(self, value: int) -> None:
        """Fill the whole array with one repeated byte value."""
        self.write_bytes(0, bytes([value & 0xFF]) * self.n_bytes)

    def image(self) -> np.ndarray:
        """Snapshot of the raw bit image (uint8 0/1 array)."""
        return self.read_bits()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _sample_powerup(self) -> np.ndarray:
        return active_engine().powerup(self._rng, self._wake32)

    def _collapse_below(self, voltage: float) -> int:
        engine = active_engine()
        lost = engine.drv_collapse_mask(self._drv, voltage)
        if not lost.any():
            return 0
        fresh = self._sample_powerup()
        self._bits = engine.select(lost, fresh, self._bits)
        count = int(lost.sum())
        if OBS.enabled:
            OBS.counter_inc("sram.cells_below_drv", count, array=self.name)
        return count

    def _require_powered(self, action: str) -> None:
        if not self._powered:
            raise CircuitError(f"{self.name}: cannot {action} while unpowered")

    def _require_voltage(self, voltage: float | None) -> None:
        if voltage is not None and voltage <= 0.0:
            raise CircuitError("supply voltage must be positive")

    def _bit_range(self, start: int, count: int | None) -> tuple[int, int]:
        if count is None:
            count = self._n_bits - start
        if start < 0 or count < 0 or start + count > self._n_bits:
            raise CircuitError(
                f"{self.name}: bit range [{start}, {start + count}) exceeds "
                f"{self._n_bits} bits"
            )
        return start, count
