"""Vectorized numpy cell-physics kernels (the default engine).

Each method is one bulk kernel over a whole array of cells; together
they carry every per-cell physical process in :mod:`repro.circuits`.
The equations each kernel implements, with symbol definitions and the
paper sections they reproduce, are documented equation-by-equation in
``docs/physics.md`` — the generated table there links back to these
functions by file and line.

Numeric contract: every mixed-precision operation is written with
explicit casts (``np.float32(...)``, ``np.float16(...)``) matching
NumPy's value-based promotion of Python scalars against low-precision
arrays, so the per-cell reference implementation
(:mod:`repro.circuits.engine.scalar`) can reproduce each kernel bit
for bit.  Cell state is stored in ``float16`` — sub-millivolt
resolution, far below any physical effect modelled here — and widened
to ``float32`` only inside a kernel.
"""

from __future__ import annotations

import numpy as np


class VectorEngine:
    """Bulk numpy implementation of the cell-physics kernels."""

    #: Engine name recorded in BENCH host metadata.
    name = "vector"

    # ------------------------------------------------------------------
    # Manufacture-time sampling (process variation)
    # ------------------------------------------------------------------

    def gaussian_field(
        self,
        rng: np.random.Generator,
        n: int,
        mean: float,
        sigma: float,
        floor: float,
    ) -> np.ndarray:
        """Sample a per-cell Gaussian parameter field, clipped below.

        Implements ``X_i = max(mu + sigma * Z_i, floor)`` with
        ``Z_i ~ N(0, 1)`` — the DRV and restore-threshold distributions
        of :class:`~repro.circuits.sram.SramParameters`.

        Parameters
        ----------
        rng:
            Source stream; consumes one ``standard_normal(n, float32)``
            bulk draw.
        n:
            Number of cells.
        mean, sigma:
            Distribution location and scale, in volts.
        floor:
            Hard lower clip, in volts (no cell parameter is zero or
            negative).

        Returns
        -------
        numpy.ndarray
            ``float16[n]`` field.
        """
        z = rng.standard_normal(n, dtype=np.float32)
        field = z * np.float32(sigma) + np.float32(mean)
        return field.clip(min=np.float32(floor)).astype(np.float16)

    def lognormal_field(
        self, rng: np.random.Generator, n: int, spread: float
    ) -> np.ndarray:
        """Sample the per-cell lognormal retention multiplier.

        Implements ``s_i = exp(spread * Z_i)`` — the DRAM retention
        spread of :class:`~repro.circuits.dram.DramParameters` (median
        1.0; a small left tail of leaky, early-failing cells).

        Consumes one ``standard_normal(n, float32)`` draw from ``rng``;
        returns a ``float16[n]`` field.
        """
        z = rng.standard_normal(n, dtype=np.float32)
        return np.exp(z * np.float32(spread)).astype(np.float16)

    def wake_field(
        self,
        rng: np.random.Generator,
        n: int,
        noisy_fraction: float,
        epsilon: float,
    ) -> np.ndarray:
        """Sample per-cell power-up-as-1 probabilities.

        Implements the paper's power-up fingerprint model (§2.1): a
        fraction ``noisy_fraction`` of cells is metastable
        (``p_i = 0.5``); the rest are strongly skewed to
        ``p_i = epsilon`` or ``p_i = 1 - epsilon`` with equal
        probability, fixed by transistor mismatch at manufacture.

        Parameters
        ----------
        rng:
            Source stream; consumes ``integers(0, 2, n)`` (skew
            direction) then ``random(n)`` (metastable selection), in
            that order.
        n:
            Number of cells.
        noisy_fraction:
            Fraction of metastable cells, in ``[0, 1]``.
        epsilon:
            Residual flip probability of a strongly-skewed cell.

        Returns
        -------
        numpy.ndarray
            ``float16[n]`` wake probabilities.
        """
        skewed = np.where(
            rng.integers(0, 2, n, dtype=np.uint8) == 1,
            np.float32(1.0 - epsilon),
            np.float32(epsilon),
        )
        noisy = rng.random(n) < noisy_fraction
        return np.where(noisy, np.float32(0.5), skewed).astype(np.float16)

    def uniform_mask(
        self, rng: np.random.Generator, n: int, fraction: float
    ) -> np.ndarray:
        """Mark each cell independently with probability ``fraction``.

        The DRAM anti-cell assignment (a logical 1 stored as an empty
        capacitor).  Consumes one ``random(n)`` (float64) draw; returns
        a ``bool[n]`` mask.
        """
        return rng.random(n) < fraction

    # ------------------------------------------------------------------
    # Power-up fingerprint
    # ------------------------------------------------------------------

    def powerup(
        self, rng: np.random.Generator, wake_p32: np.ndarray
    ) -> np.ndarray:
        """Sample one power-up image from the wake-probability field.

        Implements ``b_i = [U_i < p_i]`` with ``U_i ~ U[0, 1)`` — each
        cold power-up settles skewed cells into their preferred state
        and flips a fresh coin for the metastable ones, which is what
        bounds two power-ups of the same array at a small but non-zero
        fractional Hamming distance (paper Table 1, ~0.10).

        Parameters
        ----------
        rng:
            Source stream; consumes one ``random(n, float32)`` draw.
        wake_p32:
            ``float32[n]`` wake probabilities (the stored ``float16``
            field widened losslessly — callers cache this view).

        Returns
        -------
        numpy.ndarray
            ``uint8[n]`` 0/1 bit image.
        """
        draws = rng.random(len(wake_p32), dtype=np.float32)
        return (draws < wake_p32).astype(np.uint8)

    # ------------------------------------------------------------------
    # Retention thresholds (which cells survive)
    # ------------------------------------------------------------------

    def restore_mask(
        self, node_v: float, thresholds: np.ndarray
    ) -> np.ndarray:
        """Cells whose decayed node voltage still recovers their state.

        Implements ``r_i = [V_node(t) > V_restore,i]``: on power
        restore after an unpowered interval, a cell recovers its old
        value iff its storage node sits above the cell's restore
        threshold (paper §3 / cold-boot regime).

        Parameters
        ----------
        node_v:
            The decayed node voltage ``V0 * exp(-t / tau(T))``, volts.
            Compared at ``float16`` precision, matching the stored
            threshold field.
        thresholds:
            ``float16[n]`` per-cell restore thresholds.

        Returns
        -------
        numpy.ndarray
            ``bool[n]`` retained mask.
        """
        return np.float16(node_v) > thresholds

    def drv_collapse_mask(
        self, drv: np.ndarray, supply_v: float
    ) -> np.ndarray:
        """Cells whose DRV the (sagged) supply undercuts.

        Implements ``c_i = [DRV_i > V_supply]`` — the Volt Boot core
        mechanism (paper §2.1): a powered cell keeps state only while
        its supply exceeds the cell's data retention voltage.

        ``drv`` is the ``float16[n]`` DRV field; ``supply_v`` is the
        applied voltage in volts (compared at ``float16`` precision).
        Returns a ``bool[n]`` collapse mask.
        """
        return drv > np.float16(supply_v)

    def charge_mask(self, level: np.ndarray) -> np.ndarray:
        """DRAM cells whose remaining charge still reads correctly.

        Implements ``r_i = [L_i > 1/2]``: the sense amplifier resolves
        a cell against the half-charge reference, so a decayed-below-
        half cell reads as its ground state (paper §3's cold-boot
        substrate).  ``level`` is the ``float16[n]`` normalised charge;
        returns a ``bool[n]`` retained mask.
        """
        return level > np.float16(0.5)

    # ------------------------------------------------------------------
    # Charge decay
    # ------------------------------------------------------------------

    def charge_decay(
        self,
        level: np.ndarray,
        seconds: float,
        tau_s: float,
        scale32: np.ndarray,
    ) -> np.ndarray:
        """Decay per-cell DRAM charge for one unpowered interval.

        Implements ``L_i(t + dt) = L_i(t) * exp(-dt / (tau(T) * s_i))``
        — Arrhenius capacitor leakage with the per-cell lognormal
        retention multiplier ``s_i`` (:func:`lognormal_field`).  The
        ``tau(T) = A * exp(B / T)`` temperature dependence lives in
        :class:`~repro.circuits.leakage.ArrheniusDecay`; this kernel
        receives the evaluated ``tau_s``.

        Parameters
        ----------
        level:
            ``float16[n]`` normalised charge in ``[0, 1]``.
        seconds:
            Unpowered interval ``dt``, seconds.
        tau_s:
            Technology time constant at the soak temperature, seconds.
        scale32:
            ``float32[n]`` per-cell retention multipliers (the stored
            ``float16`` field widened losslessly — callers cache this
            view so repeated decay steps allocate no conversions).

        Returns
        -------
        numpy.ndarray
            ``float16[n]`` decayed charge.
        """
        factor = np.exp(np.float32(-seconds) / (np.float32(tau_s) * scale32))
        return (level.astype(np.float32) * factor).astype(np.float16)

    # ------------------------------------------------------------------
    # Selection and aging
    # ------------------------------------------------------------------

    def select(
        self, mask: np.ndarray, when_true: np.ndarray, when_false: np.ndarray
    ) -> np.ndarray:
        """Per-cell two-way select: ``out_i = t_i if m_i else f_i``.

        The composition step of every decay event: retained cells keep
        their bits, the rest take the power-up fingerprint (SRAM) or
        ground state (DRAM).  All arrays are length ``n``; returns a
        fresh ``uint8[n]`` image.
        """
        return np.where(mask, when_true, when_false)

    def age_wake(
        self,
        wake_p: np.ndarray,
        bits: np.ndarray,
        shift: float,
        lo: float,
        hi: float,
    ) -> np.ndarray:
        """Imprint held data into the wake-probability field (NBTI).

        Implements ``p_i' = clip(p_i + (2 b_i - 1) * shift, lo, hi)`` —
        bias temperature instability drags a cell's power-up preference
        toward the value it holds (paper §9.2's decade-scale
        data-imprinting attacks).

        Parameters
        ----------
        wake_p:
            ``float16[n]`` wake probabilities.
        bits:
            ``uint8[n]`` currently-held image.
        shift:
            Probability shift for this aging interval (already scaled
            by years and duty cycle; ``float32`` precision).
        lo, hi:
            Clip bounds keeping every cell minimally bistable.

        Returns
        -------
        numpy.ndarray
            ``float16[n]`` aged wake probabilities.
        """
        direction = bits.astype(np.float32) * np.float32(2.0) - np.float32(1.0)
        aged = wake_p.astype(np.float32) + direction * np.float32(shift)
        return aged.clip(np.float32(lo), np.float32(hi)).astype(np.float16)

    # ------------------------------------------------------------------
    # Debug-read errors and majority voting
    # ------------------------------------------------------------------

    def flip_mask(
        self, rng: np.random.Generator, n_bytes: int, rate: float
    ) -> tuple[np.ndarray, int]:
        """Sample a packed per-bit read-error mask.

        Implements ``f_j = [U_j < rate]`` over ``8 * n_bytes`` bits —
        the i.i.d. Bernoulli error model of imperfect JTAG/CP15 dumps
        (:class:`~repro.soc.readnoise.BitErrorModel`).

        Parameters
        ----------
        rng:
            Source stream; consumes one ``random(8 * n_bytes)``
            (float64) draw regardless of how many bits flip.
        n_bytes:
            Read length in bytes.
        rate:
            Per-bit flip probability, in ``[0, 0.5)``.

        Returns
        -------
        tuple[numpy.ndarray, int]
            ``(mask, flipped)``: a ``uint8[n_bytes]`` XOR mask with
            bits packed little-endian within each byte, and the number
            of set bits.
        """
        flips = rng.random(n_bytes * 8) < rate
        flipped = int(np.count_nonzero(flips))
        mask = np.packbits(flips, bitorder="little").astype(np.uint8)
        return mask, flipped

    def vote_counts(self, reads: list[bytes], length: int) -> np.ndarray:
        """Per-bit ones count across ``k`` equal-length reads.

        The counting core of majority-vote decoding
        (:func:`repro.resilience.vote.majority_vote`): for each bit
        position ``j`` of the ``8 * length``-bit image, how many of the
        ``k`` reads saw a 1.  The caller derives the majority image
        (``2 * ones_j > k``) and the per-bit vote margin from the
        counts.

        Bits are unpacked little-endian within each byte, matching the
        array accessors' byte order.  Returns ``int64[8 * length]``.
        """
        k = len(reads)
        stacked = np.empty((k, length * 8), dtype=np.uint8)
        for row, read in enumerate(reads):
            stacked[row] = np.unpackbits(
                np.frombuffer(read, dtype=np.uint8), bitorder="little"
            )
        return stacked.sum(axis=0, dtype=np.int64)
