"""The cell-physics engine: bulk kernels behind the memory arrays.

Every per-cell physical process the circuits layer models — DRV and
wake-probability sampling, Arrhenius charge decay, power-up
fingerprinting, supply-collapse, debug-read bit errors, majority-vote
decoding — funnels through one of the kernels defined here.  Two
interchangeable implementations exist:

* :class:`~repro.circuits.engine.vector.VectorEngine` — the default:
  numpy bulk array kernels, the "as fast as the hardware allows" path.
* :class:`~repro.circuits.engine.scalar.ScalarEngine` — a per-cell
  Python reference implementation kept for differential testing.  It
  consumes the *same* RNG draws in the same order and reproduces the
  vector kernels bit for bit (see ``docs/physics.md`` §"Scalar vs
  vectorized equivalence"), at a 10-100x wall-clock penalty.

Selection is process-wide: the ``REPRO_SCALAR_PHYSICS`` environment
variable picks the scalar path (the escape hatch the golden-manifest
equivalence tests flip), and :func:`forced_engine` overrides it for a
scoped block in-process.  Because the two engines are bit-identical,
the selection can never change an experiment result — only its speed —
so manifests stay byte-reproducible whichever engine produced them.

The RNG-stream contract
-----------------------
A kernel that samples randomness always draws **bulk numpy arrays**
from the generator it is handed (``rng.random(n, dtype=...)``,
``rng.standard_normal(n, dtype=...)``, ``rng.integers(...)``) — never
per-cell scalars — so both engines advance the stream identically and
stay interchangeable mid-experiment.  Kernels never construct or spawn
generators; stream ownership stays with the caller
(:mod:`repro.rng`).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from ...errors import CalibrationError
from .scalar import ScalarEngine
from .vector import VectorEngine

#: Environment variable selecting the scalar reference engine when set
#: to anything but the empty string or ``"0"``.  Read per call, so a
#: forked/spawned ``repro.exec`` worker inherits the parent's choice.
SCALAR_ENV = "REPRO_SCALAR_PHYSICS"

#: The two engine singletons, by name.  Engines are stateless, so one
#: instance of each serves the whole process.
ENGINES = {
    "vector": VectorEngine(),
    "scalar": ScalarEngine(),
}

#: In-process override installed by :func:`forced_engine` (tests, the
#: differential bench workload); ``None`` defers to the environment.
_FORCED: str | None = None


def engine_name() -> str:
    """The name of the engine new kernel calls will use.

    Returns
    -------
    str
        ``"scalar"`` when :func:`forced_engine` or the
        ``REPRO_SCALAR_PHYSICS`` environment variable selects the
        reference path, else ``"vector"``.
    """
    if _FORCED is not None:
        return _FORCED
    if os.environ.get(SCALAR_ENV, "") not in ("", "0"):
        return "scalar"
    return "vector"


def active_engine():
    """The engine singleton every circuits kernel call goes through.

    Looked up per call (an :data:`os.environ` read, ~100 ns) so the
    selection is honoured even by arrays constructed before the
    environment changed — arrays hold no engine reference.
    """
    return ENGINES[engine_name()]


@contextmanager
def forced_engine(name: str) -> Iterator[None]:
    """Force one engine for the enclosed block, ignoring the environment.

    Parameters
    ----------
    name:
        ``"vector"`` or ``"scalar"``.

    Notes
    -----
    The override is process-local module state: it does **not**
    propagate to ``repro.exec`` worker processes.  Cross-process runs
    (``--jobs N``) must use the ``REPRO_SCALAR_PHYSICS`` environment
    variable instead, which child processes inherit.
    """
    global _FORCED
    if name not in ENGINES:
        raise CalibrationError(
            f"unknown physics engine {name!r}; expected one of "
            f"{sorted(ENGINES)}"
        )
    previous = _FORCED
    _FORCED = name
    try:
        yield
    finally:
        _FORCED = previous


__all__ = [
    "ENGINES",
    "SCALAR_ENV",
    "ScalarEngine",
    "VectorEngine",
    "active_engine",
    "engine_name",
    "forced_engine",
]
