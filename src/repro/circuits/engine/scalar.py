"""Per-cell scalar reference implementation of the physics kernels.

The differential-testing half of the engine pair: every kernel here
walks the cells one by one in plain Python and must reproduce
:class:`~repro.circuits.engine.vector.VectorEngine` **bit for bit** —
the golden-manifest equivalence tests and the Hypothesis differential
properties in ``tests/circuits/test_engine.py`` pin that contract.
Select it with ``REPRO_SCALAR_PHYSICS=1`` (or
:func:`~repro.circuits.engine.forced_engine`); expect a 10-100x
wall-clock penalty (``docs/perf.md``).

How bit-equality is achieved
----------------------------
* **RNG draws are bulk**, identical to the vector kernels (the
  engine-wide stream contract) — only the per-cell *arithmetic* is
  scalar.
* **IEEE-754 single roundings are replicated exactly.**  A product or
  sum of two ``float32`` values is exact in ``float64`` (<= 48
  significand bits), so rounding the Python-float result back to
  ``float32`` (:func:`_f32`) is the same single rounding the vector
  kernel performs.  Comparisons against ``float16``/``float32`` fields
  happen on exact ``float64`` liftings after pre-rounding the scalar
  operand to the field's precision, mirroring NumPy's value-based
  promotion.
* **Division and ``exp`` go through NumPy scalars.**  A ``float64``
  divide rounded to ``float32`` can double-round, and NumPy's
  ``float32`` ``exp`` is not the ``float64`` one rounded — so those
  two operations call the same ufunc the vector kernel uses, on 0-d
  operands, which NumPy evaluates with the identical per-element
  algorithm.
"""

from __future__ import annotations

import struct

import numpy as np

_PACK_F32 = struct.Struct("f")
_PACK_F16 = struct.Struct("e")


def _f32(value: float) -> float:
    """Round a Python float to ``float32`` precision (exact lifting)."""
    return _PACK_F32.unpack(_PACK_F32.pack(value))[0]


def _f16(value: float) -> float:
    """Round a Python float to ``float16`` precision (exact lifting)."""
    return _PACK_F16.unpack(_PACK_F16.pack(value))[0]


class ScalarEngine:
    """Per-cell Python implementation of the cell-physics kernels.

    Kernel semantics, parameters, and RNG consumption are identical to
    :class:`~repro.circuits.engine.vector.VectorEngine` — see that
    class (and ``docs/physics.md``) for the physics; this class
    documents only where the scalar evaluation strategy is subtle.
    """

    #: Engine name recorded in BENCH host metadata.
    name = "scalar"

    # ------------------------------------------------------------------
    # Manufacture-time sampling
    # ------------------------------------------------------------------

    def gaussian_field(
        self,
        rng: np.random.Generator,
        n: int,
        mean: float,
        sigma: float,
        floor: float,
    ) -> np.ndarray:
        """Per-cell ``max(mu + sigma * Z_i, floor)`` at float32/float16.

        Both roundings (``float32`` multiply-add chain, final
        ``float16`` store) are single roundings of exactly-held
        ``float64`` intermediates, so each cell matches the vector
        kernel bitwise.
        """
        z = rng.standard_normal(n, dtype=np.float32).tolist()
        sigma32, mean32, floor32 = _f32(sigma), _f32(mean), _f32(floor)
        return np.array(
            [
                _f16(max(_f32(_f32(zi * sigma32) + mean32), floor32))
                for zi in z
            ],
            dtype=np.float16,
        )

    def lognormal_field(
        self, rng: np.random.Generator, n: int, spread: float
    ) -> np.ndarray:
        """Per-cell ``exp(spread * Z_i)``, delegating ``exp`` to numpy.

        The exponent ``spread * Z_i`` is a pure-Python single rounding;
        the transcendental goes through ``np.exp`` on a 0-d ``float32``
        so the vector kernel's ufunc evaluates it.
        """
        z = rng.standard_normal(n, dtype=np.float32).tolist()
        spread32 = _f32(spread)
        return np.array(
            [
                _f16(float(np.exp(np.float32(_f32(zi * spread32)))))
                for zi in z
            ],
            dtype=np.float16,
        )

    def wake_field(
        self,
        rng: np.random.Generator,
        n: int,
        noisy_fraction: float,
        epsilon: float,
    ) -> np.ndarray:
        """Per-cell wake probability: metastable 0.5 or skewed rails."""
        skew_draws = rng.integers(0, 2, n, dtype=np.uint8).tolist()
        noisy_draws = rng.random(n).tolist()
        hi, lo = _f32(1.0 - epsilon), _f32(epsilon)
        return np.array(
            [
                _f16(
                    0.5
                    if noisy < noisy_fraction
                    else (hi if skew == 1 else lo)
                )
                for skew, noisy in zip(skew_draws, noisy_draws)
            ],
            dtype=np.float16,
        )

    def uniform_mask(
        self, rng: np.random.Generator, n: int, fraction: float
    ) -> np.ndarray:
        """Per-cell Bernoulli mark (exact float64 comparison)."""
        return np.array(
            [draw < fraction for draw in rng.random(n).tolist()],
            dtype=np.bool_,
        )

    # ------------------------------------------------------------------
    # Power-up fingerprint
    # ------------------------------------------------------------------

    def powerup(
        self, rng: np.random.Generator, wake_p32: np.ndarray
    ) -> np.ndarray:
        """Per-cell ``[U_i < p_i]`` on exact float64 liftings."""
        draws = rng.random(len(wake_p32), dtype=np.float32).tolist()
        probabilities = wake_p32.tolist()
        return np.array(
            [
                1 if draw < p else 0
                for draw, p in zip(draws, probabilities)
            ],
            dtype=np.uint8,
        )

    # ------------------------------------------------------------------
    # Retention thresholds
    # ------------------------------------------------------------------

    def restore_mask(
        self, node_v: float, thresholds: np.ndarray
    ) -> np.ndarray:
        """``[V_node > V_restore,i]`` with ``V_node`` pre-rounded to f16.

        NumPy compares a Python scalar against a ``float16`` array at
        ``float16`` precision (value-based promotion); pre-rounding the
        node voltage reproduces that, after which the float64 lifting
        of both sides is exact.
        """
        node16 = _f16(node_v)
        return np.array(
            [node16 > threshold for threshold in thresholds.tolist()],
            dtype=np.bool_,
        )

    def drv_collapse_mask(
        self, drv: np.ndarray, supply_v: float
    ) -> np.ndarray:
        """``[DRV_i > V_supply]`` with the supply pre-rounded to f16."""
        supply16 = _f16(supply_v)
        return np.array(
            [cell_drv > supply16 for cell_drv in drv.tolist()],
            dtype=np.bool_,
        )

    def charge_mask(self, level: np.ndarray) -> np.ndarray:
        """``[L_i > 1/2]`` — 0.5 is exact at every precision."""
        return np.array(
            [cell_level > 0.5 for cell_level in level.tolist()],
            dtype=np.bool_,
        )

    # ------------------------------------------------------------------
    # Charge decay
    # ------------------------------------------------------------------

    def charge_decay(
        self,
        level: np.ndarray,
        seconds: float,
        tau_s: float,
        scale32: np.ndarray,
    ) -> np.ndarray:
        """Per-cell ``L_i * exp(-dt / (tau * s_i))``.

        The ``tau * s_i`` product and the final two roundings are exact
        pure-Python single roundings; the ``float32`` division and
        ``exp`` go through NumPy 0-d scalars (see the module notes on
        double rounding).
        """
        neg_dt = np.float32(-seconds)
        tau32 = _f32(tau_s)
        scales = scale32.tolist()
        levels = level.tolist()
        out = []
        for cell_level, cell_scale in zip(levels, scales):
            exponent = neg_dt / np.float32(_f32(tau32 * cell_scale))
            factor = float(np.exp(exponent))
            out.append(_f16(_f32(cell_level * factor)))
        return np.array(out, dtype=np.float16)

    # ------------------------------------------------------------------
    # Selection and aging
    # ------------------------------------------------------------------

    def select(
        self, mask: np.ndarray, when_true: np.ndarray, when_false: np.ndarray
    ) -> np.ndarray:
        """Per-cell two-way select."""
        return np.array(
            [
                t if m else f
                for m, t, f in zip(
                    mask.tolist(), when_true.tolist(), when_false.tolist()
                )
            ],
            dtype=when_true.dtype,
        )

    def age_wake(
        self,
        wake_p: np.ndarray,
        bits: np.ndarray,
        shift: float,
        lo: float,
        hi: float,
    ) -> np.ndarray:
        """Per-cell ``clip(p_i + (2 b_i - 1) * shift, lo, hi)``.

        ``(2 b_i - 1) * shift`` is exactly ``+-shift`` (no rounding),
        so the add is the only inexact step before the clip.
        """
        shift32 = _f32(shift)
        lo32, hi32 = _f32(lo), _f32(hi)
        return np.array(
            [
                _f16(
                    min(
                        max(
                            _f32(p + (shift32 if bit else -shift32)), lo32
                        ),
                        hi32,
                    )
                )
                for p, bit in zip(
                    wake_p.astype(np.float32).tolist(), bits.tolist()
                )
            ],
            dtype=np.float16,
        )

    # ------------------------------------------------------------------
    # Debug-read errors and majority voting
    # ------------------------------------------------------------------

    def flip_mask(
        self, rng: np.random.Generator, n_bytes: int, rate: float
    ) -> tuple[np.ndarray, int]:
        """Per-bit Bernoulli mask, packed little-endian in Python."""
        draws = rng.random(n_bytes * 8).tolist()
        mask = bytearray(n_bytes)
        flipped = 0
        for bit_index, draw in enumerate(draws):
            if draw < rate:
                mask[bit_index >> 3] |= 1 << (bit_index & 7)
                flipped += 1
        return np.frombuffer(bytes(mask), dtype=np.uint8), flipped

    def vote_counts(self, reads: list[bytes], length: int) -> np.ndarray:
        """Per-bit ones count via an explicit bit loop."""
        counts = [0] * (length * 8)
        for read in reads:
            for byte_index in range(length):
                byte = read[byte_index]
                base = byte_index * 8
                for bit in range(8):
                    counts[base + bit] += (byte >> bit) & 1
        return np.array(counts, dtype=np.int64)
