"""Temperature-dependent charge-decay models.

When a memory cell loses its supply, its storage node discharges through
parasitic leakage paths.  Leakage current is strongly
temperature-dependent (it is dominated by subthreshold conduction and
junction leakage, both roughly Arrhenius in T), so the node's decay time
constant grows exponentially as the die is cooled.  That single fact is
the entire basis of cold boot attacks — and the reason they fail on SRAM
at achievable temperatures (paper §3).

We model the storage-node voltage of an unpowered cell as

    V(t) = V0 * exp(-t / tau(T)),        tau(T) = A * exp(B / T)

with per-technology constants ``A`` (seconds) and ``B`` (kelvin).

Calibration targets (see DESIGN.md):

* SRAM: ~80 % bit retention after 20 ms at −110 °C and ~0 % after a few
  milliseconds at −40 °C, matching Anagnostopoulos et al. (paper ref [2]);
  tau at room temperature is a few tens of microseconds, so a manual
  battery pull (hundreds of ms) always loses everything.
* DRAM: seconds of retention at room temperature and minutes below
  −50 °C, the Halderman et al. regime (paper ref [17]).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CalibrationError
from ..units import celsius_to_kelvin, nanoseconds


@dataclass(frozen=True)
class ArrheniusDecay:
    """Exponential node decay with an Arrhenius time constant.

    Parameters
    ----------
    prefactor_s:
        ``A`` in ``tau(T) = A * exp(B / T)``, in seconds.
    activation_k:
        ``B`` in kelvin (activation energy over Boltzmann's constant).
    name:
        Label used in reports.
    """

    prefactor_s: float
    activation_k: float
    name: str = "decay"

    def __post_init__(self) -> None:
        if self.prefactor_s <= 0.0:
            raise CalibrationError("decay prefactor must be positive")
        if self.activation_k <= 0.0:
            raise CalibrationError("activation temperature must be positive")

    def time_constant(self, temperature_k: float) -> float:
        """Decay time constant ``tau(T) = A * exp(B / T)``.

        Parameters
        ----------
        temperature_k:
            Absolute temperature in kelvin (> 0).

        Returns
        -------
        float
            ``tau`` in seconds.
        """
        if temperature_k <= 0.0:
            raise CalibrationError("absolute temperature must be > 0 K")
        return self.prefactor_s * float(np.exp(self.activation_k / temperature_k))

    def time_constant_celsius(self, celsius: float) -> float:
        """Convenience wrapper taking a Celsius temperature."""
        return self.time_constant(celsius_to_kelvin(celsius))

    def surviving_fraction(self, off_time_s: float, temperature_k: float) -> float:
        """Fraction ``V(t)/V0 = exp(-t / tau(T))`` remaining after ``t``.

        Parameters
        ----------
        off_time_s:
            Unpowered interval ``t`` in seconds (>= 0).
        temperature_k:
            Soak temperature in kelvin.

        Returns
        -------
        float
            The surviving node-voltage fraction in ``(0, 1]``.
        """
        if off_time_s < 0.0:
            raise CalibrationError("off time cannot be negative")
        tau = self.time_constant(temperature_k)
        return float(np.exp(-off_time_s / tau))

    def decay_voltages(
        self,
        initial_v: np.ndarray | float,
        off_time_s: float,
        temperature_k: float,
    ) -> np.ndarray:
        """Vectorised node-voltage decay for an array of initial voltages.

        Parameters
        ----------
        initial_v:
            Initial voltages ``V0`` in volts (scalar or array).
        off_time_s, temperature_k:
            As for :meth:`surviving_fraction`.

        Returns
        -------
        numpy.ndarray
            ``float64`` decayed voltages ``V0 * exp(-t / tau(T))``.
        """
        fraction = self.surviving_fraction(off_time_s, temperature_k)
        return np.asarray(initial_v, dtype=np.float64) * fraction


#: SRAM storage-node decay, calibrated per DESIGN.md.
SRAM_DECAY = ArrheniusDecay(
    prefactor_s=nanoseconds(20.0), activation_k=2145.0, name="sram-6t"
)

#: DRAM capacitor decay, calibrated per DESIGN.md.
DRAM_DECAY = ArrheniusDecay(
    prefactor_s=nanoseconds(115.0), activation_k=5000.0, name="dram-1t1c"
)
