"""Power Management IC model: regulators feeding the board's rails.

Paper Figure 4: a PMIC converts the board's main input (USB-C, battery)
into several regulated rails.  LDOs feed low-fluctuation domains; buck
converters feed domains with heavy dynamic loads (CPU clusters under
DVFS).  From the attack's perspective the essential behaviours are:

* every rail dies when the PMIC's *input* is disconnected — that is the
  "abrupt power cut" of the attack;
* rails are brought up in a defined *sequence* at boot;
* each rail has a nominal output voltage the attacker can measure at a
  test pad before cloning it with a bench supply.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CalibrationError, PowerError


@dataclass
class Regulator:
    """A single PMIC output rail.

    Parameters
    ----------
    name:
        Rail name as it appears in the board schematic (e.g. ``VDD_CORE``).
    nominal_v:
        Regulated output voltage.
    max_current_a:
        Current the regulator can source before folding back.
    kind:
        ``"ldo"`` or ``"buck"`` — informational, used in reports and in
        probe-planning heuristics (buck rails carry LC filters, LDO rails
        carry plain decoupling caps; both give probe points).
    """

    name: str
    nominal_v: float
    max_current_a: float = 1.0
    kind: str = "ldo"
    enabled: bool = False

    def __post_init__(self) -> None:
        if self.nominal_v <= 0.0:
            raise CalibrationError(f"{self.name}: nominal voltage must be positive")
        if self.max_current_a <= 0.0:
            raise CalibrationError(f"{self.name}: max current must be positive")
        if self.kind not in ("ldo", "buck"):
            raise CalibrationError(f"{self.name}: kind must be 'ldo' or 'buck'")

    def output_voltage(self, input_present: bool) -> float:
        """Rail voltage given the PMIC input state."""
        return self.nominal_v if (self.enabled and input_present) else 0.0


def Ldo(name: str, nominal_v: float, max_current_a: float = 0.5) -> Regulator:
    """Build a low-dropout regulator rail."""
    return Regulator(name, nominal_v, max_current_a, kind="ldo")


def BuckConverter(name: str, nominal_v: float, max_current_a: float = 3.0) -> Regulator:
    """Build a switching (buck) regulator rail."""
    return Regulator(name, nominal_v, max_current_a, kind="buck")


@dataclass
class Pmic:
    """A PMIC: an input supply plus an ordered set of output rails."""

    name: str = "pmic"
    rails: dict[str, Regulator] = field(default_factory=dict)
    power_sequence: list[str] = field(default_factory=list)
    input_present: bool = False

    def add_rail(self, regulator: Regulator) -> Regulator:
        """Register an output rail; sequence order follows registration."""
        if regulator.name in self.rails:
            raise PowerError(f"{self.name}: duplicate rail {regulator.name!r}")
        self.rails[regulator.name] = regulator
        self.power_sequence.append(regulator.name)
        return regulator

    def rail(self, name: str) -> Regulator:
        """Look up a rail by schematic name."""
        try:
            return self.rails[name]
        except KeyError:
            raise PowerError(f"{self.name}: unknown rail {name!r}") from None

    def connect_input(self) -> None:
        """Plug in the main supply and run the power-up sequence."""
        self.input_present = True
        for rail_name in self.power_sequence:
            self.rails[rail_name].enabled = True

    def disconnect_input(self) -> None:
        """Abruptly cut the main supply.  Every rail output collapses.

        This models physically pulling the USB-C cable / battery — the
        only power-cycle method that defeats software purge routines
        (paper §3).
        """
        self.input_present = False

    def rail_voltage(self, name: str) -> float:
        """Present output voltage of a rail."""
        return self.rail(name).output_voltage(self.input_present)

    def describe(self) -> list[dict[str, object]]:
        """Tabular description of the rails (for reports)."""
        return [
            {
                "rail": r.name,
                "kind": r.kind,
                "nominal_v": r.nominal_v,
                "max_current_a": r.max_current_a,
                "enabled": r.enabled,
                "live": r.output_voltage(self.input_present) > 0.0,
            }
            for r in self.rails.values()
        ]
