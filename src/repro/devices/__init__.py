"""Concrete victim devices: the paper's three evaluation platforms.

Builders return fully-wired :class:`~repro.soc.board.Board` instances
matching paper Tables 2 and 3:

* :func:`raspberry_pi_4` — BCM2711, 4×Cortex-A72, probe pad TP15 on
  VDD_CORE at 0.8 V; targets: L1D, L1I, registers.
* :func:`raspberry_pi_3` — BCM2837, 4×Cortex-A53, probe pad PP58 on
  VDD_CORE at 1.2 V; targets: L1D, L1I, registers.
* :func:`imx53_qsb` — i.MX535, 1×Cortex-A8, probe pad SH13 on VDDAL1 at
  1.3 V; target: 128 KB iRAM.

:func:`glitch_rig` builds a fourth, non-paper board: the small
decoupling-stripped bench target of the :mod:`repro.glitch`
fault-injection campaigns (pad TPG1 on VDD_CORE at 0.8 V).

Each accepts countermeasure toggles (TrustZone enforcement, MBIST,
authenticated-boot fusing) used by the §8 experiments.
"""

from .builders import (
    build_device,
    glitch_rig,
    imx53_qsb,
    raspberry_pi_3,
    raspberry_pi_4,
)
from .registry import DEVICES, DeviceInfo, device_info, platform_table, probe_table

__all__ = [
    "raspberry_pi_4",
    "raspberry_pi_3",
    "imx53_qsb",
    "glitch_rig",
    "build_device",
    "DEVICES",
    "DeviceInfo",
    "device_info",
    "platform_table",
    "probe_table",
]
