"""Builders for the three evaluation boards.

Each builder wires the full stack: DRAM + memory map, SoC (caches,
register files, iRAM, boot ROM, VideoCore), PMIC rails, PDN nets and test
pads, power domains, and the shared event clock.  Geometry and rail facts
follow the paper's Table 2/3 and the respective TRMs.

Countermeasure toggles (``trustzone_enforced``, ``mbist_enabled``,
``auth_boot``) exist so the §8 survey can measure each defense on
otherwise-identical hardware.
"""

from __future__ import annotations

from ..circuits.dram import DramArray
from ..circuits.passives import (
    DecouplingNetwork,
    DisconnectSurge,
    SupplyLineParasitics,
)
from ..circuits.pdn import NetKind, PowerDeliveryNetwork
from ..circuits.pmic import BuckConverter, Ldo, Pmic
from ..errors import AttackError
from ..power.events import PowerEventLog
from ..rng import DEFAULT_SEED, SeedSequenceFactory
from ..soc.board import Board
from ..soc.bootrom import BootRom, ClobberRegion
from ..soc.cache import CacheGeometry
from ..soc.memory_map import MainMemory, MemoryMap
from ..soc.soc import DomainSpec, Soc, SocConfig
from ..units import kib, microfarads, microseconds, milliamps, nanofarads

#: Simulated main-memory size.  Real boards carry gigabytes; the
#: workloads of the paper (cache-sized arrays, small binaries) need far
#: less, and every DRAM byte costs simulation memory.
DRAM_BYTES = kib(512)

#: Surge profile of a rail feeding a hungry CPU cluster (paper §6: the
#: cores momentarily draw their supply from the probe on disconnect).
CORE_SURGE = DisconnectSurge(peak_current_a=2.0, duration_s=microseconds(20),
                             settle_current_a=milliamps(8))

#: Surge profile of a memory-only rail (the i.MX53's iRAM domain does not
#: feed the CPU — the core draws through VCCGP instead).
MEMORY_SURGE = DisconnectSurge(peak_current_a=0.25, duration_s=microseconds(20),
                               settle_current_a=milliamps(2))

#: Aggregate decoupling on a core rail.  47 uF holds the rail through a
#: 20 us surge only when the probe covers most of the current — an
#: under-sized probe lets the rail dip below cell DRVs (the probe-sweep
#: ablation).
CORE_DECOUPLING_F = microfarads(47)


def _finish_board(
    name: str,
    config: SocConfig,
    pmic: Pmic,
    nets: list[tuple[str, NetKind, str]],
    pads: list[tuple[str, str, str]],
    seed: int,
    dram_bytes: int = DRAM_BYTES,
    core_decoupling_f: float = CORE_DECOUPLING_F,
) -> Board:
    """Assemble the shared tail of every builder."""
    seeds = SeedSequenceFactory(seed)
    log = PowerEventLog()
    dram = DramArray(
        dram_bytes * 8, rng=seeds.generator("dram"), name=f"{name}.dram"
    )
    memory_map = MemoryMap()
    main_memory = MainMemory(dram, base_addr=0)
    memory_map.add_region("dram", 0, dram_bytes, main_memory)
    soc = Soc(config, memory_map, dram, seeds.child("soc"), log)

    pdn = PowerDeliveryNetwork(pmic)
    for net_name, kind, rail in nets:
        capacitance = (
            core_decoupling_f if kind is NetKind.CORE else 100e-6
        )
        pdn.add_net(
            net_name,
            kind,
            rail,
            decoupling=DecouplingNetwork(capacitance_f=capacitance),
            parasitics=SupplyLineParasitics(),
        )
    for domain_spec in config.domains:
        pdn.attach_domain(domain_spec.name, domain_spec.name)
    for pad_name, net_name, description in pads:
        pdn.add_test_pad(pad_name, net_name, description)

    board = Board(
        name, soc, pmic, pdn, main_memory, seeds.child("board"), log,
        root_seed=seed,
    )
    board.plug_in()
    return board


def raspberry_pi_4(
    seed: int = DEFAULT_SEED,
    trustzone_enforced: bool = False,
    mbist_enabled: bool = False,
    auth_boot: bool = False,
    l1_replacement: str = "lru",
) -> Board:
    """Build a powered Raspberry Pi 4 (BCM2711, 4×Cortex-A72).

    L1D: 32 KB 2-way; L1I: 48 KB 3-way; shared 1 MB L2 clobbered by the
    VideoCore at boot.  Probe pad TP15 rides VDD_CORE at 0.8 V.
    """
    pmic = Pmic(name="MxL7704")
    pmic.add_rail(BuckConverter("VDD_CORE", 0.8, max_current_a=6.0))
    pmic.add_rail(BuckConverter("VDD_SOC", 1.1, max_current_a=4.0))
    pmic.add_rail(BuckConverter("DDR_VDDQ", 1.1, max_current_a=2.0))
    pmic.add_rail(Ldo("VDD_IO", 3.3, max_current_a=0.5))

    config = SocConfig(
        name="BCM2711",
        cpu_name="Cortex-A72",
        core_count=4,
        l1d_geometry=CacheGeometry(size_bytes=kib(32), ways=2, line_bytes=64),
        l1i_geometry=CacheGeometry(size_bytes=kib(48), ways=3, line_bytes=64),
        l2_geometry=CacheGeometry(size_bytes=kib(1024), ways=16, line_bytes=64),
        l2_shared_with_videocore=True,
        domains=(
            DomainSpec(
                "VDD_CORE", 0.8, ("l1-caches", "registers"), surge=CORE_SURGE
            ),
            DomainSpec("VDD_SOC", 1.1, ("l2",), surge=MEMORY_SURGE),
            DomainSpec("DDR_VDDQ", 1.1, ("dram",), surge=MEMORY_SURGE),
        ),
        bootrom=BootRom(
            name="bcm2711.bootrom", internal_boot=False, auth_fused=auth_boot
        ),
        trustzone_enforced=trustzone_enforced,
        mbist_enabled=mbist_enabled,
        l1_replacement=l1_replacement,
    )

    nets = [
        ("VDD_CORE", NetKind.CORE, "VDD_CORE"),
        ("VDD_SOC", NetKind.MEMORY, "VDD_SOC"),
        ("DDR_VDDQ", NetKind.MEMORY, "DDR_VDDQ"),
        ("VDD_IO", NetKind.IO, "VDD_IO"),
    ]
    pads = [
        ("TP15", "VDD_CORE", "core-rail test pad near the PMIC"),
        ("TP7", "VDD_SOC", "SoC-rail decoupling cap lead"),
        ("TP2", "VDD_IO", "3.3V IO rail test pad"),
    ]
    return _finish_board("raspberry-pi-4", config, pmic, nets, pads, seed)


def raspberry_pi_3(
    seed: int = DEFAULT_SEED,
    trustzone_enforced: bool = False,
    mbist_enabled: bool = False,
    auth_boot: bool = False,
) -> Board:
    """Build a powered Raspberry Pi 3 (BCM2837, 4×Cortex-A53).

    L1D: 32 KB 4-way; L1I: 32 KB 2-way with the vendor-private
    instruction+ECC bit interleave of paper footnote 4; shared 512 KB L2.
    Probe pad PP58 rides VDD_CORE at 1.2 V.
    """
    pmic = Pmic(name="rpi3-pmu")
    pmic.add_rail(BuckConverter("VDD_CORE", 1.2, max_current_a=5.0))
    pmic.add_rail(BuckConverter("VDD_SOC", 1.2, max_current_a=3.0))
    pmic.add_rail(BuckConverter("DDR_VDDQ", 1.2, max_current_a=2.0))
    pmic.add_rail(Ldo("VDD_IO", 3.3, max_current_a=0.5))

    config = SocConfig(
        name="BCM2837",
        cpu_name="Cortex-A53",
        core_count=4,
        l1d_geometry=CacheGeometry(size_bytes=kib(32), ways=4, line_bytes=64),
        l1i_geometry=CacheGeometry(size_bytes=kib(32), ways=2, line_bytes=64),
        l2_geometry=CacheGeometry(size_bytes=kib(512), ways=16, line_bytes=64),
        l2_shared_with_videocore=True,
        l1i_interleave=True,
        domains=(
            DomainSpec(
                "VDD_CORE", 1.2, ("l1-caches", "registers"), surge=CORE_SURGE
            ),
            DomainSpec("VDD_SOC", 1.2, ("l2",), surge=MEMORY_SURGE),
            DomainSpec("DDR_VDDQ", 1.2, ("dram",), surge=MEMORY_SURGE),
        ),
        bootrom=BootRom(
            name="bcm2837.bootrom", internal_boot=False, auth_fused=auth_boot
        ),
        trustzone_enforced=trustzone_enforced,
        mbist_enabled=mbist_enabled,
    )

    nets = [
        ("VDD_CORE", NetKind.CORE, "VDD_CORE"),
        ("VDD_SOC", NetKind.MEMORY, "VDD_SOC"),
        ("DDR_VDDQ", NetKind.MEMORY, "DDR_VDDQ"),
        ("VDD_IO", NetKind.IO, "VDD_IO"),
    ]
    pads = [
        ("PP58", "VDD_CORE", "core-rail test pad near the PMU"),
        ("PP7", "VDD_SOC", "SoC-rail test pad"),
        ("PP3", "VDD_IO", "3.3V IO rail test pad"),
    ]
    return _finish_board("raspberry-pi-3", config, pmic, nets, pads, seed)


#: Base address of the i.MX53 iRAM window.
IMX53_IRAM_BASE = 0xF8000000

#: i.MX53 iRAM size (128 KB).
IMX53_IRAM_SIZE = kib(128)

#: Boot-ROM scratchpad ranges (relative to the iRAM base) the i.MX53
#: clobbers before releasing the core — the error clusters of Figure 10.
IMX53_SCRATCHPAD = (
    ClobberRegion(0x083C, 0x18CC),   # DDR-training + ROM stack region
    ClobberRegion(0x1F400, 0x20000),  # tail block used late in ROM boot
)


def imx53_qsb(
    seed: int = DEFAULT_SEED,
    trustzone_enforced: bool = False,
    mbist_enabled: bool = False,
    auth_boot: bool = False,
    jtag_fused: bool = False,
) -> Board:
    """Build a powered i.MX53 quick-start board (i.MX535, Cortex-A8).

    The 128 KB iRAM sits in the L1 memory domain on rail VDDAL1 (probe
    pad SH13, 1.3 V) while the CPU core draws through VCCGP — the domain
    separation that lets the paper hold the iRAM alone (§7.3).  The SoC
    boots from internal ROM, using part of the iRAM as scratchpad.
    """
    pmic = Pmic(name="DA9053")
    pmic.add_rail(BuckConverter("VCCGP", 1.1, max_current_a=3.0))
    pmic.add_rail(BuckConverter("VDDAL1", 1.3, max_current_a=1.5))
    pmic.add_rail(BuckConverter("VDD_EMI", 1.5, max_current_a=2.0))
    pmic.add_rail(Ldo("VDD_IO", 3.15, max_current_a=0.5))

    config = SocConfig(
        name="i.MX535",
        cpu_name="Cortex-A8",
        core_count=1,
        l1d_geometry=CacheGeometry(size_bytes=kib(32), ways=4, line_bytes=64),
        l1i_geometry=CacheGeometry(size_bytes=kib(32), ways=4, line_bytes=64),
        l2_geometry=CacheGeometry(size_bytes=kib(256), ways=8, line_bytes=64),
        iram_base=IMX53_IRAM_BASE,
        iram_size=IMX53_IRAM_SIZE,
        domains=(
            DomainSpec(
                "VCCGP", 1.1, ("l1-caches", "registers", "l2"), surge=CORE_SURGE
            ),
            DomainSpec("VDDAL1", 1.3, ("iram",), surge=MEMORY_SURGE),
            DomainSpec("VDD_EMI", 1.5, ("dram",), surge=MEMORY_SURGE),
        ),
        bootrom=BootRom(
            name="imx53.bootrom",
            scratchpad_regions=list(IMX53_SCRATCHPAD),
            internal_boot=True,
            auth_fused=auth_boot,
        ),
        trustzone_enforced=trustzone_enforced,
        mbist_enabled=mbist_enabled,
        jtag_enabled=not jtag_fused,
    )

    nets = [
        ("VCCGP", NetKind.CORE, "VCCGP"),
        ("VDDAL1", NetKind.MEMORY, "VDDAL1"),
        ("VDD_EMI", NetKind.MEMORY, "VDD_EMI"),
        ("VDD_IO", NetKind.IO, "VDD_IO"),
    ]
    pads = [
        ("SH13", "VDDAL1", "L1-memory-domain shunt near the PMIC"),
        ("SH10", "VCCGP", "core-rail shunt"),
        ("SH2", "VDD_IO", "IO rail shunt"),
    ]
    return _finish_board("imx53-qsb", config, pmic, nets, pads, seed)


#: Rig DRAM: the glitch victims are tiny, and every byte costs build time.
GLITCH_RIG_DRAM_BYTES = kib(64)

#: Residual decoupling on the rig's core net after the attacker has
#: desoldered the bulk caps (standard glitch prep): ~470 nF against the
#: ~65 mΩ loop gives τ ≈ 30 ns, so nanosecond pulses reach the die.
GLITCH_RIG_DECOUPLING_F = nanofarads(470)


def glitch_rig(seed: int = DEFAULT_SEED) -> Board:
    """Build the fault-injection bench target for :mod:`repro.glitch`.

    A deliberately small single-core board — an embedded-class SoC
    prepared for glitching: 4 KB L1s, no L2, 64 KB DRAM, and a core net
    whose bulk decoupling has been removed so glitch pulses actually
    arrive at the die.  Probe pad TPG1 rides VDD_CORE at 0.8 V.
    """
    pmic = Pmic(name="rig-pmu")
    pmic.add_rail(BuckConverter("VDD_CORE", 0.8, max_current_a=2.0))
    pmic.add_rail(BuckConverter("DDR_VDDQ", 1.1, max_current_a=1.0))

    config = SocConfig(
        name="glitch-rig",
        cpu_name="mini-mcu",
        core_count=1,
        l1d_geometry=CacheGeometry(size_bytes=kib(4), ways=2, line_bytes=64),
        l1i_geometry=CacheGeometry(size_bytes=kib(4), ways=2, line_bytes=64),
        l2_geometry=None,
        domains=(
            DomainSpec(
                "VDD_CORE", 0.8, ("l1-caches", "registers"), surge=CORE_SURGE
            ),
            DomainSpec("DDR_VDDQ", 1.1, ("dram",), surge=MEMORY_SURGE),
        ),
        bootrom=BootRom(name="glitch-rig.bootrom", internal_boot=False),
    )

    nets = [
        ("VDD_CORE", NetKind.CORE, "VDD_CORE"),
        ("DDR_VDDQ", NetKind.MEMORY, "DDR_VDDQ"),
    ]
    pads = [
        ("TPG1", "VDD_CORE", "core-rail pad, decoupling caps removed"),
        ("TPG2", "DDR_VDDQ", "DDR rail pad"),
    ]
    return _finish_board(
        "glitch-rig",
        config,
        pmic,
        nets,
        pads,
        seed,
        dram_bytes=GLITCH_RIG_DRAM_BYTES,
        core_decoupling_f=GLITCH_RIG_DECOUPLING_F,
    )


_BUILDERS = {
    "rpi4": raspberry_pi_4,
    "rpi3": raspberry_pi_3,
    "imx53": imx53_qsb,
    "glitch-rig": glitch_rig,
}


def build_device(key: str, seed: int = DEFAULT_SEED, **toggles) -> Board:
    """Build any registered device by registry key."""
    try:
        builder = _BUILDERS[key]
    except KeyError:
        raise AttackError(
            f"unknown device {key!r}; known: {sorted(_BUILDERS)}"
        ) from None
    return builder(seed, **toggles)
