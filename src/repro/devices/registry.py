"""Device metadata registry — paper Tables 2 and 3 as data.

The registry is the single source of truth for platform facts quoted in
reports: board/SoC/CPU identity, targeted memories, probe pads, and
nominal rail voltages.  The builders in
:mod:`repro.devices.builders` consume the same records, so the registry
and the simulated hardware cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AttackError


@dataclass(frozen=True)
class DeviceInfo:
    """Inventory record for one evaluation platform."""

    key: str
    board: str
    soc: str
    cpu: str
    cores: int
    targets: tuple[str, ...]
    probe_pad: str
    probe_net: str
    nominal_v: float
    power_domain: str
    extraction: str  # "cp15" or "jtag"


DEVICES: dict[str, DeviceInfo] = {
    "rpi4": DeviceInfo(
        key="rpi4",
        board="Raspberry Pi 4",
        soc="BCM2711",
        cpu="Cortex-A72",
        cores=4,
        targets=("L1D", "L1I", "registers"),
        probe_pad="TP15",
        probe_net="VDD_CORE",
        nominal_v=0.8,
        power_domain="Core (VDD_CORE)",
        extraction="cp15",
    ),
    "rpi3": DeviceInfo(
        key="rpi3",
        board="Raspberry Pi 3",
        soc="BCM2837",
        cpu="Cortex-A53",
        cores=4,
        targets=("L1D", "L1I", "registers"),
        probe_pad="PP58",
        probe_net="VDD_CORE",
        nominal_v=1.2,
        power_domain="Core (VDD_CORE)",
        extraction="cp15",
    ),
    "imx53": DeviceInfo(
        key="imx53",
        board="i.MX53 QSB",
        soc="i.MX535",
        cpu="Cortex-A8",
        cores=1,
        targets=("iRAM",),
        probe_pad="SH13",
        probe_net="VDDAL1",
        nominal_v=1.3,
        power_domain="Memory (VDDAL1)",
        extraction="jtag",
    ),
}


def device_info(key: str) -> DeviceInfo:
    """Look up a platform record by key (``rpi4``, ``rpi3``, ``imx53``)."""
    try:
        return DEVICES[key]
    except KeyError:
        raise AttackError(
            f"unknown device {key!r}; known: {sorted(DEVICES)}"
        ) from None


def platform_table() -> list[dict[str, object]]:
    """Rows of paper Table 2 (evaluated platforms and SoCs)."""
    return [
        {
            "board": info.board,
            "soc": info.soc,
            "cpu": info.cpu,
            "cores": info.cores,
            "targets": ", ".join(info.targets),
        }
        for info in DEVICES.values()
    ]


def probe_table() -> list[dict[str, object]]:
    """Rows of paper Table 3 (test pads, voltages, domains)."""
    return [
        {
            "board": info.board,
            "pad": info.probe_pad,
            "nominal_v": info.nominal_v,
            "targets": ", ".join(info.targets),
            "domain": info.power_domain,
        }
        for info in DEVICES.values()
    ]
