"""Exception hierarchy for the Volt Boot reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
The taxonomy mirrors the layers of the system: circuit/electrical faults,
power-network faults, SoC/architectural access violations, CPU execution
faults, and attack-orchestration failures.
"""

from __future__ import annotations

import errno as _errno


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Electrical-layer failure (invalid voltage, probe misuse, ...)."""


class PowerError(ReproError):
    """Power-network failure (unknown rail, illegal gating transition)."""


class ProbeError(CircuitError):
    """A voltage probe was attached or operated incorrectly."""


class AccessViolation(ReproError):
    """An architectural access was rejected (privilege, TrustZone, ...)."""


class SecureAccessViolation(AccessViolation):
    """A non-secure agent touched TrustZone-protected state."""


class PrivilegeViolation(AccessViolation):
    """An operation demanded a higher exception level than the caller's."""


class MemoryMapError(ReproError):
    """An address fell outside every mapped region, or regions collided."""


class CpuFault(ReproError):
    """The simulated CPU hit an unrecoverable execution fault."""


class AssemblerError(CpuFault):
    """The mini-assembler rejected a source program."""


class BootError(ReproError):
    """The simulated boot flow could not complete (auth failure, no media)."""


class AuthenticatedBootError(BootError):
    """Alternate-media boot was refused by an authenticated-boot fuse."""


class AttackError(ReproError):
    """An attack step could not be carried out on the target board."""


class CalibrationError(ReproError):
    """A physics model was configured with non-physical parameters."""


class ObservabilityError(ReproError):
    """The observability plumbing was misused (e.g. a counter decrement)."""


class ExecError(ReproError):
    """The parallel execution engine was misused or misconfigured."""


class ShardError(ExecError):
    """A shard of work units kept failing after its bounded retries.

    Carries the shard's label and the attempt count so a campaign
    driver can report exactly which grid points were lost.
    """

    def __init__(self, label: str, attempts: int, cause: str) -> None:
        super().__init__(
            f"shard {label!r} failed after {attempts} attempt(s): {cause}"
        )
        self.label = label
        self.attempts = attempts
        self.cause = cause


class AnalysisError(ReproError):
    """An analysis helper was fed data it cannot process (empty or
    ragged grids, images too small for the requested geometry, ...)."""


class ResilienceError(ReproError):
    """The resilient attack driver or its voters were misused.

    Raised for *programming* errors only (empty read sets, mismatched
    read lengths, invalid policies); attack-level failures degrade into
    a partial :class:`~repro.resilience.driver.RecoveryReport` instead.
    """


class CheckpointError(ExecError):
    """A shard journal could not be opened, parsed, or matched.

    Covers corrupted headers, plan fingerprints that do not match the
    journal being resumed, and attempts to start a fresh run on top of
    an existing journal without ``--resume``.
    """


#: The supervised runtime's failure taxonomy (docs/robustness.md).
#: Every failure the engine survives — or degrades under — maps to
#: exactly one of these classes, and the ``exec.failures`` counter is
#: labelled with it, so chaos runs can assert that an injected fault
#: was classified, not merely survived.
FAILURE_CLASSES = (
    "poison",          # a work unit raised deterministically
    "timeout",         # a shard exceeded its per-shard timeout budget
    "hang",            # a worker stopped making heartbeat progress
    "crash",           # a worker died without shipping an outcome
    "pool-loss",       # worker processes could not be (re)spawned
    "journal-enospc",  # journal append failed with ENOSPC
    "journal-io",      # journal append failed on write/flush/fsync
    "journal-torn",    # a journal record was torn mid-write
    "interrupt",       # the campaign was interrupted (SIGINT / chaos)
)


class WorkerHang(ExecError):
    """A supervised shard worker stopped making heartbeat progress.

    The supervisor SIGKILLs the worker and hands the shard back for a
    serial re-attempt; this exception is the recorded *cause*.  The
    message is deliberately free of wall-clock readings so it can be
    journalled and compared byte-for-byte across runs.
    """

    def __init__(self, shard: str, hang_timeout_s: float) -> None:
        super().__init__(
            f"shard {shard!r} made no heartbeat progress within its "
            f"{hang_timeout_s:g}s hang timeout and was killed"
        )
        self.shard = shard
        self.hang_timeout_s = hang_timeout_s


class WorkerCrash(ExecError):
    """A supervised shard worker died without shipping an outcome.

    Covers ``kill -9``, OOM kills, and hard interpreter crashes; the
    supervisor detects the dead process, drains any result that raced
    the death, and hands the shard back for a serial re-attempt.
    """

    def __init__(self, shard: str, exitcode: int | None) -> None:
        super().__init__(
            f"shard {shard!r} worker died with exit code {exitcode} "
            f"before shipping its outcome"
        )
        self.shard = shard
        self.exitcode = exitcode


class PoolUnavailable(ExecError):
    """No worker process could be spawned at all.

    Raised by the supervised pool when the *first* spawn fails — the
    engine downgrades the whole plan to the serial in-process path
    (``exec.fallbacks``) without charging anyone's retry budget.
    """


class JournalWriteError(CheckpointError):
    """A journal append failed at the OS layer.

    Classified by errno into the failure taxonomy: ``journal-enospc``
    for disk exhaustion, ``journal-io`` for everything else (fsync
    errors, I/O errors).  The engine degrades the journal to an
    in-memory bank and completes the run; the degradation is surfaced
    through the CLI's ``EXIT_DEGRADED`` exit-code contract.
    """

    def __init__(self, path: str, cause: OSError) -> None:
        self.failure_class = (
            "journal-enospc"
            if cause.errno == _errno.ENOSPC
            else "journal-io"
        )
        super().__init__(
            f"{path}: journal write failed ({self.failure_class}): {cause}"
        )
        self.path = path
        self.errno = cause.errno


class SimulatedFailure(BaseException):
    """A chaos-injected *hard* failure (simulated crash or power loss).

    Deliberately derived from :class:`BaseException`, not
    :class:`ReproError`: the engine's bounded-retry handlers catch
    ``Exception``, and a simulated ``kill -9`` must sail straight
    through them exactly as a real one would — only the engine's
    interrupt handler (which banks the journal) may intercept it.
    """


class ChaosError(ReproError):
    """The chaos harness was misconfigured or its invariant check
    could not be carried out (bad fault spec, unknown target, a
    faulted campaign that never converged)."""


def failure_class(error: BaseException) -> str:
    """Map an exception to its :data:`FAILURE_CLASSES` entry.

    The single classification point: the engine labels its
    ``exec.failures`` counter with this, quarantine records carry it,
    and the chaos matrix asserts on it.
    """
    if isinstance(error, WorkerHang):
        return "hang"
    if isinstance(error, WorkerCrash):
        return "crash"
    if isinstance(error, PoolUnavailable):
        return "pool-loss"
    if isinstance(error, JournalWriteError):
        return error.failure_class
    if isinstance(error, TimeoutError):
        return "timeout"
    if isinstance(error, (KeyboardInterrupt, CampaignInterrupted)):
        return "interrupt"
    if isinstance(error, SimulatedFailure):
        simulated = getattr(error, "failure_class", None)
        return simulated if simulated in FAILURE_CLASSES else "crash"
    return "poison"


class CampaignInterrupted(ExecError):
    """A checkpointed run was interrupted before all shards completed.

    Raised on SIGINT (KeyboardInterrupt) by the execution engine after
    the shard journal has been flushed, so the CLI can exit with the
    documented ``EXIT_INTERRUPTED`` code and point at ``--resume``.
    Carries the journal path and progress so the message can say
    exactly how much work is banked.
    """

    def __init__(self, journal_path: str, done: int, total: int) -> None:
        super().__init__(
            f"interrupted with {done}/{total} unit(s) checkpointed "
            f"at {journal_path}"
        )
        self.journal_path = journal_path
        self.done = done
        self.total = total


class GlitchError(ReproError):
    """The fault-injection subsystem was misconfigured or misused."""


class BrownOutReset(GlitchError):
    """A brown-out detector tripped and reset the target mid-attempt.

    Raised by the injector as soon as execution time crosses the
    detector's trip point, so campaign drivers can classify the attempt
    as ``reset`` (the countermeasure won) rather than a crash.
    """

    def __init__(self, trip_time_s: float) -> None:
        super().__init__(
            f"brown-out detector reset the core at t={trip_time_s:.3e}s"
        )
        self.trip_time_s = trip_time_s


class PerfError(ReproError):
    """Performance-trajectory tooling failure (bad BENCH document,
    unreadable sidecar, comparison against a missing baseline, ...)."""


class LintError(ReproError):
    """``repro-lint`` could not run (unreadable input, bad rule id, ...)."""


class LintConfigError(LintError):
    """The ``[tool.repro-lint]`` configuration is malformed."""
