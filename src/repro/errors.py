"""Exception hierarchy for the Volt Boot reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
The taxonomy mirrors the layers of the system: circuit/electrical faults,
power-network faults, SoC/architectural access violations, CPU execution
faults, and attack-orchestration failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CircuitError(ReproError):
    """Electrical-layer failure (invalid voltage, probe misuse, ...)."""


class PowerError(ReproError):
    """Power-network failure (unknown rail, illegal gating transition)."""


class ProbeError(CircuitError):
    """A voltage probe was attached or operated incorrectly."""


class AccessViolation(ReproError):
    """An architectural access was rejected (privilege, TrustZone, ...)."""


class SecureAccessViolation(AccessViolation):
    """A non-secure agent touched TrustZone-protected state."""


class PrivilegeViolation(AccessViolation):
    """An operation demanded a higher exception level than the caller's."""


class MemoryMapError(ReproError):
    """An address fell outside every mapped region, or regions collided."""


class CpuFault(ReproError):
    """The simulated CPU hit an unrecoverable execution fault."""


class AssemblerError(CpuFault):
    """The mini-assembler rejected a source program."""


class BootError(ReproError):
    """The simulated boot flow could not complete (auth failure, no media)."""


class AuthenticatedBootError(BootError):
    """Alternate-media boot was refused by an authenticated-boot fuse."""


class AttackError(ReproError):
    """An attack step could not be carried out on the target board."""


class CalibrationError(ReproError):
    """A physics model was configured with non-physical parameters."""


class ObservabilityError(ReproError):
    """The observability plumbing was misused (e.g. a counter decrement)."""


class ExecError(ReproError):
    """The parallel execution engine was misused or misconfigured."""


class ShardError(ExecError):
    """A shard of work units kept failing after its bounded retries.

    Carries the shard's label and the attempt count so a campaign
    driver can report exactly which grid points were lost.
    """

    def __init__(self, label: str, attempts: int, cause: str) -> None:
        super().__init__(
            f"shard {label!r} failed after {attempts} attempt(s): {cause}"
        )
        self.label = label
        self.attempts = attempts
        self.cause = cause


class AnalysisError(ReproError):
    """An analysis helper was fed data it cannot process (empty or
    ragged grids, images too small for the requested geometry, ...)."""


class ResilienceError(ReproError):
    """The resilient attack driver or its voters were misused.

    Raised for *programming* errors only (empty read sets, mismatched
    read lengths, invalid policies); attack-level failures degrade into
    a partial :class:`~repro.resilience.driver.RecoveryReport` instead.
    """


class CheckpointError(ExecError):
    """A shard journal could not be opened, parsed, or matched.

    Covers corrupted headers, plan fingerprints that do not match the
    journal being resumed, and attempts to start a fresh run on top of
    an existing journal without ``--resume``.
    """


class CampaignInterrupted(ExecError):
    """A checkpointed run was interrupted before all shards completed.

    Raised on SIGINT (KeyboardInterrupt) by the execution engine after
    the shard journal has been flushed, so the CLI can exit with the
    documented ``EXIT_INTERRUPTED`` code and point at ``--resume``.
    Carries the journal path and progress so the message can say
    exactly how much work is banked.
    """

    def __init__(self, journal_path: str, done: int, total: int) -> None:
        super().__init__(
            f"interrupted with {done}/{total} unit(s) checkpointed "
            f"at {journal_path}"
        )
        self.journal_path = journal_path
        self.done = done
        self.total = total


class GlitchError(ReproError):
    """The fault-injection subsystem was misconfigured or misused."""


class BrownOutReset(GlitchError):
    """A brown-out detector tripped and reset the target mid-attempt.

    Raised by the injector as soon as execution time crosses the
    detector's trip point, so campaign drivers can classify the attempt
    as ``reset`` (the countermeasure won) rather than a crash.
    """

    def __init__(self, trip_time_s: float) -> None:
        super().__init__(
            f"brown-out detector reset the core at t={trip_time_s:.3e}s"
        )
        self.trip_time_s = trip_time_s


class PerfError(ReproError):
    """Performance-trajectory tooling failure (bad BENCH document,
    unreadable sidecar, comparison against a missing baseline, ...)."""


class LintError(ReproError):
    """``repro-lint`` could not run (unreadable input, bad rule id, ...)."""


class LintConfigError(LintError):
    """The ``[tool.repro-lint]`` configuration is malformed."""
