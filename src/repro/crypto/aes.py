"""AES (FIPS-197) implemented from scratch.

Both sides of the reproduction need AES:

* victims run TRESOR/CaSE-style on-chip encryption, so their key
  schedules must be real;
* the attacker's key-schedule search (:mod:`repro.analysis.keysearch`)
  validates candidate keys by recomputing the expansion, the Halderman
  et al. technique.

Only the textbook algorithm is implemented — tables are generated from
the GF(2^8) definitions at import time rather than hard-coded, which
doubles as a self-check.
"""

from __future__ import annotations

from ..errors import ReproError

#: AES block size in bytes.
AES_BLOCK_BYTES = 16

_KEY_ROUNDS = {16: 10, 24: 12, 32: 14}


def _xtime(value: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """GF(2^8) multiplication."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    """Generate the S-box from multiplicative inverses + affine map."""
    # Multiplicative inverses via exp/log tables over generator 3.
    exp = [0] * 510
    log = [0] * 256
    value = 1
    for i in range(255):
        exp[i] = value
        log[value] = i
        value = _gf_mul(value, 3)
    for i in range(255, 510):
        exp[i] = exp[i - 255]

    def inverse(x: int) -> int:
        return 0 if x == 0 else exp[255 - log[x]]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for x in range(256):
        b = inverse(x)
        s = 0
        for shift in (0, 4, 5, 6, 7):
            s ^= ((b >> shift) | (b << (8 - shift))) & 0xFF
        s ^= 0x63
        sbox[x] = s
        inv_sbox[s] = x
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

_RCON = [1]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))


def rounds_for_key(key: bytes) -> int:
    """Number of AES rounds for a 16/24/32-byte key."""
    try:
        return _KEY_ROUNDS[len(key)]
    except KeyError:
        raise ReproError(
            f"AES keys are 16/24/32 bytes, got {len(key)}"
        ) from None


def expand_key(key: bytes) -> list[bytes]:
    """Expand a key into the list of 16-byte round keys."""
    rounds = rounds_for_key(key)
    nk = len(key) // 4
    words = [key[i * 4 : i * 4 + 4] for i in range(nk)]
    for i in range(nk, 4 * (rounds + 1)):
        temp = words[i - 1]
        if i % nk == 0:
            rotated = temp[1:] + temp[:1]
            temp = bytes(SBOX[b] for b in rotated)
            temp = bytes((temp[0] ^ _RCON[i // nk - 1],)) + temp[1:]
        elif nk > 6 and i % nk == 4:
            temp = bytes(SBOX[b] for b in temp)
        words.append(bytes(a ^ b for a, b in zip(words[i - nk], temp)))
    return [
        b"".join(words[4 * r : 4 * r + 4]) for r in range(rounds + 1)
    ]


def schedule_bytes(key: bytes) -> bytes:
    """The full key schedule as one contiguous byte string.

    For AES-128 this is the 176-byte layout the original cold boot
    attack scans memory images for.
    """
    return b"".join(expand_key(key))


def _sub_bytes(state: list[int]) -> list[int]:
    return [SBOX[b] for b in state]


def _inv_sub_bytes(state: list[int]) -> list[int]:
    return [INV_SBOX[b] for b in state]


# State layout: column-major, state[4*c + r] = row r of column c.
_SHIFT_MAP = [4 * ((c + r) % 4) + r for c in range(4) for r in range(4)]
_INV_SHIFT_MAP = [4 * ((c - r) % 4) + r for c in range(4) for r in range(4)]


def _shift_rows(state: list[int]) -> list[int]:
    return [state[i] for i in _SHIFT_MAP]


def _inv_shift_rows(state: list[int]) -> list[int]:
    return [state[i] for i in _INV_SHIFT_MAP]


def _mix_single_column(col: list[int], matrix: tuple[int, ...]) -> list[int]:
    return [
        _gf_mul(col[0], matrix[(0 - r) % 4])
        ^ _gf_mul(col[1], matrix[(1 - r) % 4])
        ^ _gf_mul(col[2], matrix[(2 - r) % 4])
        ^ _gf_mul(col[3], matrix[(3 - r) % 4])
        for r in range(4)
    ]


def _mix_columns(state: list[int], matrix: tuple[int, ...]) -> list[int]:
    out: list[int] = []
    for c in range(4):
        out.extend(_mix_single_column(state[4 * c : 4 * c + 4], matrix))
    return out


_MIX = (2, 3, 1, 1)
_INV_MIX = (14, 11, 13, 9)


def _add_round_key(state: list[int], round_key: bytes) -> list[int]:
    return [b ^ k for b, k in zip(state, round_key)]


def encrypt_block(key: bytes, plaintext: bytes) -> bytes:
    """Encrypt one 16-byte block."""
    if len(plaintext) != AES_BLOCK_BYTES:
        raise ReproError(f"AES blocks are {AES_BLOCK_BYTES} bytes")
    round_keys = expand_key(key)
    state = _add_round_key(list(plaintext), round_keys[0])
    for round_key in round_keys[1:-1]:
        state = _add_round_key(
            _mix_columns(_shift_rows(_sub_bytes(state)), _MIX), round_key
        )
    state = _add_round_key(_shift_rows(_sub_bytes(state)), round_keys[-1])
    return bytes(state)


def decrypt_block(key: bytes, ciphertext: bytes) -> bytes:
    """Decrypt one 16-byte block."""
    if len(ciphertext) != AES_BLOCK_BYTES:
        raise ReproError(f"AES blocks are {AES_BLOCK_BYTES} bytes")
    round_keys = expand_key(key)
    state = _add_round_key(list(ciphertext), round_keys[-1])
    for round_key in reversed(round_keys[1:-1]):
        state = _mix_columns(
            _add_round_key(_inv_sub_bytes(_inv_shift_rows(state)), round_key),
            _INV_MIX,
        )
    state = _add_round_key(_inv_sub_bytes(_inv_shift_rows(state)), round_keys[0])
    return bytes(state)
