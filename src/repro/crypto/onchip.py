"""On-chip AES runtimes — the victims Volt Boot defeats.

Two of the paper's motivating defense families are modelled behaviourally:

* :class:`RegisterAes` — TRESOR-style (paper refs [30], [13], [39]):
  the key schedule lives only in the 128-bit vector registers; DRAM
  never sees the key.  Each 16-byte round key occupies one ``v``
  register, so AES-128's 11 round keys use ``v0..v10``.
* :class:`CacheLockedAes` — CaSE-style (paper ref [44]): the schedule
  and working state are pinned in L1 d-cache lines that are marked
  *secure* (NS=0) and never evicted (a partially locked cache).

Both runtimes perform real AES using only their on-chip copy of the
schedule, so the secrets an attack recovers are the actual bytes the
algorithm consumed.
"""

from __future__ import annotations

from ..errors import ReproError
from ..soc.soc import CoreUnit
from .aes import AES_BLOCK_BYTES, expand_key, rounds_for_key

#: GF(2^8) multiplication matrix used inline by the runtimes.
from .aes import SBOX, _MIX, _add_round_key, _mix_columns, _shift_rows, _sub_bytes


def _encrypt_with_schedule(round_keys: list[bytes], plaintext: bytes) -> bytes:
    """AES encryption from an already-expanded schedule."""
    if len(plaintext) != AES_BLOCK_BYTES:
        raise ReproError(f"AES blocks are {AES_BLOCK_BYTES} bytes")
    state = _add_round_key(list(plaintext), round_keys[0])
    for round_key in round_keys[1:-1]:
        state = _add_round_key(
            _mix_columns(_shift_rows(_sub_bytes(state)), _MIX), round_key
        )
    state = _add_round_key(_shift_rows(_sub_bytes(state)), round_keys[-1])
    return bytes(state)


class RegisterAes:
    """TRESOR-style AES keyed entirely from the vector register file.

    ``install_key`` expands the key and writes each round key into one
    vector register; the key material passed in is the caller's problem
    to scrub (TRESOR derives it from the keyboard at boot).  ``encrypt``
    reads the schedule back out of the registers for every block — no
    schedule copy ever exists in DRAM or in d-cache.
    """

    def __init__(self, unit: CoreUnit, first_register: int = 0) -> None:
        self.unit = unit
        self.first_register = first_register
        self._n_round_keys = 0

    def install_key(self, key: bytes) -> int:
        """Expand ``key`` into vector registers; returns registers used."""
        round_keys = expand_key(key)
        needed = len(round_keys)
        if self.first_register + needed > self.unit.vreg.count:
            raise ReproError(
                f"schedule needs {needed} vector registers from "
                f"v{self.first_register}; file has {self.unit.vreg.count}"
            )
        for offset, round_key in enumerate(round_keys):
            self.unit.vreg.write_bytes(self.first_register + offset, round_key)
        self._n_round_keys = needed
        return needed

    def _schedule_from_registers(self) -> list[bytes]:
        if not self._n_round_keys:
            raise ReproError("no key installed")
        return [
            self.unit.vreg.read_bytes(self.first_register + i)
            for i in range(self._n_round_keys)
        ]

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt one block using only the register-resident schedule."""
        return _encrypt_with_schedule(self._schedule_from_registers(), plaintext)

    def schedule(self) -> list[bytes]:
        """The register-resident round keys, as the engine would use them.

        This is the schedule a hardware-fault model perturbs mid-round
        (:mod:`repro.glitch.dfa` encrypts from it): reading it performs
        the same vector-register fetches as :meth:`encrypt`.
        """
        return self._schedule_from_registers()

    def registers_used(self) -> list[int]:
        """Indices of the vector registers holding round keys."""
        return list(
            range(self.first_register, self.first_register + self._n_round_keys)
        )


class IramAes:
    """Sentry-style AES keyed from on-chip iRAM (paper refs [8], [9]).

    Sentry and its OCRAM successors park sensitive state in internal
    RAM instead of DRAM, betting on the SoC package as the security
    boundary.  The schedule is written once into iRAM and every block
    operation reads it back from there — which is precisely the memory
    the paper's §7.3 attack rides through a power cycle on the i.MX53.
    """

    def __init__(self, iram, schedule_offset: int = 0x4000) -> None:
        self.iram = iram
        self.schedule_offset = schedule_offset
        self._schedule_len = 0

    def install_key(self, key: bytes) -> int:
        """Expand ``key`` into iRAM; returns the bytes written."""
        schedule = b"".join(expand_key(key))
        end = self.schedule_offset + len(schedule)
        if end > self.iram.size_bytes:
            raise ReproError(
                f"schedule [{self.schedule_offset:#x}, {end:#x}) exceeds "
                f"the {self.iram.size_bytes:#x}-byte iRAM"
            )
        self.iram.write_block(
            self.iram.base_addr + self.schedule_offset, schedule
        )
        self._schedule_len = len(schedule)
        return len(schedule)

    def _schedule_from_iram(self) -> list[bytes]:
        if not self._schedule_len:
            raise ReproError("no key installed")
        raw = self.iram.read_block(
            self.iram.base_addr + self.schedule_offset, self._schedule_len
        )
        return [raw[i : i + 16] for i in range(0, len(raw), 16)]

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt one block from the iRAM-resident schedule."""
        return _encrypt_with_schedule(self._schedule_from_iram(), plaintext)


class CacheLockedAes:
    """CaSE-style AES pinned in secure, locked L1 d-cache lines.

    ``install_key`` writes the expanded schedule into d-cache lines at
    ``schedule_addr`` and marks them secure (NS=0) — modelling
    TrustZone-aware cache locking.  Because the lines are locked, the
    kernel and other processes can never evict them, which is why the
    paper notes Volt Boot recovers CaSE-protected state in full
    (§7.1.2 closing remark).
    """

    def __init__(self, unit: CoreUnit, schedule_addr: int = 0x70000) -> None:
        self.unit = unit
        self.schedule_addr = schedule_addr
        self._schedule_len = 0

    def install_key(self, key: bytes) -> int:
        """Place the expanded schedule in locked secure lines.

        Returns the number of cache lines consumed.
        """
        if not self.unit.l1d.enabled:
            self.unit.l1d.invalidate_all()
            self.unit.l1d.enabled = True
        schedule = b"".join(expand_key(key))
        self._schedule_len = len(schedule)
        self.unit.l1d.write(self.schedule_addr, schedule, ns=False)
        line = self.unit.l1d.geometry.line_bytes
        return (len(schedule) + line - 1) // line

    def _schedule_from_cache(self) -> list[bytes]:
        if not self._schedule_len:
            raise ReproError("no key installed")
        raw = self.unit.l1d.read(self.schedule_addr, self._schedule_len, ns=False)
        return [raw[i : i + 16] for i in range(0, len(raw), 16)]

    def encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt one block from the cache-resident schedule."""
        return _encrypt_with_schedule(self._schedule_from_cache(), plaintext)

    @staticmethod
    def rounds(key: bytes) -> int:
        """Round count for a key (exposed for tests/examples)."""
        return rounds_for_key(key)
