"""Victim cryptography: AES and on-chip (TRESOR/CaSE-style) runtimes.

The defenses Volt Boot breaks — TRESOR, PRIME, Sentry, CaSE — keep AES
state in on-chip storage so that cold boot attacks on DRAM find nothing.
This package implements:

* :mod:`~repro.crypto.aes` — a from-scratch AES-128/192/256 (key
  expansion + block encrypt/decrypt), used both by victims and by the
  attacker's key-schedule search;
* :mod:`~repro.crypto.onchip` — on-chip runtimes: a register-based AES
  that parks the key schedule in the vector file (TRESOR-style), and a
  cache-locked AES that pins schedule + working state in secure L1 lines
  (CaSE-style).
"""

from .aes import (
    AES_BLOCK_BYTES,
    decrypt_block,
    encrypt_block,
    expand_key,
    rounds_for_key,
    schedule_bytes,
)
from .onchip import CacheLockedAes, IramAes, RegisterAes

__all__ = [
    "AES_BLOCK_BYTES",
    "expand_key",
    "schedule_bytes",
    "rounds_for_key",
    "encrypt_block",
    "decrypt_block",
    "RegisterAes",
    "CacheLockedAes",
    "IramAes",
]
