"""Attack report rendering and accuracy helpers."""

import pytest

from repro.core.report import (
    AttackReport,
    matches_exactly,
    retention_accuracy_percent,
)
from repro.errors import ReproError


class TestReport:
    def test_render_has_title_and_rows(self):
        report = AttackReport("My Experiment")
        report.add_row(device="pi4", accuracy=100.0)
        rendered = report.render()
        assert "My Experiment" in rendered
        assert "pi4" in rendered
        assert "100.00" in rendered

    def test_empty_row_rejected(self):
        with pytest.raises(ReproError):
            AttackReport("x").add_row()

    def test_column_union_across_rows(self):
        report = AttackReport("x")
        report.add_row(a=1)
        report.add_row(b=2)
        assert report.column_names() == ["a", "b"]
        rendered = report.render()
        assert "a" in rendered and "b" in rendered

    def test_notes_rendered(self):
        report = AttackReport("x")
        report.add_note("important caveat")
        assert "important caveat" in report.render()

    def test_columns_aligned(self):
        report = AttackReport("x")
        report.add_row(name="short", value=1)
        report.add_row(name="much-longer-name", value=22)
        lines = report.render().splitlines()
        data_lines = lines[4:]
        positions = {line.index("1") for line in data_lines if "1" in line}
        # Value column starts at the same offset in every row.
        assert len({line.split()[-1] for line in data_lines}) == 2


class TestAccuracyHelpers:
    def test_perfect_match(self):
        assert retention_accuracy_percent(b"abc", b"abc") == 100.0
        assert matches_exactly(b"abc", b"abc")

    def test_total_mismatch(self):
        assert retention_accuracy_percent(b"\x00", b"\xff") == 0.0
        assert not matches_exactly(b"\x00", b"\xff")

    def test_partial(self):
        assert retention_accuracy_percent(b"\x00", b"\x0f") == pytest.approx(50.0)
