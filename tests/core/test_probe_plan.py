"""Attack step 1: probe planning against the PDN."""

import pytest

from repro.core.probe import SURGE_MARGIN, plan_probe
from repro.devices import imx53_qsb, raspberry_pi_4
from repro.errors import AttackError, PowerError


@pytest.fixture(scope="module")
def pi4():
    return raspberry_pi_4(seed=501)


@pytest.fixture(scope="module")
def imx53():
    return imx53_qsb(seed=502)


class TestPlanning:
    def test_cache_target_finds_core_pad(self, pi4):
        plan = plan_probe(pi4, "l1-caches")
        assert plan.domain_name == "VDD_CORE"
        assert plan.pad.name == "TP15"
        assert plan.set_voltage_v == pytest.approx(0.8)

    def test_register_target_same_domain(self, pi4):
        plan = plan_probe(pi4, "registers")
        assert plan.domain_name == "VDD_CORE"

    def test_iram_target_on_imx53(self, imx53):
        plan = plan_probe(imx53, "iram")
        assert plan.domain_name == "VDDAL1"
        assert plan.pad.name == "SH13"
        assert plan.set_voltage_v == pytest.approx(1.3)

    def test_unknown_target_rejected(self, pi4):
        with pytest.raises(PowerError):
            plan_probe(pi4, "tpu-sram")

    def test_iram_absent_on_pi_rejected(self, pi4):
        with pytest.raises(PowerError):
            plan_probe(pi4, "iram")

    def test_supply_sizing_includes_margin(self, pi4):
        plan = plan_probe(pi4, "l1-caches")
        surge = pi4.soc.domain_spec("VDD_CORE").surge
        assert plan.required_current_a == pytest.approx(
            surge.peak_current_a * SURGE_MARGIN
        )

    def test_recommended_supply(self, pi4):
        plan = plan_probe(pi4, "l1-caches")
        supply = plan.recommended_supply()
        assert supply.voltage_v == plan.set_voltage_v
        assert supply.current_limit_a == plan.required_current_a

    def test_supply_override(self, pi4):
        plan = plan_probe(pi4, "l1-caches")
        assert plan.recommended_supply(0.1).current_limit_a == 0.1

    def test_describe_mentions_pad(self, pi4):
        assert "TP15" in plan_probe(pi4, "l1-caches").describe()

    def test_unpowered_board_uses_schematic_voltage(self):
        board = raspberry_pi_4(seed=503)
        board.unplug()
        plan = plan_probe(board, "l1-caches")
        assert plan.set_voltage_v == pytest.approx(0.8)
        board.plug_in()

    def test_padless_net_rejected(self, pi4):
        # DRAM rail (DDR_VDDQ) exposes no pad in the model.
        with pytest.raises(AttackError):
            plan_probe(pi4, "dram")
