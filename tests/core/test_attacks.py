"""Volt Boot and cold boot pipelines."""

import pytest

from repro.circuits.supply import BenchSupply
from repro.core.coldboot import ColdBootAttack
from repro.core.extraction import (
    extract_iram,
    extract_l1_images,
    extract_vector_registers,
)
from repro.core.voltboot import VoltBootAttack
from repro.devices import imx53_qsb, raspberry_pi_4
from repro.errors import AttackError
from repro.soc.bootrom import BootMedia
from repro.soc.jtag import JtagProbe

MEDIA = BootMedia("attacker-usb")


def victim_pi4(seed=601):
    board = raspberry_pi_4(seed=seed)
    board.boot(BootMedia("victim"))
    unit = board.soc.core(0)
    unit.l1d.invalidate_all()
    unit.l1d.enabled = True
    unit.l1d.write(0x4000, b"\xaa" * 64)
    return board


class TestVoltBootPipeline:
    def test_full_pipeline_recovers_pattern(self):
        board = victim_pi4()
        attack = VoltBootAttack(board, target="l1-caches", boot_media=MEDIA)
        result = attack.execute()
        assert result.surge_clean
        assert b"\xaa" * 64 in result.cache_images.dcache(0)

    def test_power_cycle_requires_attach(self):
        board = victim_pi4(seed=602)
        attack = VoltBootAttack(board, target="l1-caches", boot_media=MEDIA)
        with pytest.raises(AttackError):
            attack.power_cycle()

    def test_extract_requires_pipeline(self):
        board = victim_pi4(seed=603)
        attack = VoltBootAttack(board, target="l1-caches", boot_media=MEDIA)
        with pytest.raises(AttackError):
            attack.extract()

    def test_cleanup_detaches_probe(self):
        board = victim_pi4(seed=604)
        attack = VoltBootAttack(board, target="l1-caches", boot_media=MEDIA)
        attack.execute()
        attack.cleanup()
        assert not board.probes()

    def test_unknown_target_extraction_rejected(self):
        board = victim_pi4(seed=605)
        attack = VoltBootAttack(board, target="l2", boot_media=MEDIA)
        attack.identify()
        attack.attach()
        attack.power_cycle()
        attack.reboot()
        with pytest.raises(AttackError):
            attack.extract()

    def test_vector_registers_extracted_with_caches(self):
        board = victim_pi4(seed=606)
        board.soc.core(0).vreg.write_bytes(0, b"\x5a" * 16)
        attack = VoltBootAttack(board, target="registers", boot_media=MEDIA)
        result = attack.execute()
        assert result.vector_registers[0][0] == b"\x5a" * 16


class TestExtractionGuards:
    def test_extraction_needs_booted_system(self):
        board = victim_pi4(seed=607)
        board.unplug()
        board.plug_in()  # powered but not booted
        with pytest.raises(AttackError):
            extract_l1_images(board)
        with pytest.raises(AttackError):
            extract_vector_registers(board, 0)

    def test_extraction_refuses_enabled_caches(self):
        board = victim_pi4(seed=608)  # victim cache still enabled + booted
        with pytest.raises(AttackError):
            extract_l1_images(board)

    def test_iram_extraction_needs_iram(self):
        board = victim_pi4(seed=609)
        with pytest.raises(AttackError):
            extract_iram(board)

    def test_fused_jtag_blocks_iram_dump(self):
        board = imx53_qsb(seed=610)
        board.boot()
        probe = JtagProbe(board.soc.memory_map)
        probe.fuse_off()
        from repro.errors import AccessViolation

        with pytest.raises(AccessViolation):
            extract_iram(board, probe)


class TestColdBootPipeline:
    def test_cold_boot_recovers_nothing_from_sram(self):
        board = victim_pi4(seed=611)
        attack = ColdBootAttack(board, temperature_c=-40.0, boot_media=MEDIA)
        result = attack.execute()
        assert b"\xaa" * 64 not in result.cache_images.dcache(0)
        assert result.domain_retention("VDD_CORE") < 0.05

    def test_domain_retention_unknown_domain(self):
        board = victim_pi4(seed=612)
        attack = ColdBootAttack(board, boot_media=MEDIA)
        result = attack.execute(extract_caches=False)
        with pytest.raises(AttackError):
            result.domain_retention("VDD_GPU")

    def test_temperature_applied_to_board(self):
        board = victim_pi4(seed=613)
        ColdBootAttack(board, temperature_c=-110.0, boot_media=MEDIA).execute(
            extract_caches=False
        )
        assert board.temperature_c == -110.0


class TestSupplySizing:
    def test_weak_supply_corrupts_recovery(self):
        board = victim_pi4(seed=614)
        attack = VoltBootAttack(
            board,
            target="l1-caches",
            supply=BenchSupply(0.8, current_limit_a=0.25),
            boot_media=MEDIA,
        )
        result = attack.execute()
        assert not result.surge_clean
