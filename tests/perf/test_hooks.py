"""Profiling hooks: scoped timers, rate gauges, fingerprint immunity."""

import pytest

from repro import obs
from repro.circuits.sram import SramArray
from repro.obs import RunManifest, manifest_fingerprint
from repro.obs.timing import observe_rate, profiled_phase
from repro.rng import generator


class TestHookPrimitives:
    def test_profiled_phase_records_histogram(self, observed):
        with profiled_phase("unit-test", stage="demo"):
            pass
        snapshot = observed.metrics.snapshot()
        (key,) = [k for k in snapshot if k.startswith("perf.phase_wall_s")]
        assert "phase=unit-test" in key
        assert snapshot[key]["count"] == 1
        assert snapshot[key]["min"] >= 0.0

    def test_observe_rate_records_gauge_and_histogram(self, observed):
        observe_rate("exec.units", 50.0, 2.0)
        snapshot = observed.metrics.snapshot()
        assert snapshot["perf.exec.units.per_s"] == pytest.approx(25.0)
        (key,) = [k for k in snapshot if k.startswith("perf.phase_wall_s")]
        assert "phase=exec.units" in key

    def test_zero_wall_records_nothing(self, observed):
        observe_rate("exec.units", 50.0, 0.0)
        assert not observed.metrics.snapshot()

    def test_disabled_observability_records_nothing(self):
        assert not obs.OBS.enabled
        with profiled_phase("dark"):
            observe_rate("exec.units", 1.0, 1.0)
        assert not obs.OBS.metrics.snapshot()


class TestThreadedHotPaths:
    def test_sram_decay_path_emits_cells_per_second(self, observed):
        array = SramArray(
            4096, rng=generator(3, "perf", "test"), name="hook-test"
        )
        array.power_up()
        array.power_down()
        array.elapse_unpowered(1e-5)
        array.restore_power()
        snapshot = observed.metrics.snapshot()
        (key,) = [k for k in snapshot if k.startswith("perf.sram.decay")]
        assert snapshot[key] > 0.0

    def test_exec_engine_emits_units_per_second(self, observed):
        from repro.exec import ShardPlan, WorkUnit, execute
        from repro.perf.workloads import _exec_spin

        plan = ShardPlan(
            [WorkUnit(index=i, fn=_exec_spin, args=(i,), label=f"u{i}")
             for i in range(4)]
        )
        execute(plan, jobs=1)
        snapshot = observed.metrics.snapshot()
        assert snapshot["perf.exec.units.per_s"] > 0.0

    def test_glitch_point_emits_attempts_per_second(self, observed):
        from repro.glitch.campaign import CampaignSpec, run_point
        from repro.units import nanoseconds

        spec = CampaignSpec(
            offsets_s=(0.0,), widths_s=(nanoseconds(40),),
            depths_v=(0.4,), repeats=1, random_points=0,
        )
        attempts = run_point(
            5, "unprotected", "grid", "grid0",
            0.0, nanoseconds(40), 0.4, 1, spec,
        )
        assert len(attempts) == 1
        snapshot = observed.metrics.snapshot()
        (key,) = [
            k for k in snapshot if k.startswith("perf.glitch.attempts")
        ]
        assert "leg=unprotected" in key
        assert snapshot[key] > 0.0


class TestFingerprintImmunity:
    def test_perf_metrics_never_reach_the_fingerprint(self):
        base = RunManifest(
            kind="experiment", name="x", seed=1,
            metrics={"sram.cells_decayed": 10},
        ).to_dict()
        noisy = RunManifest(
            kind="experiment", name="x", seed=1,
            metrics={
                "sram.cells_decayed": 10,
                "perf.exec.units.per_s": 123.0,
                "perf.phase_wall_s{phase=run}": {"count": 1, "mean": 0.5,
                                                 "min": 0.5, "max": 0.5},
                "exec.shard_wall_s": {"count": 2, "mean": 1.0,
                                      "min": 0.5, "max": 1.5},
            },
        ).to_dict()
        assert manifest_fingerprint(base) == manifest_fingerprint(noisy)
