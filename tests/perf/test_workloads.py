"""The quick workload suite behind ``repro bench --quick``."""

from repro.perf import QUICK_WORKLOADS, run_quick_suite


class TestQuickSuite:
    def test_every_workload_reports_work_and_time(self):
        entries = run_quick_suite(seed=13)
        assert [e.name for e in entries] == [w.name for w in QUICK_WORKLOADS]
        for entry in entries:
            assert entry.source == "quick"
            assert entry.seed == 13
            assert entry.wall_s > 0.0
            assert entry.rates, f"{entry.name} reported no rates"
            assert all(rate > 0.0 for rate in entry.rates.values())

    def test_suite_covers_every_trajectory_rate(self):
        rate_keys = {w.rate_key for w in QUICK_WORKLOADS}
        assert rate_keys == {
            "cells_decayed_per_s", "attempts_per_s", "units_per_s",
            "files_per_s",
        }

    def test_lint_project_workload_counts_the_package_files(self):
        from repro.perf.workloads import _lint_project

        files = _lint_project(seed=13)
        # The repro package itself: comfortably past the seed's size,
        # and seed-independent by construction.
        assert files >= 100.0
        assert _lint_project(seed=14) == files

    def test_physics_pair_measures_the_engine_speedup(self):
        entries = {e.name: e for e in run_quick_suite(seed=13)}
        vector = entries["quick.physics-vector"]
        scalar = entries["quick.physics-scalar"]
        # Identical cell counts: the pair runs the same workload.
        assert vector.rates and scalar.rates
        # The vector entry carries the measured engine-vs-engine ratio.
        assert vector.speedup is not None
        assert vector.speedup["vs_scalar_engine"] > 1.0
        assert vector.speedup["scalar_wall_s"] == scalar.wall_s
        assert scalar.speedup is None
