"""``repro progress``: tailing live and crashed checkpoint journals."""

import base64
import json
import pickle

import pytest

from repro.errors import PerfError
from repro.exec import CheckpointJournal, UnitRecord
from repro.perf import find_journals, read_progress, render_progress
from repro.perf.progress import ROLLING_WINDOW


def write_journal(path, total, done, wall_s=0.5):
    """A real journal with ``done`` of ``total`` units banked."""
    journal = CheckpointJournal(str(path), "fp", total)
    journal.start(fresh=True)
    for index in range(done):
        journal.append(
            UnitRecord(index=index, result=index, metrics={}, spans=[],
                       wall_s=wall_s)
        )
    journal.close()
    return path


class TestReadProgress:
    def test_complete_journal(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", total=4, done=4)
        report = read_progress(path)
        assert (report.done, report.total) == (4, 4)
        assert report.complete
        assert not report.torn_tail
        assert report.eta_s == 0.0
        assert "complete" in render_progress(report)

    def test_partial_journal_reports_throughput_and_eta(self, tmp_path):
        path = write_journal(
            tmp_path / "j.jsonl", total=10, done=4, wall_s=0.5
        )
        report = read_progress(path)
        assert (report.done, report.remaining) == (4, 6)
        assert report.fraction == pytest.approx(0.4)
        assert report.throughput_units_per_s == pytest.approx(2.0)
        assert report.eta_s == pytest.approx(3.0)
        rendered = render_progress(report)
        assert "4/10" in rendered and "ETA" in rendered

    def test_torn_tail_is_discarded_like_resume(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", total=10, done=5)
        raw = path.read_bytes()
        lines = raw.split(b"\n")
        # Keep header + 3 units, then half of unit 4: the kill -9 shape.
        path.write_bytes(b"\n".join(lines[:4]) + b"\n" + lines[4][:25])
        report = read_progress(path)
        assert report.done == 3
        assert report.torn_tail
        assert "torn tail" in render_progress(report)

    def test_rolling_window_uses_recent_units(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(str(path), "fp", ROLLING_WINDOW + 8)
        journal.start(fresh=True)
        # Old slow units, then a window of fast ones: the rolling rate
        # must reflect only the fast tail.
        for index in range(8):
            journal.append(UnitRecord(index=index, result=0, wall_s=10.0))
        for index in range(8, 8 + ROLLING_WINDOW):
            journal.append(UnitRecord(index=index, result=0, wall_s=0.1))
        journal.close()
        report = read_progress(path)
        assert report.rolling_units == ROLLING_WINDOW
        assert report.throughput_units_per_s == pytest.approx(10.0)

    def test_old_format_journal_falls_back_to_blob(self, tmp_path):
        path = tmp_path / "old.jsonl"
        blob = base64.b64encode(
            pickle.dumps(
                {"result": 1, "metrics": None, "spans": [], "wall_s": 2.0}
            )
        ).decode("ascii")
        lines = [
            {"kind": "header", "version": 1, "plan": "fp", "units": 2},
            {"kind": "unit", "index": 0, "blob": blob},  # no outer wall_s
        ]
        path.write_text(
            "".join(json.dumps(line) + "\n" for line in lines)
        )
        report = read_progress(path)
        assert report.done == 1
        assert report.wall_s_total == pytest.approx(2.0)

    def test_unreadable_timing_still_counts_the_unit(self, tmp_path):
        path = tmp_path / "j.jsonl"
        lines = [
            {"kind": "header", "version": 1, "plan": "fp", "units": 3},
            {"kind": "unit", "index": 0, "blob": "not-base64-pickle"},
        ]
        path.write_text(
            "".join(json.dumps(line) + "\n" for line in lines)
        )
        report = read_progress(path)
        assert report.done == 1
        assert report.throughput_units_per_s is None
        assert report.eta_s is None
        assert "unknown" in render_progress(report)


class TestJournalRejection:
    def test_empty_journal_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("")
        with pytest.raises(PerfError, match="empty"):
            read_progress(path)

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(PerfError, match="cannot read"):
            read_progress(tmp_path / "nope.jsonl")

    def test_torn_header_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_bytes(b'{"kind": "head')
        with pytest.raises(PerfError, match="no complete header"):
            read_progress(path)

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", total=4, done=3)
        raw = path.read_bytes().split(b"\n")
        raw[2] = b"garbage{{{"
        path.write_bytes(b"\n".join(raw))
        with pytest.raises(PerfError, match="corrupt journal line"):
            read_progress(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "version": 99, "units": 1}) + "\n"
        )
        with pytest.raises(PerfError, match="version"):
            read_progress(path)


class TestFindJournals:
    def test_single_file(self, tmp_path):
        path = write_journal(tmp_path / "j.jsonl", total=1, done=1)
        assert find_journals(path) == [path]

    def test_checkpoint_directory_is_sorted(self, tmp_path):
        second = write_journal(
            tmp_path / "journal-001.jsonl", total=2, done=2
        )
        first = write_journal(
            tmp_path / "journal-000.jsonl", total=2, done=2
        )
        assert find_journals(tmp_path) == [first, second]

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(PerfError, match="no .*journals"):
            find_journals(tmp_path)
