"""BENCH_<n>.json assembly: sidecar ingestion, schema, sequencing."""

import json

import pytest

from repro.errors import PerfError
from repro.perf import (
    BENCH_KIND,
    BENCH_SCHEMA_VERSION,
    BenchEntry,
    bench_paths,
    build_trajectory,
    collect_sidecars,
    entry_from_sidecar,
    latest_bench,
    load_bench,
    next_sequence,
    rates_from_metrics,
    validate_bench,
    write_bench,
)

from .conftest import make_sidecar


class TestSidecarIngestion:
    def test_entry_reads_wall_rates_and_seed(self, tmp_path):
        path = make_sidecar(
            tmp_path, "figure9", wall_s=4.0,
            metrics={"sram.cells_decayed{array=a}": 800,
                     "dram.cells_decayed{array=b}": 200,
                     "glitch.attempts": 40},
        )
        entry = entry_from_sidecar(path)
        assert entry.name == "figure9"
        assert entry.source == "sidecar"
        assert entry.wall_s == pytest.approx(4.0)
        # counters pool across label sets before dividing by wall time
        assert entry.rates["cells_decayed_per_s"] == pytest.approx(250.0)
        assert entry.rates["attempts_per_s"] == pytest.approx(10.0)
        assert entry.seed == 7

    def test_serial_wall_gauge_beats_phase_sum(self, tmp_path):
        path = make_sidecar(tmp_path, "sweep", wall_s=9.0, speedup=True)
        entry = entry_from_sidecar(path)
        assert entry.wall_s == pytest.approx(9.0)
        assert entry.speedup == {
            "jobs": 4.0, "serial_wall_s": 9.0,
            "parallel_wall_s": 4.5, "speedup": 2.0,
        }

    def test_invalid_sidecar_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"kind": "benchmark"}))
        with pytest.raises(PerfError, match="invalid manifest sidecar"):
            entry_from_sidecar(bad)

    def test_unreadable_sidecar_raises(self, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        with pytest.raises(PerfError, match="unreadable sidecar"):
            entry_from_sidecar(broken)

    def test_collect_sidecars_is_name_sorted(self, tmp_path):
        make_sidecar(tmp_path, "zeta")
        make_sidecar(tmp_path, "alpha")
        names = [entry.name for entry in collect_sidecars(tmp_path)]
        assert names == ["alpha", "zeta"]

    def test_collect_requires_directory(self, tmp_path):
        with pytest.raises(PerfError, match="no benchmark results"):
            collect_sidecars(tmp_path / "nope")


class TestRates:
    def test_zero_wall_yields_no_rates(self):
        assert rates_from_metrics({"exec.units": 10}, 0.0) == {}

    def test_histogram_values_are_ignored(self):
        rates = rates_from_metrics(
            {"exec.units": 8, "exec.shard_wall_s": {"count": 2}}, 2.0
        )
        assert rates == {"units_per_s": 4.0}


class TestTrajectoryDocuments:
    def test_build_is_schema_valid_and_name_sorted(self):
        doc = build_trajectory(
            [
                BenchEntry("b", "quick", 1.0, {"units_per_s": 1.0}),
                BenchEntry("a", "sidecar", 2.0, {}),
            ],
            sequence=3,
            mode="full",
            jobs=2,
        )
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert doc["kind"] == BENCH_KIND
        assert doc["host"]["jobs"] == 2
        assert doc["host"]["cpu_count"] >= 1
        assert [b["name"] for b in doc["benchmarks"]] == ["a", "b"]

    def test_bad_mode_and_sequence_raise(self):
        with pytest.raises(PerfError, match="mode"):
            build_trajectory([], 1, "warp")
        with pytest.raises(PerfError, match="sequence"):
            build_trajectory([], 0, "quick")

    def test_validate_names_every_violation(self):
        with pytest.raises(PerfError) as excinfo:
            validate_bench(
                {
                    "schema_version": 99,
                    "kind": "bench-trajectory",
                    "benchmarks": [{"name": "x", "source": "psychic"}],
                }
            )
        message = str(excinfo.value)
        assert "schema_version" in message
        assert "'mode'" in message
        assert "'wall_s'" in message
        assert "psychic" in message

    def test_write_load_round_trip(self, tmp_path):
        doc = build_trajectory(
            [BenchEntry("a", "quick", 0.5, {"units_per_s": 2.0})],
            sequence=1, mode="quick",
        )
        out = tmp_path / "BENCH_1.json"
        write_bench(out, doc)
        assert load_bench(out) == doc


class TestSequencing:
    def test_sequence_walks_committed_documents(self, tmp_path):
        assert next_sequence(tmp_path) == 1
        assert latest_bench(tmp_path) is None
        for sequence in (1, 2, 10):
            write_bench(
                tmp_path / f"BENCH_{sequence}.json",
                build_trajectory([], sequence, "quick"),
            )
        (tmp_path / "BENCH_notes.json").write_text("{}")  # no match
        assert [seq for seq, _ in bench_paths(tmp_path)] == [1, 2, 10]
        assert next_sequence(tmp_path) == 11
        latest = latest_bench(tmp_path)
        assert latest is not None and latest[0] == 10
