"""The regression gate and the trend report."""

import pytest

from repro.circuits.engine import engine_name
from repro.errors import PerfError
from repro.perf import (
    PRE_ENGINE_LABEL,
    compare,
    document_engine,
    render_comparison,
    render_trend,
    trend,
    write_bench,
)

from .conftest import make_bench_doc


class TestGate:
    def test_unchanged_run_passes(self):
        doc = make_bench_doc({"a": 1.0, "b": 2.0})
        comparison = compare(doc, doc)
        assert comparison.passed
        assert all(row.status == "ok" for row in comparison.rows)
        assert "gate PASSED" in render_comparison(comparison)

    def test_25_percent_slowdown_fails_the_20_percent_gate(self):
        old = make_bench_doc({"a": 1.0, "b": 2.0})
        new = make_bench_doc({"a": 1.25, "b": 2.0})
        comparison = compare(old, new)
        assert not comparison.passed
        (regression,) = comparison.regressions
        assert regression.name == "a"
        assert regression.ratio == pytest.approx(1.25)
        assert "gate FAILED" in render_comparison(comparison)

    def test_within_threshold_slowdown_passes(self):
        comparison = compare(
            make_bench_doc({"a": 1.0}), make_bench_doc({"a": 1.15})
        )
        assert comparison.passed

    def test_improvement_is_reported_not_gated(self):
        comparison = compare(
            make_bench_doc({"a": 2.0}), make_bench_doc({"a": 1.0})
        )
        assert comparison.passed
        assert comparison.rows[0].status == "improved"

    def test_added_and_missing_never_gate(self):
        comparison = compare(
            make_bench_doc({"a": 1.0, "gone": 5.0}),
            make_bench_doc({"a": 1.0, "fresh": 9.0}),
        )
        assert comparison.passed
        statuses = {row.name: row.status for row in comparison.rows}
        assert statuses == {"a": "ok", "gone": "missing", "fresh": "added"}

    def test_sub_millisecond_entries_never_gate(self):
        comparison = compare(
            make_bench_doc({"tiny": 0.0002}), make_bench_doc({"tiny": 0.0009})
        )
        assert comparison.passed  # 4.5x, but under the noise floor

    def test_host_mismatch_is_noted(self):
        comparison = compare(
            make_bench_doc({"a": 1.0}, cpu_count=8),
            make_bench_doc({"a": 1.0}, cpu_count=1),
        )
        assert any("host mismatch" in note for note in comparison.notes)
        assert "advisory" in render_comparison(comparison)

    def test_custom_threshold(self):
        old = make_bench_doc({"a": 1.0})
        new = make_bench_doc({"a": 1.15})
        assert not compare(old, new, threshold=0.10).passed
        with pytest.raises(PerfError, match="threshold"):
            compare(old, new, threshold=0.0)

    def test_to_dict_is_json_shaped(self):
        doc = compare(
            make_bench_doc({"a": 1.0}), make_bench_doc({"a": 2.0})
        ).to_dict()
        assert doc["passed"] is False
        assert doc["regressions"] == 1
        assert doc["rows"][0]["ratio"] == pytest.approx(2.0)


class TestCrossEngine:
    """Engine-aware comparison: cross-engine deltas never gate."""

    def test_document_engine_reads_the_host_block(self):
        doc = make_bench_doc({"a": 1.0})
        assert document_engine(doc) == engine_name()

    def test_pre_engine_documents_get_the_sentinel_label(self):
        doc = make_bench_doc({"a": 1.0})
        del doc["host"]["physics_engine"]
        assert document_engine(doc) == PRE_ENGINE_LABEL

    def test_cross_engine_slowdown_is_demoted_and_noted(self):
        old = make_bench_doc({"a": 1.0})
        del old["host"]["physics_engine"]  # pre-vectorized baseline
        comparison = compare(old, make_bench_doc({"a": 2.0}))
        assert comparison.passed
        assert comparison.rows[0].status == "cross-engine"
        assert any("engine mismatch" in note for note in comparison.notes)

    def test_same_engine_slowdown_still_gates(self):
        comparison = compare(
            make_bench_doc({"a": 1.0}), make_bench_doc({"a": 2.0})
        )
        assert not comparison.passed


class TestTrend:
    def test_trend_orders_by_sequence(self, tmp_path):
        write_bench(
            tmp_path / "BENCH_2.json",
            make_bench_doc({"a": 0.8, "late": 1.0}, sequence=2),
        )
        write_bench(
            tmp_path / "BENCH_1.json",
            make_bench_doc({"a": 1.0}, sequence=1),
        )
        report = trend(tmp_path)
        assert report.sequences == [1, 2]
        assert report.series["a"] == {1: 1.0, 2: 0.8}
        assert report.series["late"] == {2: 1.0}
        rendered = render_trend(report)
        assert "BENCH_1" in rendered and "BENCH_2" in rendered
        assert "| late | - | 1.0000 |" in rendered

    def test_trend_requires_documents(self, tmp_path):
        with pytest.raises(PerfError, match="no BENCH"):
            trend(tmp_path)

    def test_trend_annotates_engine_boundaries(self, tmp_path):
        old = make_bench_doc({"a": 2.0}, sequence=1)
        del old["host"]["physics_engine"]  # predates the engine tag
        write_bench(tmp_path / "BENCH_1.json", old)
        write_bench(
            tmp_path / "BENCH_2.json",
            make_bench_doc({"a": 0.1}, sequence=2),
        )
        report = trend(tmp_path)
        current = engine_name()
        assert report.engines == {1: PRE_ENGINE_LABEL, 2: current}
        assert report.engine_boundaries() == [
            (2, PRE_ENGINE_LABEL, current)
        ]
        assert report.to_dict()["engines"] == {
            "1": PRE_ENGINE_LABEL, "2": current,
        }
        rendered = render_trend(report)
        assert "| engine |" in rendered
        assert "switched physics engine" in rendered

    def test_trend_without_engine_change_has_no_boundary_note(self, tmp_path):
        write_bench(
            tmp_path / "BENCH_1.json", make_bench_doc({"a": 1.0}, sequence=1)
        )
        write_bench(
            tmp_path / "BENCH_2.json", make_bench_doc({"a": 0.9}, sequence=2)
        )
        report = trend(tmp_path)
        assert report.engine_boundaries() == []
        assert "switched physics engine" not in render_trend(report)
