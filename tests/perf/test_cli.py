"""The ``repro bench`` / ``repro progress`` commands end to end."""

import json

import pytest

from repro.cli import EXIT_FAILURE, EXIT_OK, EXIT_USAGE, main
from repro.perf import write_bench

from .conftest import make_bench_doc
from .test_progress import write_journal


@pytest.fixture(scope="module")
def quick_doc_path(tmp_path_factory):
    """One real ``bench --quick`` run, shared across this module."""
    root = tmp_path_factory.mktemp("bench")
    out = root / "BENCH_1.json"
    assert main(
        [
            "bench", "--quick", "--seed", "11",
            "--out", str(out), "--sequence", "1", "--root", str(root),
        ]
    ) == EXIT_OK
    return out


class TestBenchAggregate:
    def test_quick_document_is_valid(self, quick_doc_path, capsys):
        capsys.readouterr()
        doc = json.loads(quick_doc_path.read_text())
        assert doc["mode"] == "quick"
        assert doc["sequence"] == 1
        assert doc["host"]["cpu_count"] >= 1
        names = [entry["name"] for entry in doc["benchmarks"]]
        assert "quick.sram-decay" in names
        assert "quick.glitch-campaign" in names
        assert all(entry["source"] == "quick" for entry in doc["benchmarks"])
        assert all(entry["rates"] for entry in doc["benchmarks"])

    def test_bench_needs_exactly_one_mode(self, capsys):
        assert main(["bench"]) == EXIT_USAGE
        assert main(["bench", "--quick", "--trend"]) == EXIT_USAGE
        assert "exactly one" in capsys.readouterr().err


class TestBenchGate:
    def test_unchanged_compare_exits_zero(self, tmp_path, capsys):
        doc = make_bench_doc({"a": 1.0})
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        write_bench(old, doc)
        write_bench(new, doc)
        assert main(
            ["bench", "--compare", str(old), str(new)]
        ) == EXIT_OK
        assert "gate PASSED" in capsys.readouterr().out

    def test_synthetic_25_percent_slowdown_exits_nonzero(
        self, tmp_path, capsys
    ):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        write_bench(old, make_bench_doc({"a": 1.0, "b": 2.0}))
        write_bench(new, make_bench_doc({"a": 1.25, "b": 2.0}))
        assert main(
            ["bench", "--compare", str(old), str(new)]
        ) == EXIT_FAILURE
        out = capsys.readouterr().out
        assert "gate FAILED" in out and "REGRESSION" in out

    def test_compare_json_document(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        write_bench(old, make_bench_doc({"a": 1.0}))
        write_bench(new, make_bench_doc({"a": 5.0}))
        assert main(
            ["bench", "--compare", str(old), str(new), "--json"]
        ) == EXIT_FAILURE
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is False

    def test_against_baseline_uses_highest_committed(
        self, tmp_path, capsys
    ):
        write_bench(
            tmp_path / "BENCH_1.json", make_bench_doc({"a": 9.0}, sequence=1)
        )
        write_bench(
            tmp_path / "BENCH_2.json", make_bench_doc({"a": 1.0}, sequence=2)
        )
        fresh = tmp_path / "BENCH_ci.json"
        write_bench(fresh, make_bench_doc({"a": 1.3}))
        # Against BENCH_2 (1.0s) the 1.3s run is a 30% regression; had
        # the stale BENCH_1 (9.0s) been picked it would pass.
        assert main(
            [
                "bench", "--against-baseline", str(fresh),
                "--root", str(tmp_path),
            ]
        ) == EXIT_FAILURE
        capsys.readouterr()

    def test_against_baseline_without_documents_fails(
        self, tmp_path, capsys
    ):
        fresh = tmp_path / "BENCH_ci.json"
        write_bench(fresh, make_bench_doc({"a": 1.0}))
        assert main(
            [
                "bench", "--against-baseline", str(fresh),
                "--root", str(tmp_path / "empty"),
            ]
        ) == EXIT_FAILURE
        assert "no committed BENCH" in capsys.readouterr().err

    def test_threshold_flag_tightens_the_gate(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        write_bench(old, make_bench_doc({"a": 1.0}))
        write_bench(new, make_bench_doc({"a": 1.15}))
        assert main(
            ["bench", "--compare", str(old), str(new)]
        ) == EXIT_OK
        assert main(
            [
                "bench", "--compare", str(old), str(new),
                "--threshold", "0.10",
            ]
        ) == EXIT_FAILURE
        capsys.readouterr()


class TestBenchTrend:
    def test_trend_renders_every_sequence(self, tmp_path, capsys):
        write_bench(
            tmp_path / "BENCH_1.json", make_bench_doc({"a": 1.0}, sequence=1)
        )
        write_bench(
            tmp_path / "BENCH_3.json", make_bench_doc({"a": 0.7}, sequence=3)
        )
        assert main(["bench", "--trend", "--root", str(tmp_path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "BENCH_1" in out and "BENCH_3" in out

    def test_trend_without_documents_fails(self, tmp_path, capsys):
        assert main(
            ["bench", "--trend", "--root", str(tmp_path)]
        ) == EXIT_FAILURE
        assert "error:" in capsys.readouterr().err


class TestProgressCommand:
    def test_progress_on_torn_journal(self, tmp_path, capsys):
        path = write_journal(tmp_path / "j.jsonl", total=10, done=5)
        raw = path.read_bytes().split(b"\n")
        path.write_bytes(b"\n".join(raw[:5]) + b"\n" + raw[5][:20])
        assert main(["progress", str(path)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "4/10" in out
        assert "ETA" in out
        assert "torn tail" in out

    def test_progress_json_over_checkpoint_directory(
        self, tmp_path, capsys
    ):
        write_journal(tmp_path / "journal-000.jsonl", total=3, done=3)
        write_journal(tmp_path / "journal-001.jsonl", total=5, done=2)
        assert main(["progress", str(tmp_path), "--json"]) == EXIT_OK
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["journals"]) == 2
        assert doc["journals"][0]["complete"] is True
        assert doc["journals"][1]["remaining"] == 3

    def test_progress_on_missing_journal_fails(self, tmp_path, capsys):
        assert main(
            ["progress", str(tmp_path / "nope.jsonl")]
        ) == EXIT_FAILURE
        assert "error:" in capsys.readouterr().err
